//! End-to-end pipeline tests: generate → train → detect, with quality
//! floors. Sizes are kept small so the suite stays fast in debug
//! builds.

use pge::core::{train_pge, Detector, ErrorDetector, PgeConfig};
use pge::datagen::{generate_catalog, CatalogConfig};
use pge::eval::{average_precision, Scored};

fn small_catalog() -> pge::graph::Dataset {
    // Deliberately easier than the benchmark catalog: titles always
    // mention their value and variants are rare, so the tiny
    // debug-build training budget suffices. Difficulty scaling is the
    // bench harness's job, not this pipeline test's.
    generate_catalog(&CatalogConfig {
        products: 250,
        labeled: 100,
        title_mentions_value: 0.9,
        value_variant_rate: 0.2,
        train_noise: 0.0,
        seed: 9,
        ..CatalogConfig::default()
    })
}

fn fast_cfg() -> PgeConfig {
    // Per-attribute negatives: catalog errors are within-attribute
    // value swaps, so "the other value of this attribute" is the
    // corruption the model must learn to reject — global-uniform
    // negatives mostly contrast against other attributes' values and
    // need several times the epochs for the same separation.
    PgeConfig {
        epochs: 20,
        sampling: pge::graph::SamplingMode::PerAttribute,
        ..PgeConfig::tiny()
    }
}

fn pr_auc_of(det: &dyn ErrorDetector, data: &pge::graph::Dataset) -> f32 {
    let triples: Vec<_> = data.test.iter().map(|lt| lt.triple).collect();
    let scores = det.plausibility_all(&data.graph, &triples);
    let scored: Vec<Scored> = scores
        .iter()
        .zip(&data.test)
        .map(|(&f, lt)| Scored::new(-f, !lt.correct))
        .collect();
    average_precision(&scored)
}

#[test]
fn pge_beats_chance_on_catalog_errors() {
    let data = small_catalog();
    let trained = train_pge(&data, &fast_cfg());
    let auc = pr_auc_of(&trained.model, &data);
    // Chance ≈ fraction of errors (~0.5); require clear daylight.
    let base_rate =
        data.test.iter().filter(|lt| !lt.correct).count() as f32 / data.test.len() as f32;
    assert!(
        auc > base_rate + 0.15,
        "PR AUC {auc:.3} not above chance {base_rate:.3}"
    );
}

#[test]
fn detector_threshold_transfers_from_valid_to_test() {
    let data = small_catalog();
    let trained = train_pge(&data, &fast_cfg());
    let det = Detector::fit(&trained.model, &data.graph, &data.valid);
    let test_acc = det.accuracy(&data.graph, &data.test);
    // The validation-fitted threshold must do better than always
    // guessing the majority class on test.
    let majority = {
        let correct =
            data.test.iter().filter(|lt| lt.correct).count() as f32 / data.test.len() as f32;
        correct.max(1.0 - correct)
    };
    assert!(
        test_acc > majority - 0.05,
        "test accuracy {test_acc:.3} far below majority {majority:.3}"
    );
}

#[test]
fn training_is_deterministic_across_runs() {
    let data = small_catalog();
    let a = train_pge(&data, &fast_cfg());
    let b = train_pge(&data, &fast_cfg());
    for lt in data.test.iter().take(10) {
        assert_eq!(
            a.model.score_triple(&lt.triple),
            b.model.score_triple(&lt.triple)
        );
    }
    assert_eq!(a.epoch_losses, b.epoch_losses);
}

#[test]
fn losses_trend_downward() {
    let data = small_catalog();
    let trained = train_pge(&data, &fast_cfg());
    let first = trained.epoch_losses.first().copied().unwrap();
    let last = trained.epoch_losses.last().copied().unwrap();
    assert!(last < first, "loss went {first} -> {last}");
}

#[test]
fn score_fact_agrees_with_graph_scoring() {
    let data = small_catalog();
    let trained = train_pge(&data, &fast_cfg());
    let lt = data.test[0];
    let via_graph = trained.model.score_triple(&lt.triple);
    let via_text = trained.model.score_fact(
        data.graph.title(lt.triple.product),
        lt.triple.attr,
        data.graph.value_text(lt.triple.value),
    );
    assert!((via_graph - via_text).abs() < 1e-5);
}
