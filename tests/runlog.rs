//! End-to-end run-log tests: drive the real `pge` binary through a
//! generate → train → detect pipeline sharing one `--runlog` file,
//! then validate the JSONL schema and the `pge report` rendering.
//!
//! The golden fixture under `tests/fixtures/` pins the event schema:
//! if a field is renamed or dropped, the fixture test fails before any
//! dashboard parsing these logs does.

use pge::obs::json::{parse, Json};
use pge::obs::render_report;
use std::path::PathBuf;
use std::process::Command;

fn golden() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_runlog.jsonl");
    std::fs::read_to_string(path).expect("golden fixture exists")
}

#[test]
fn golden_runlog_renders_every_section() {
    let report = render_report(&golden()).expect("golden log renders");
    for needle in [
        "pge run report",
        "run: train  seed 13  git 0123456789",
        "run: eval",
        "run: serve",
        "run: gateway",
        "training: 3 epochs",
        "loss   1.5033 -> 1.1955",
        "confidence polarization 1.000 -> 0.918",
        "marked down 4.6% of training triples",
        "eval: PR AUC 0.643",
        "serve: 120 requests, 480 items, 30 batches, 0 rejected",
        "latency p50 2.10 ms  p99 8.40 ms",
        "cache hit rate 83.3%",
        "gateway: 50000 requests, 50000 responses, 12 rejected, 3 malformed",
        "latency p50 1.40 ms  p99 9.70 ms",
        "10000 connections accepted",
        "traces: 1 retained (0 errored, slowest 61.42 ms)",
        "train.epoch",
        "detect.score",
        "gateway.epoll_wait",
    ] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
}

/// The runlog schema guard: every event kind a `pge` command can emit
/// must carry the fields dashboards key on. Returns the first
/// violation instead of panicking so tests can assert both directions.
fn check_event_schema(line: &str) -> Result<(), String> {
    let v = parse(line).map_err(|e| format!("unparseable line: {e}: {line}"))?;
    let event = v
        .get("event")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing event tag: {line}"))?
        .to_string();
    if v.get("ts_ms").and_then(Json::as_f64).is_none() {
        return Err(format!("{event} missing ts_ms: {line}"));
    }
    let require = |keys: &[&str]| -> Result<(), String> {
        for key in keys {
            if v.get(key).is_none() {
                return Err(format!("{event} missing {key}: {line}"));
            }
        }
        Ok(())
    };
    match event.as_str() {
        "manifest" => require(&["kind", "seed", "git_rev", "version", "config"]),
        "epoch" => require(&[
            "epoch",
            "mean_loss",
            "triples",
            "negatives",
            "triples_per_sec",
        ]),
        "eval" => require(&["pr_auc", "threshold", "valid_accuracy", "test_triples"]),
        "serve" => require(&["requests_total", "items_total", "latency_p99_ms"]),
        "gateway" if v.get("swap").is_some() => require(&["version"]),
        "gateway" => require(&[
            "requests_total",
            "responses_total",
            "rejected_total",
            "bad_requests_total",
            "latency_p50_ms",
            "latency_p99_ms",
        ]),
        "trace" => {
            require(&["trace_id", "total_ms", "error", "stages"])?;
            let stages = v
                .get("stages")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("trace stages is not an array: {line}"))?;
            for s in stages {
                for key in ["stage", "arg", "t_ms"] {
                    if s.get(key).is_none() {
                        return Err(format!("trace stage missing {key}: {line}"));
                    }
                }
            }
            Ok(())
        }
        "spans" => {
            if v.get("spans").and_then(Json::as_array).is_none() {
                return Err(format!("spans missing span list: {line}"));
            }
            Ok(())
        }
        other => Err(format!("unknown event kind {other}: {line}")),
    }
}

#[test]
fn golden_runlog_lines_parse_with_required_fields() {
    for line in golden().lines() {
        check_event_schema(line).unwrap();
    }
}

#[test]
fn schema_guard_catches_missing_fields() {
    // A gateway shutdown snapshot without its latency quantiles is a
    // schema break dashboards would silently miss.
    let bad = r#"{"event":"gateway","ts_ms":1,"requests_total":5,"responses_total":5,"rejected_total":0,"bad_requests_total":0}"#;
    let err = check_event_schema(bad).unwrap_err();
    assert!(err.contains("latency_p50_ms"), "{err}");
    // A trace whose stage entries lost their timestamps likewise.
    let bad = r#"{"event":"trace","ts_ms":1,"trace_id":"00000000000000ff","total_ms":3.5,"error":false,"stages":[{"stage":"accept","arg":0}]}"#;
    let err = check_event_schema(bad).unwrap_err();
    assert!(err.contains("t_ms"), "{err}");
    // Swap-flavor gateway records need the version they swapped to.
    let bad = r#"{"event":"gateway","ts_ms":1,"swap":1}"#;
    let err = check_event_schema(bad).unwrap_err();
    assert!(err.contains("version"), "{err}");
}

/// Run the real binary; panics on spawn failure, returns stdout.
fn pge(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_pge"))
        .args(args)
        .output()
        .expect("spawn pge");
    assert!(
        out.status.success(),
        "pge {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn cli_pipeline_shares_one_runlog() {
    let dir = std::env::temp_dir().join(format!("pge-cli-runlog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let (data, model, log) = (p("data.tsv"), p("model.pge"), p("run.jsonl"));

    pge(&[
        "generate",
        "--kind",
        "catalog",
        "--out",
        &data,
        "--products",
        "40",
        "--seed",
        "7",
    ]);
    pge(&[
        "train", "--data", &data, "--out", &model, "--epochs", "1", "--runlog", &log,
    ]);
    pge(&[
        "detect", "--data", &data, "--model", &model, "--top", "3", "--runlog", &log,
    ]);

    // Both commands appended to one file; every line is valid JSON.
    let text = std::fs::read_to_string(&log).expect("runlog written");
    let events: Vec<String> = text
        .lines()
        .map(|l| {
            parse(l)
                .expect("valid JSON line")
                .get("event")
                .and_then(Json::as_str)
                .expect("event tag")
                .to_string()
        })
        .collect();
    assert_eq!(
        events.iter().filter(|e| *e == "manifest").count(),
        2,
        "one manifest per command: {events:?}"
    );
    assert!(events.contains(&"epoch".to_string()), "{events:?}");
    assert!(events.contains(&"eval".to_string()), "{events:?}");
    assert!(events.contains(&"spans".to_string()), "{events:?}");

    // The report subcommand renders it.
    let report = pge(&["report", &log]);
    for needle in ["run: train", "run: detect", "training: 1 epochs", "spans"] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
