//! End-to-end run-log tests: drive the real `pge` binary through a
//! generate → train → detect pipeline sharing one `--runlog` file,
//! then validate the JSONL schema and the `pge report` rendering.
//!
//! The golden fixture under `tests/fixtures/` pins the event schema:
//! if a field is renamed or dropped, the fixture test fails before any
//! dashboard parsing these logs does.

use pge::obs::json::{parse, Json};
use pge::obs::render_report;
use std::path::PathBuf;
use std::process::Command;

fn golden() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_runlog.jsonl");
    std::fs::read_to_string(path).expect("golden fixture exists")
}

#[test]
fn golden_runlog_renders_every_section() {
    let report = render_report(&golden()).expect("golden log renders");
    for needle in [
        "pge run report",
        "run: train  seed 13  git 0123456789",
        "run: eval",
        "run: serve",
        "training: 3 epochs",
        "loss   1.5033 -> 1.1955",
        "confidence polarization 1.000 -> 0.918",
        "marked down 4.6% of training triples",
        "eval: PR AUC 0.643",
        "serve: 120 requests, 480 items, 30 batches, 0 rejected",
        "latency p50 2.10 ms  p99 8.40 ms",
        "cache hit rate 83.3%",
        "train.epoch",
        "detect.score",
    ] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
}

#[test]
fn golden_runlog_lines_parse_with_required_fields() {
    for line in golden().lines() {
        let v = parse(line).expect("fixture line parses");
        let event = v.get("event").and_then(Json::as_str).expect("event tag");
        assert!(v.get("ts_ms").and_then(Json::as_f64).is_some(), "{line}");
        match event {
            "manifest" => {
                for key in ["kind", "seed", "git_rev", "version", "config"] {
                    assert!(v.get(key).is_some(), "manifest missing {key}: {line}");
                }
            }
            "epoch" => {
                for key in [
                    "epoch",
                    "mean_loss",
                    "triples",
                    "negatives",
                    "triples_per_sec",
                ] {
                    assert!(v.get(key).is_some(), "epoch missing {key}: {line}");
                }
            }
            "eval" => {
                for key in ["pr_auc", "threshold", "valid_accuracy", "test_triples"] {
                    assert!(v.get(key).is_some(), "eval missing {key}: {line}");
                }
            }
            "serve" => {
                for key in ["requests_total", "items_total", "latency_p99_ms"] {
                    assert!(v.get(key).is_some(), "serve missing {key}: {line}");
                }
            }
            "spans" => {
                assert!(v.get("spans").and_then(Json::as_array).is_some(), "{line}");
            }
            other => panic!("unknown event kind {other}: {line}"),
        }
    }
}

/// Run the real binary; panics on spawn failure, returns stdout.
fn pge(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_pge"))
        .args(args)
        .output()
        .expect("spawn pge");
    assert!(
        out.status.success(),
        "pge {args:?} failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn cli_pipeline_shares_one_runlog() {
    let dir = std::env::temp_dir().join(format!("pge-cli-runlog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    let (data, model, log) = (p("data.tsv"), p("model.pge"), p("run.jsonl"));

    pge(&[
        "generate",
        "--kind",
        "catalog",
        "--out",
        &data,
        "--products",
        "40",
        "--seed",
        "7",
    ]);
    pge(&[
        "train", "--data", &data, "--out", &model, "--epochs", "1", "--runlog", &log,
    ]);
    pge(&[
        "detect", "--data", &data, "--model", &model, "--top", "3", "--runlog", &log,
    ]);

    // Both commands appended to one file; every line is valid JSON.
    let text = std::fs::read_to_string(&log).expect("runlog written");
    let events: Vec<String> = text
        .lines()
        .map(|l| {
            parse(l)
                .expect("valid JSON line")
                .get("event")
                .and_then(Json::as_str)
                .expect("event tag")
                .to_string()
        })
        .collect();
    assert_eq!(
        events.iter().filter(|e| *e == "manifest").count(),
        2,
        "one manifest per command: {events:?}"
    );
    assert!(events.contains(&"epoch".to_string()), "{events:?}");
    assert!(events.contains(&"eval".to_string()), "{events:?}");
    assert!(events.contains(&"spans".to_string()), "{events:?}");

    // The report subcommand renders it.
    let report = pge(&["report", &log]);
    for needle in ["run: train", "run: detect", "training: 1 epochs", "spans"] {
        assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
