//! Every baseline runs end to end on both generated datasets and
//! produces sane, finite plausibility scores through the shared
//! `ErrorDetector` interface.

use pge::baselines::{
    train_ckrl, train_dkrl, train_kge, train_nlp, train_rotate_plus, train_ssp, CkrlConfig,
    DkrlConfig, KgeConfig, NlpArch, NlpConfig, SspConfig, Union,
};
use pge::core::{ErrorDetector, ScoreKind};
use pge::datagen::{generate_catalog, generate_fbkg, CatalogConfig, FbkgConfig};
use pge::graph::Dataset;

fn catalog() -> Dataset {
    generate_catalog(&CatalogConfig {
        products: 150,
        labeled: 50,
        seed: 31,
        ..CatalogConfig::default()
    })
}

fn fbkg() -> Dataset {
    generate_fbkg(&FbkgConfig {
        triples: 600,
        labeled: 100,
        seed: 32,
        ..FbkgConfig::tiny()
    })
}

fn check_detector(det: &dyn ErrorDetector, d: &Dataset) {
    assert!(!det.name().is_empty());
    let triples: Vec<_> = d.test.iter().map(|lt| lt.triple).collect();
    let scores = det.plausibility_all(&d.graph, &triples);
    assert_eq!(scores.len(), triples.len());
    assert!(
        scores.iter().all(|s| s.is_finite()),
        "{} produced non-finite scores",
        det.name()
    );
    // Scores must not be constant (a constant scorer can't rank).
    let min = scores.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    assert!(max > min, "{} produced constant scores", det.name());
}

#[test]
fn all_kge_variants_run_on_both_datasets() {
    for data in [catalog(), fbkg()] {
        for score in [
            ScoreKind::TransE,
            ScoreKind::DistMult,
            ScoreKind::ComplEx,
            ScoreKind::RotatE,
        ] {
            let m = train_kge(
                &data,
                &KgeConfig {
                    score,
                    epochs: 3,
                    ..KgeConfig::tiny()
                },
            );
            check_detector(&m, &data);
        }
    }
}

#[test]
fn nlp_baselines_run() {
    let data = catalog();
    for arch in [NlpArch::Lstm, NlpArch::Transformer] {
        let m = train_nlp(
            &data,
            &NlpConfig {
                epochs: 2,
                ..NlpConfig::tiny(arch)
            },
        );
        check_detector(&m, &data);
    }
}

#[test]
fn joint_embedding_baselines_run() {
    let data = catalog();
    let dkrl = train_dkrl(
        &data,
        &DkrlConfig {
            epochs: 2,
            ..DkrlConfig::tiny()
        },
    );
    check_detector(&dkrl, &data);
    let ssp = train_ssp(
        &data,
        &SspConfig {
            epochs: 3,
            ..SspConfig::tiny()
        },
    );
    check_detector(&ssp, &data);
}

#[test]
fn ckrl_and_rotate_plus_run() {
    let data = catalog();
    let ckrl = train_ckrl(
        &data,
        &CkrlConfig {
            epochs: 3,
            ..CkrlConfig::tiny()
        },
    );
    check_detector(&ckrl, &data);
    assert_eq!(ckrl.confidence.len(), data.train.len());

    let rp = train_rotate_plus(
        &data,
        &KgeConfig {
            epochs: 3,
            ..KgeConfig::tiny()
        },
    );
    check_detector(&rp, &data);
    assert_eq!(ErrorDetector::name(&rp), "RotatE+");
}

#[test]
fn union_composes_two_detectors() {
    let data = catalog();
    let a = train_kge(
        &data,
        &KgeConfig {
            epochs: 2,
            ..KgeConfig::tiny()
        },
    );
    let b = train_nlp(
        &data,
        &NlpConfig {
            epochs: 1,
            ..NlpConfig::tiny(NlpArch::Lstm)
        },
    );
    let u = Union::new(&a, &b);
    check_detector(&u, &data);
    assert!(u.prefers_batch());
}
