//! Integration tests for `pge-gateway`: a real epoll gateway on an
//! ephemeral port, spoken to over keep-alive TCP with a hand-rolled
//! pipelining HTTP/1.1 client.
//!
//! The claims under test:
//!
//! * **sharding is invisible** — scores served through consistent-hash
//!   routing are bit-identical to offline [`Detector::scores`] at
//!   every replica count;
//! * **hot-swap is zero-downtime** — requests racing a model swap all
//!   succeed, and every answer bit-matches one of the two snapshots;
//! * **pipelined responses come back in request order**;
//! * **graceful shutdown** answers every admitted request;
//! * **a corrupt snapshot is rejected** and the old model keeps
//!   serving;
//! * **a stalled replica is observable** — tail sampling retains its
//!   requests and attributes the delay to queue time on that replica.

use pge::core::{
    save_model_binary, train_incremental, train_pge, train_pge_resumable, CheckpointOptions,
    Detector, IncrementalConfig, PgeConfig, PgeModel,
};
use pge::datagen::{generate_catalog, CatalogConfig};
use pge::gateway::{start, GatewayConfig, GatewayHandle};
use pge::graph::{Dataset, DeltaOp, DeltaWindow, TripleDelta};
use pge::obs::Stage;
use pge::serve::json::{self, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn tiny_data() -> Dataset {
    generate_catalog(&CatalogConfig {
        products: 120,
        labeled: 40,
        seed: 17,
        ..CatalogConfig::tiny()
    })
}

/// Train a tiny model with `epochs` epochs; different epoch counts
/// give deterministically different weights (snapshot A vs B).
fn tiny_model(data: &Dataset, epochs: usize) -> (PgeModel, f32) {
    let trained = train_pge(
        data,
        &PgeConfig {
            epochs,
            ..PgeConfig::tiny()
        },
    );
    let threshold = Detector::fit(&trained.model, &data.graph, &data.valid).threshold;
    (trained.model, threshold)
}

/// Offline reference scores for the whole test split.
fn offline_scores(data: &Dataset, model: &PgeModel) -> Vec<f32> {
    let det = Detector::fit(model, &data.graph, &data.valid);
    let triples: Vec<_> = data.test.iter().map(|lt| lt.triple).collect();
    det.scores(&data.graph, &triples)
}

fn gateway(data: &Dataset, model: PgeModel, threshold: f32, cfg: GatewayConfig) -> GatewayHandle {
    start(
        model,
        data.graph.clone(),
        data.valid.clone(),
        threshold,
        cfg,
    )
    .expect("bind ephemeral port")
}

fn score_request(body: &str, keep_alive: bool) -> String {
    format!(
        "POST /v1/score HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\n\
         content-length: {}{}\r\n\r\n{}",
        body.len(),
        if keep_alive {
            ""
        } else {
            "\r\nconnection: close"
        },
        body
    )
}

/// Read exactly one HTTP response off a keep-alive stream, carrying
/// leftover bytes (from pipelined responses) across calls in `buf`.
fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Option<(u16, String)> {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad status line in {head:?}"));
            let clen: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.trim()
                        .eq_ignore_ascii_case("content-length")
                        .then(|| v.trim().parse().ok())?
                })
                .expect("response has content-length");
            let total = head_end + 4 + clen;
            if buf.len() >= total {
                let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned();
                buf.drain(..total);
                return Some((status, body));
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
}

/// One request on a fresh connection (`Connection: close`).
fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut buf = Vec::new();
    read_one_response(&mut stream, &mut buf).expect("response before EOF")
}

fn post_score(addr: SocketAddr, body: &str) -> (u16, String) {
    roundtrip(addr, &score_request(body, false))
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

/// JSON body scoring `data.test[i]` for each index, as free text.
fn body_for(data: &Dataset, indices: &[usize]) -> String {
    Json::Arr(
        indices
            .iter()
            .map(|&i| {
                let t = data.test[i].triple;
                Json::Obj(vec![
                    (
                        "title".into(),
                        Json::Str(data.graph.title(t.product).into()),
                    ),
                    (
                        "attr".into(),
                        Json::Str(data.graph.attr_name(t.attr).into()),
                    ),
                    (
                        "value".into(),
                        Json::Str(data.graph.value_text(t.value).into()),
                    ),
                ])
            })
            .collect(),
    )
    .to_string()
}

fn parse_plausibilities(body: &str) -> Vec<f32> {
    json::parse(body)
        .expect("response parses")
        .as_array()
        .expect("response is an array")
        .iter()
        .map(|o| {
            o.get("plausibility")
                .and_then(Json::as_f64)
                .expect("known attribute scores") as f32
        })
        .collect()
}

/// Poll the wire-visible metrics until `metric` reaches `target`.
fn await_counter(handle: &GatewayHandle, metric: &str, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = handle.metrics_text();
        let v: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{metric} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if v >= target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{metric} stuck at {v}, want {target}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn served_scores_bit_identical_to_offline_at_every_replica_count() {
    let data = tiny_data();
    let (model, threshold) = tiny_model(&data, 2);
    let offline = offline_scores(&data, &model);
    for replicas in [1usize, 2, 4] {
        let handle = gateway(
            &data,
            model.clone(),
            threshold,
            GatewayConfig {
                addr: "127.0.0.1:0".into(),
                replicas,
                ..GatewayConfig::default()
            },
        );
        let addr = handle.local_addr();

        // Per-triple requests: distinct titles spread across replicas
        // (each scored by whichever replica the ring picks), so this
        // exercises the sharding, not just one worker.
        for (i, want) in offline.iter().enumerate() {
            let (status, body) = post_score(addr, &body_for(&data, &[i]));
            assert_eq!(status, 200, "replicas={replicas} body: {body}");
            let got = parse_plausibilities(&body)[0];
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "replicas={replicas} triple {i}: served {got} != offline {want}"
            );
        }

        // One batch with every triple routes by the first title; the
        // scores must still be the offline ones, in order.
        let indices: Vec<usize> = (0..data.test.len()).collect();
        let (status, body) = post_score(addr, &body_for(&data, &indices));
        assert_eq!(status, 200);
        let got = parse_plausibilities(&body);
        assert_eq!(got.len(), offline.len());
        for (g, w) in got.iter().zip(&offline) {
            assert_eq!(g.to_bits(), w.to_bits());
        }

        if replicas > 1 {
            // The ring must actually have spread the per-triple
            // requests over several replicas.
            let text = handle.metrics_text();
            let routed_replicas = (0..replicas)
                .filter(|i| {
                    text.lines()
                        .find_map(|l| {
                            l.strip_prefix(&format!("pge_gateway_replica_{i}_routed_total "))
                        })
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .is_some_and(|v| v > 0)
                })
                .count();
            assert!(
                routed_replicas > 1,
                "replicas={replicas} but traffic hit only {routed_replicas}:\n{text}"
            );
        }
        handle.shutdown();
    }
}

#[test]
fn concurrent_hot_swap_never_drops_a_request_and_scores_stay_exact() {
    let data = tiny_data();
    let (model_a, thr_a) = tiny_model(&data, 2);
    let (model_b, thr_b) = tiny_model(&data, 3);
    let offline_a = offline_scores(&data, &model_a);
    let offline_b = offline_scores(&data, &model_b);
    assert!(
        offline_a
            .iter()
            .zip(&offline_b)
            .any(|(a, b)| a.to_bits() != b.to_bits()),
        "snapshots A and B must score differently for the test to bite"
    );

    let handle = gateway(
        &data,
        model_a,
        thr_a,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();
    let n = data.test.len();

    std::thread::scope(|scope| {
        // Four clients hammer keep-alive connections while the main
        // thread swaps A→B→A→B. Every response must be a 200 whose
        // score bit-matches snapshot A or snapshot B — never a blend,
        // an error, or a dropped connection.
        for c in 0..4 {
            let (data, offline_a, offline_b) = (&data, &offline_a, &offline_b);
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut buf = Vec::new();
                for round in 0..30 {
                    let i = (c * 7 + round) % n;
                    let body = body_for(data, &[i]);
                    stream
                        .write_all(score_request(&body, true).as_bytes())
                        .expect("send");
                    let (status, resp) = read_one_response(&mut stream, &mut buf)
                        .expect("gateway must never drop a request mid-swap");
                    assert_eq!(status, 200, "client {c} round {round}: {resp}");
                    let got = parse_plausibilities(&resp)[0];
                    assert!(
                        got.to_bits() == offline_a[i].to_bits()
                            || got.to_bits() == offline_b[i].to_bits(),
                        "client {c} round {round}: {got} matches neither snapshot"
                    );
                }
            });
        }
        for swap in 0..4 {
            std::thread::sleep(Duration::from_millis(30));
            if swap % 2 == 0 {
                handle.swap_model(model_b.clone(), thr_b);
            } else {
                let (model_a, thr_a) = tiny_model(&data, 2);
                handle.swap_model(model_a, thr_a);
            }
        }
    });

    assert_eq!(handle.version(), 4, "four swaps completed");
    let text = handle.metrics_text();
    assert!(text.contains("pge_gateway_swaps_total 4"), "{text}");
    handle.shutdown();
}

#[test]
fn pipelined_requests_come_back_in_order() {
    let data = tiny_data();
    let (model, threshold) = tiny_model(&data, 2);
    let offline = offline_scores(&data, &model);
    let handle = gateway(
        &data,
        model,
        threshold,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();

    // Six single-triple requests written back-to-back before reading
    // anything: different triples route to different replicas, so
    // completions can finish out of order — the wire order must not.
    let k = 6.min(data.test.len());
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut pipelined = String::new();
    for i in 0..k {
        pipelined.push_str(&score_request(&body_for(&data, &[i]), true));
    }
    stream.write_all(pipelined.as_bytes()).expect("send");

    let mut buf = Vec::new();
    for (i, want) in offline.iter().take(k).enumerate() {
        let (status, body) = read_one_response(&mut stream, &mut buf).expect("pipelined response");
        assert_eq!(status, 200);
        let got = parse_plausibilities(&body)[0];
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "pipelined slot {i} answered out of order"
        );
    }
    handle.shutdown();
}

#[test]
fn graceful_shutdown_answers_every_admitted_request() {
    let data = tiny_data();
    let (model, threshold) = tiny_model(&data, 2);
    let handle = gateway(
        &data,
        model,
        threshold,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();

    // Twelve clients write one request each, but nobody reads yet.
    let clients: Vec<TcpStream> = (0..12)
        .map(|c| {
            let mut s = TcpStream::connect(addr).expect("connect");
            let body = body_for(&data, &[c % data.test.len()]);
            s.write_all(score_request(&body, false).as_bytes())
                .expect("send");
            s
        })
        .collect();

    // Wait until the gateway has parsed all twelve, then shut down
    // while their responses are still being scored/flushed.
    await_counter(&handle, "pge_gateway_requests_total", 12);
    let reader = std::thread::spawn(move || {
        clients
            .into_iter()
            .map(|mut s| {
                let mut buf = Vec::new();
                read_one_response(&mut s, &mut buf)
            })
            .collect::<Vec<_>>()
    });
    handle.shutdown();

    let responses = reader.join().expect("reader");
    for (c, resp) in responses.iter().enumerate() {
        let (status, body) = resp
            .as_ref()
            .unwrap_or_else(|| panic!("client {c}: connection cut without a response"));
        assert!(
            *status == 200 || *status == 503,
            "client {c}: unexpected status {status}: {body}"
        );
    }
    // New connections are refused after shutdown.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be gone after shutdown"
    );
}

#[test]
fn reload_swaps_snapshot_and_rejects_corrupt_one() {
    let data = tiny_data();
    let (model_a, thr_a) = tiny_model(&data, 2);
    let (model_b, _thr_b) = tiny_model(&data, 3);
    let offline_b = offline_scores(&data, &model_b);

    let dir = std::env::temp_dir().join(format!("pge-gw-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let good = dir.join("model-b.pgebin");
    std::fs::write(&good, save_model_binary(&model_b).expect("snapshot B")).expect("write");

    let handle = gateway(
        &data,
        model_a,
        thr_a,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();

    // Reload snapshot B through the admin endpoint.
    let body = format!(
        "{{\"path\": {}}}",
        Json::Str(good.to_string_lossy().into_owned())
    );
    let raw = format!(
        "POST /admin/reload HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, resp) = roundtrip(addr, &raw);
    assert_eq!(status, 200, "reload failed: {resp}");
    let parsed = json::parse(&resp).expect("reload response parses");
    assert_eq!(parsed.get("version").and_then(Json::as_f64), Some(1.0));
    assert_eq!(handle.version(), 1);

    // Served scores now bit-match offline snapshot B (the reload
    // refits the threshold on the same validation split Detector::fit
    // uses, so the full detector state converged too).
    for (i, want) in offline_b.iter().enumerate().take(10) {
        let (status, body) = post_score(addr, &body_for(&data, &[i]));
        assert_eq!(status, 200);
        let got = parse_plausibilities(&body)[0];
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "triple {i} not served by snapshot B after reload"
        );
    }

    // A corrupt snapshot is rejected with a retryable 503 (a CRC
    // failure is indistinguishable from a snapshot still being
    // written); the serving model and version are untouched.
    let bad = dir.join("corrupt.pgebin");
    let mut bytes = save_model_binary(&model_b).expect("snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff; // flip a payload bit: CRC must catch it
    std::fs::write(&bad, &bytes).expect("write");
    let body = format!(
        "{{\"path\": {}}}",
        Json::Str(bad.to_string_lossy().into_owned())
    );
    let raw = format!(
        "POST /admin/reload HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let (status, resp) = roundtrip(addr, &raw);
    assert_eq!(status, 503, "corrupt snapshot must be rejected: {resp}");
    assert!(resp.contains("\"retryable\":true"), "{resp}");
    assert_eq!(
        handle.version(),
        1,
        "failed reload must not bump the version"
    );
    let (status, body) = post_score(addr, &body_for(&data, &[0]));
    assert_eq!(status, 200);
    assert_eq!(
        parse_plausibilities(&body)[0].to_bits(),
        offline_b[0].to_bits(),
        "old model must keep serving after a rejected reload"
    );

    // Reload with no path configured and no body is a client error.
    let raw =
        "POST /admin/reload HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\nconnection: close\r\n\r\n";
    let (status, _) = roundtrip(addr, raw);
    assert_eq!(status, 422);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Hot-swap through the store: a mapped PGEBIN02 snapshot reloads
/// over SIGHUP's code path and serves bit-identical scores, and a
/// tampered snapshot is rejected by its section CRC with the old
/// model left serving.
#[test]
fn reload_swaps_mapped_pgebin2_snapshot() {
    let data = tiny_data();
    let (model_a, thr_a) = tiny_model(&data, 2);
    let (model_b, _thr_b) = tiny_model(&data, 3);
    let offline_b = offline_scores(&data, &model_b);

    let dir = std::env::temp_dir().join(format!("pge-gw-reload2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let good = dir.join("model-b.pgebin2");
    pge::core::save_model_store(&model_b, &good).expect("snapshot B");

    let handle = gateway(
        &data,
        model_a,
        thr_a,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            mmap: pge::store::MmapMode::On,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();

    let version = handle
        .reload_from_path(&good.to_string_lossy())
        .expect("mapped PGEBIN02 reload");
    assert_eq!(version, 1);
    for (i, want) in offline_b.iter().enumerate().take(10) {
        let (status, body) = post_score(addr, &body_for(&data, &[i]));
        assert_eq!(status, 200);
        assert_eq!(
            parse_plausibilities(&body)[0].to_bits(),
            want.to_bits(),
            "triple {i} not served by the mapped snapshot after reload"
        );
    }

    // Flip one payload bit: the per-section CRC rejects the swap and
    // the mapped snapshot keeps serving.
    let bad = dir.join("corrupt.pgebin2");
    let mut bytes = std::fs::read(&good).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&bad, &bytes).expect("write");
    let err = handle
        .reload_from_path(&bad.to_string_lossy())
        .expect_err("tampered snapshot must be rejected");
    assert!(err.contains("corrupt"), "unexpected error: {err}");
    assert_eq!(handle.version(), 1);
    let (status, body) = post_score(addr, &body_for(&data, &[0]));
    assert_eq!(status, 200);
    assert_eq!(
        parse_plausibilities(&body)[0].to_bits(),
        offline_b[0].to_bits()
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A reload pointed at a PGEBIN02 snapshot that is still being
/// written (truncated prefix on disk) answers a retryable 503, leaves
/// `reload_busy` clear so the retry is admitted, and the retry against
/// the completed file swaps cleanly. This is the exact sequence the
/// incremental trainer's push loop produces when it races the
/// writer's rename-free snapshot publication.
#[test]
fn reload_of_partially_written_snapshot_is_retryable() {
    let data = tiny_data();
    let (model_a, thr_a) = tiny_model(&data, 2);
    let (model_b, _thr_b) = tiny_model(&data, 3);

    let dir = std::env::temp_dir().join(format!("pge-gw-partial-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let good = dir.join("model-b.pgebin2");
    pge::core::save_model_store(&model_b, &good).expect("snapshot B");
    let full = std::fs::read(&good).expect("read");

    let handle = gateway(
        &data,
        model_a,
        thr_a,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();

    let body = format!(
        "{{\"path\": {}}}",
        Json::Str(good.to_string_lossy().into_owned())
    );
    let raw = format!(
        "POST /admin/reload HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        body.len(),
        body
    );

    // Truncate at several cut points a concurrent writer could be
    // caught at: mid-header, mid-section, just short of the footer.
    for cut in [8, full.len() / 3, full.len() - 4] {
        std::fs::write(&good, &full[..cut]).expect("write partial");
        let (status, resp) = roundtrip(addr, &raw);
        assert_eq!(
            status, 503,
            "cut at {cut}: partial snapshot must be retryable, got {resp}"
        );
        assert!(resp.contains("\"retryable\":true"), "cut at {cut}: {resp}");
        assert_eq!(handle.version(), 0, "partial snapshot must not swap");
    }

    // The writer finishes; the retry that a 503 invites now succeeds.
    std::fs::write(&good, &full).expect("write complete");
    let (status, resp) = roundtrip(addr, &raw);
    assert_eq!(status, 200, "completed snapshot must reload: {resp}");
    assert_eq!(handle.version(), 1);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// End-to-end streaming ingest: a gateway serves live traffic while
/// `train_incremental` fine-tunes on delta windows and pushes each
/// window's snapshot through `POST /admin/reload`. Every push must
/// swap (version advances once per window) and every scoring request
/// racing the swaps must succeed — zero failed requests mid-ingest.
#[test]
fn mid_ingest_push_hot_swaps_with_zero_failed_requests() {
    let data = tiny_data();
    let cfg = PgeConfig {
        epochs: 2,
        confidence_warmup: 1,
        ..PgeConfig::tiny()
    };
    let dir = std::env::temp_dir().join(format!("pge-gw-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trained =
        train_pge_resumable(&data, &cfg, None, Some(&CheckpointOptions::new(&dir))).unwrap();
    let threshold = Detector::fit(&trained.model, &data.graph, &data.valid).threshold;
    let handle = gateway(
        &data,
        trained.model,
        threshold,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();

    // Live traffic racing the ingest: one client scoring in a loop
    // until the ingest finishes. Every response must be a 200.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scorer = {
        let stop = stop.clone();
        let data = tiny_data();
        std::thread::spawn(move || {
            let mut statuses = Vec::new();
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (status, body) = post_score(addr, &body_for(&data, &[i % data.test.len()]));
                assert!(!body.is_empty());
                statuses.push(status);
                i += 1;
            }
            statuses
        })
    };

    let d = |op, title: &str, attr: &str, value: &str| TripleDelta {
        op,
        title: title.into(),
        attr: attr.into(),
        value: value.into(),
    };
    let windows = vec![
        DeltaWindow {
            index: 0,
            ops: vec![
                d(
                    DeltaOp::Add,
                    "Drift Farms Spicy Salsa, 12 oz",
                    "flavor",
                    "spicy",
                ),
                d(
                    DeltaOp::Add,
                    "Drift Farms Spicy Salsa, 12 oz",
                    "ingredient",
                    "cayenne pepper",
                ),
            ],
        },
        DeltaWindow {
            index: 1,
            ops: vec![d(
                DeltaOp::Add,
                "Drift Farms Sweet Tea, 16 oz",
                "flavor",
                "sweet",
            )],
        },
    ];
    let mut inc = IncrementalConfig::new(dir.join("snapshots"));
    inc.push = Some(addr.to_string());
    let outcome = train_incremental(
        &data,
        &windows,
        &cfg,
        &inc,
        &CheckpointOptions::new(&dir),
        None,
    )
    .expect("ingest with push");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let statuses = scorer.join().expect("scorer thread");

    assert_eq!(outcome.windows_done, windows.len());
    assert_eq!(outcome.pushes.len(), windows.len(), "every window pushes");
    for (w, p) in outcome.pushes.iter().enumerate() {
        assert_eq!(p.window, w);
        assert_eq!(p.version, w as u64 + 1, "each push swaps exactly once");
    }
    assert_eq!(handle.version(), windows.len() as u64);
    assert!(
        !statuses.is_empty(),
        "scorer must have raced the ingest at least once"
    );
    let failed = statuses.iter().filter(|s| **s != 200).count();
    assert_eq!(
        failed,
        0,
        "{failed} of {} scoring requests failed mid-ingest",
        statuses.len()
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stalled_replica_surfaces_in_tail_sampled_traces_as_queue_time() {
    let data = tiny_data();
    let (model, threshold) = tiny_model(&data, 2);
    let handle = gateway(
        &data,
        model,
        threshold,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();
    let n = data.test.len();

    // Healthy pass: nothing stalled. The slowest client-observed
    // round trip bounds the non-stall latency, so the excess a
    // stalled request shows over it is attributable to the fault.
    let mut healthy = Duration::ZERO;
    for i in 0..n {
        let t0 = Instant::now();
        let (status, _) = post_score(addr, &body_for(&data, &[i]));
        assert_eq!(status, 200);
        healthy = healthy.max(t0.elapsed());
    }

    // Retain only traces slower than anything the healthy pass
    // produced, then stall replica 0 by 50 ms per batch and replay
    // the same traffic. Titles routed to replica 0 cross the
    // threshold; titles routed to replica 1 must not.
    let stall = Duration::from_millis(50);
    handle.set_trace_threshold(healthy.max(Duration::from_millis(40)));
    handle.set_replica_stall(0, stall);
    for i in 0..n {
        let (status, _) = post_score(addr, &body_for(&data, &[i]));
        assert_eq!(status, 200);
    }

    let retained = handle.retained_traces(usize::MAX);
    assert!(
        !retained.is_empty(),
        "stalled replica produced no tail-sampled traces"
    );
    for t in &retained {
        let route = t
            .events
            .iter()
            .find(|e| e.stage == Stage::Route)
            .expect("retained trace has a route event");
        assert_eq!(
            route.arg, 0,
            "only the stalled replica may appear in the slow set: {t:?}"
        );
        let queued = t
            .stage_durations()
            .into_iter()
            .find_map(|(s, d)| (s == Stage::QueueAdmit).then_some(d))
            .expect("retained trace has a queue_admit stage");
        // The injected delay lands between queue admit and dequeue,
        // so >=90% of both the stall itself and the excess over the
        // healthy bound must be attributed to queue time.
        assert!(
            queued as u128 * 10 >= stall.as_nanos() * 9,
            "queue stage {queued} ns < 90% of the {stall:?} stall: {t:?}"
        );
        let excess = t.total_nanos.saturating_sub(healthy.as_nanos() as u64);
        assert!(
            queued as u128 * 10 >= excess as u128 * 9,
            "queue stage {queued} ns < 90% of {excess} ns excess: {t:?}"
        );
    }

    // The same traces are live on the wire: /debug/trace serves the
    // retained set newest-first as JSON waterfalls.
    let (status, body) = get(addr, "/debug/trace?n=64");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).expect("debug trace parses");
    let served = parsed.as_array().expect("debug trace is an array");
    assert_eq!(served.len(), retained.len());
    let slowest = retained
        .iter()
        .max_by_key(|t| t.total_nanos)
        .expect("non-empty");
    assert!(
        body.contains(&format!("{:016x}", slowest.trace_id)),
        "slowest trace id missing from /debug/trace: {body}"
    );
    assert!(body.contains("\"stage\":\"queue_admit\""), "{body}");

    handle.shutdown();
}

#[test]
fn health_version_metrics_and_errors_speak_http() {
    let data = tiny_data();
    let (model, threshold) = tiny_model(&data, 2);
    let handle = gateway(
        &data,
        model,
        threshold,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 3,
            ..GatewayConfig::default()
        },
    );
    let addr = handle.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = get(addr, "/admin/version");
    assert_eq!(status, 200);
    let parsed = json::parse(&body).expect("version parses");
    assert_eq!(parsed.get("version").and_then(Json::as_f64), Some(0.0));
    assert_eq!(parsed.get("replicas").and_then(Json::as_f64), Some(3.0));

    let (status, _) = get(addr, "/v1/score");
    assert_eq!(status, 405);
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    let (status, body) = post_score(addr, "{not json");
    assert_eq!(status, 400, "{body}");

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for name in [
        "pge_gateway_requests_total",
        "pge_gateway_responses_total",
        "pge_gateway_bad_requests_total 1",
        "pge_gateway_replica_2_routed_total",
        "pge_gateway_model_version 0",
    ] {
        assert!(metrics.contains(name), "missing {name} in:\n{metrics}");
    }
    handle.shutdown();
}
