//! Integration tests for `pge-serve`: a real server on an ephemeral
//! port, spoken to over TCP with a hand-rolled HTTP/1.1 client.
//!
//! The central claim under test is the serving consistency invariant:
//! scores answered online — through the queue, micro-batcher, worker
//! pool, and embedding cache — are bit-identical to offline
//! [`Detector::scores`] on the same triples.

use pge::core::{train_pge, Detector, PgeConfig, PgeModel};
use pge::datagen::{generate_catalog, CatalogConfig};
use pge::graph::Dataset;
use pge::serve::json::{self, Json};
use pge::serve::{start, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Train a tiny model and fit its detection threshold. Quality is
/// irrelevant here — determinism is what the tests lean on.
fn tiny_setup() -> (Dataset, PgeModel, f32) {
    let data = generate_catalog(&CatalogConfig {
        products: 120,
        labeled: 40,
        seed: 17,
        ..CatalogConfig::tiny()
    });
    let trained = train_pge(
        &data,
        &PgeConfig {
            epochs: 2,
            ..PgeConfig::tiny()
        },
    );
    let threshold = Detector::fit(&trained.model, &data.graph, &data.valid).threshold;
    (data, trained.model, threshold)
}

fn serve_tiny(cfg: ServeConfig) -> (Dataset, f32, Vec<f32>, ServerHandle) {
    let (data, model, threshold) = tiny_setup();
    let offline = {
        let det = Detector::fit(&model, &data.graph, &data.valid);
        let triples: Vec<_> = data.test.iter().map(|lt| lt.triple).collect();
        det.scores(&data.graph, &triples)
    };
    let graph = data.graph.clone();
    let handle = start(model, graph, threshold, cfg).expect("bind ephemeral port");
    (data, threshold, offline, handle)
}

/// Send one request and read the full response (the request always
/// carries `Connection: close`, so EOF delimits it).
fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_score(addr: SocketAddr, body: &str) -> (u16, String) {
    let raw = format!(
        "POST /v1/score HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    roundtrip(addr, &raw)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

/// JSON request body scoring `data.test[range]` as free text.
fn body_for(data: &Dataset, indices: &[usize]) -> String {
    Json::Arr(
        indices
            .iter()
            .map(|&i| {
                let t = data.test[i].triple;
                Json::Obj(vec![
                    (
                        "title".into(),
                        Json::Str(data.graph.title(t.product).into()),
                    ),
                    (
                        "attr".into(),
                        Json::Str(data.graph.attr_name(t.attr).into()),
                    ),
                    (
                        "value".into(),
                        Json::Str(data.graph.value_text(t.value).into()),
                    ),
                ])
            })
            .collect(),
    )
    .to_string()
}

/// Parse a scoring response into (plausibility, is_error) pairs.
fn parse_scores(body: &str) -> Vec<(Option<f32>, Option<bool>)> {
    let parsed = json::parse(body).expect("response parses");
    parsed
        .as_array()
        .expect("response is an array")
        .iter()
        .map(|o| {
            (
                o.get("plausibility")
                    .and_then(Json::as_f64)
                    .map(|f| f as f32),
                o.get("is_error").and_then(Json::as_bool),
            )
        })
        .collect()
}

#[test]
fn eight_concurrent_clients_match_offline_scores_bit_for_bit() {
    let (data, threshold, offline, handle) = serve_tiny(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let indices: Vec<usize> = (0..data.test.len()).collect();
    let body = body_for(&data, &indices);

    // Eight clients fire the full test split simultaneously; batches
    // will interleave items from several jobs and the cache warms
    // mid-flight — none of which may change a single bit.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                let (status, resp) = post_score(addr, &body);
                assert_eq!(status, 200, "body: {resp}");
                let scores = parse_scores(&resp);
                assert_eq!(scores.len(), offline.len());
                for (i, ((p, e), want)) in scores.iter().zip(&offline).enumerate() {
                    let got = p.expect("known attribute scores");
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "triple {i}: served {got} != offline {want}"
                    );
                    assert_eq!(*e, Some(got <= threshold));
                }
            });
        }
    });

    // Eight identical requests → later ones must have hit the cache,
    // and the wire-visible metrics must say so.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("pge_cache_hits_total "))
        .expect("pge_cache_hits_total exported")
        .trim()
        .parse()
        .expect("counter is integral");
    assert!(
        hits > 0,
        "no cache hits after identical requests:\n{metrics}"
    );
    assert!(metrics.contains("pge_score_requests_total 8"));
    handle.shutdown();
}

#[test]
fn golden_request_response_round_trip() {
    let (data, threshold, offline, handle) = serve_tiny(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();

    // One known triple and one with an attribute the model never saw.
    let t = data.test[0].triple;
    let request = Json::Arr(vec![
        Json::Obj(vec![
            (
                "title".into(),
                Json::Str(data.graph.title(t.product).into()),
            ),
            (
                "attr".into(),
                Json::Str(data.graph.attr_name(t.attr).into()),
            ),
            (
                "value".into(),
                Json::Str(data.graph.value_text(t.value).into()),
            ),
        ]),
        Json::Obj(vec![
            ("title".into(), Json::Str("acme widget".into())),
            ("attr".into(), Json::Str("no-such-attribute".into())),
            ("value".into(), Json::Str("blue".into())),
        ]),
    ])
    .to_string();

    let (status, body) = post_score(addr, &request);
    assert_eq!(status, 200, "body: {body}");
    let golden = Json::Arr(vec![
        Json::Obj(vec![
            ("plausibility".into(), Json::Num(offline[0] as f64)),
            ("is_error".into(), Json::Bool(offline[0] <= threshold)),
        ]),
        Json::Obj(vec![
            ("plausibility".into(), Json::Null),
            ("is_error".into(), Json::Null),
            ("detail".into(), Json::Str("unknown attribute".into())),
        ]),
    ])
    .to_string();
    assert_eq!(body, golden);

    // An empty batch is a successful no-op.
    let (status, body) = post_score(addr, "[]");
    assert_eq!(status, 200);
    assert_eq!(body, "[]");
    handle.shutdown();
}

#[test]
fn malformed_requests_get_4xx_not_5xx() {
    let (_data, _threshold, _offline, handle) = serve_tiny(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();

    for bad in [
        "{not json",
        "{\"title\": \"a\"}",                    // object, not array
        "[{\"title\": \"a\", \"attr\": \"b\"}]", // missing value
        "[{\"title\": 3, \"attr\": \"b\", \"value\": \"c\"}]", // non-string field
    ] {
        let (status, body) = post_score(addr, bad);
        assert_eq!(status, 400, "payload {bad:?} got body {body}");
        assert!(body.contains("error"), "no error field in {body}");
    }

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = get(addr, "/v1/score");
    assert_eq!(status, 405, "wrong method must be 405");
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);
    handle.shutdown();
}

#[test]
fn metrics_expose_stage_latency_breakdown() {
    let (data, _threshold, _offline, handle) = serve_tiny(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let (status, _) = post_score(addr, &body_for(&data, &[0, 1, 2]));
    assert_eq!(status, 200);

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    // Legacy names survive the registry migration...
    for name in [
        "pge_score_requests_total",
        "pge_cache_hits_total",
        "pge_request_latency_seconds_count",
    ] {
        assert!(metrics.contains(name), "missing {name} in:\n{metrics}");
    }
    // ...and the per-stage breakdown rides along. A scored request
    // passes through every stage except encode-on-hit, so each stage
    // histogram must have observations (the batch had misses too:
    // a fresh cache).
    for name in [
        "pge_serve_stage_queue_wait_seconds",
        "pge_serve_stage_batch_assembly_seconds",
        "pge_serve_stage_encode_seconds",
        "pge_serve_stage_score_seconds",
    ] {
        let count_line = metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name}_count ")))
            .unwrap_or_else(|| panic!("missing {name}_count in:\n{metrics}"));
        let count: u64 = count_line.trim().parse().expect("count parses");
        assert!(count > 0, "{name} recorded nothing");
    }
    handle.shutdown();
}

#[test]
fn graceful_shutdown_answers_every_admitted_request() {
    let (data, _threshold, _offline, handle) = serve_tiny(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();

    // Ten clients write one request each; nobody reads yet, so the
    // responses are still queued or in flight when shutdown starts.
    let clients: Vec<TcpStream> = (0..10)
        .map(|c| {
            let mut s = TcpStream::connect(addr).expect("connect");
            let body = body_for(&data, &[c % data.test.len()]);
            let raw = format!(
                "POST /v1/score HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
                body.len(),
                body
            );
            s.write_all(raw.as_bytes()).expect("send");
            s
        })
        .collect();

    // Wait until the server has admitted all ten into the queue, then
    // shut down while they are being scored and written back.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let admitted: u64 = handle
            .metrics_text()
            .lines()
            .find_map(|l| l.strip_prefix("pge_score_requests_total "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if admitted >= 10 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server admitted only {admitted} of 10 requests"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let reader = std::thread::spawn(move || {
        clients
            .into_iter()
            .enumerate()
            .map(|(c, mut s)| {
                let mut response = String::new();
                s.read_to_string(&mut response).expect("read");
                assert!(
                    !response.is_empty(),
                    "client {c}: connection cut without a response"
                );
                let status: u16 = response
                    .split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("client {c}: bad response {response:?}"));
                status
            })
            .collect::<Vec<u16>>()
    });
    handle.shutdown();
    for (c, status) in reader.join().expect("reader").into_iter().enumerate() {
        assert!(
            status == 200 || status == 503,
            "client {c}: admitted request answered with {status}"
        );
    }
}

#[test]
fn runlog_records_manifest_and_serve_snapshot() {
    let dir = std::env::temp_dir().join(format!("pge-serve-runlog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("serve.jsonl");
    let (data, _threshold, _offline, handle) = serve_tiny(ServeConfig {
        addr: "127.0.0.1:0".into(),
        runlog_path: Some(path.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    });
    let addr = handle.local_addr();
    let (status, _) = post_score(addr, &body_for(&data, &[0, 1]));
    assert_eq!(status, 200);
    handle.shutdown();

    let text = std::fs::read_to_string(&path).expect("runlog written");
    let events: Vec<Json> = text
        .lines()
        .map(|l| json::parse(l).expect("valid JSON line"))
        .collect();
    let kind = |e: &Json| e.get("event").and_then(Json::as_str).map(String::from);
    assert_eq!(kind(&events[0]).as_deref(), Some("manifest"));
    assert_eq!(
        events[0].get("kind").and_then(Json::as_str),
        Some("serve"),
        "manifest kind"
    );
    let snapshot = events
        .iter()
        .find(|e| kind(e).as_deref() == Some("serve"))
        .expect("serve snapshot event");
    let n = |k: &str| snapshot.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
    assert_eq!(n("requests_total"), 1.0);
    assert_eq!(n("items_total"), 2.0);
    assert!(n("latency_p99_ms") >= 0.0);
    std::fs::remove_dir_all(&dir).ok();
}
