//! Inductive-setting integration tests (§4.4 of the paper): training
//! and test entity sets are disjoint, and PGE still works because it
//! encodes entities from text.

use pge::core::{train_pge, PgeConfig};
use pge::datagen::{generate_catalog, CatalogConfig};

fn inductive_data() -> pge::graph::Dataset {
    let base = generate_catalog(&CatalogConfig {
        products: 300,
        labeled: 90,
        allow_unseen_values: true,
        seed: 11,
        ..CatalogConfig::default()
    });
    base.to_inductive()
}

#[test]
fn inductive_split_is_entity_disjoint() {
    let d = inductive_data();
    assert!(d.is_entity_disjoint());
    assert!(!d.train.is_empty(), "filtering must leave training data");
    assert!(!d.test.is_empty());
}

#[test]
fn pge_scores_unseen_entities_finitely_and_usefully() {
    let d = inductive_data();
    let trained = train_pge(
        &d,
        &PgeConfig {
            epochs: 8,
            ..PgeConfig::tiny()
        },
    );
    let mut good = 0.0f32;
    let mut bad = 0.0f32;
    let mut n_good = 0;
    let mut n_bad = 0;
    for lt in &d.test {
        let f = trained.model.score_triple(&lt.triple);
        assert!(f.is_finite(), "non-finite score on unseen entity");
        if lt.correct {
            good += f;
            n_good += 1;
        } else {
            bad += f;
            n_bad += 1;
        }
    }
    // Means must still separate in the inductive regime (weaker than
    // transductive, but present).
    assert!(
        good / n_good as f32 > bad / n_bad as f32,
        "inductive separation failed: correct {} vs wrong {}",
        good / n_good as f32,
        bad / n_bad as f32
    );
}

#[test]
fn vocabulary_maps_unseen_words_to_unk() {
    let d = inductive_data();
    let trained = train_pge(
        &d,
        &PgeConfig {
            epochs: 1,
            ..PgeConfig::tiny()
        },
    );
    // A nonsense word can't be in the training vocabulary.
    assert_eq!(
        trained.model.vocab.get("qwertyzxcv"),
        None,
        "fabricated word should be unknown"
    );
    let ids = trained.model.vocab.encode(&["qwertyzxcv".to_string()]);
    assert_eq!(ids, vec![pge::text::Vocab::UNK]);
}

#[test]
fn sample_train_preserves_parallel_clean_flags() {
    let d = inductive_data();
    for ratio in [0.1, 0.5, 1.0] {
        let s = d.sample_train(ratio);
        assert_eq!(s.train.len(), s.train_clean.len());
    }
}
