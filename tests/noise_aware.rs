//! Noise-aware mechanism integration tests (§3.3, §4.5, Fig. 5/6).

use pge::core::{train_pge, PgeConfig};
use pge::datagen::{generate_catalog, CatalogConfig};
use pge::eval::Histogram;

fn noisy_catalog(noise: f64) -> pge::graph::Dataset {
    generate_catalog(&CatalogConfig {
        products: 250,
        labeled: 80,
        train_noise: noise,
        seed: 21,
        ..CatalogConfig::default()
    })
}

fn cfg(noise_aware: bool) -> PgeConfig {
    PgeConfig {
        epochs: 10,
        noise_aware,
        ..PgeConfig::tiny()
    }
}

#[test]
fn confidence_separates_clean_from_injected_noise() {
    let d = noisy_catalog(0.15);
    // Confidence moves by at most `confidence_lr` per epoch, so the
    // short test budget needs the aggressive schedule Fig. 5 uses.
    let trained = train_pge(
        &d,
        &PgeConfig {
            epochs: 12,
            confidence_lr: 0.08,
            alpha: 0.9,
            confidence_warmup: 2,
            ..cfg(true)
        },
    );
    let mut clean = Histogram::unit(10);
    let mut noisy = Histogram::unit(10);
    let (mut clean_sum, mut noisy_sum) = (0.0f32, 0.0f32);
    for (i, &is_clean) in d.train_clean.iter().enumerate() {
        let c = trained.confidence.get(i);
        if is_clean {
            clean.add(c);
            clean_sum += c;
        } else {
            noisy.add(c);
            noisy_sum += c;
        }
    }
    // Noisy triples must be marked down more often and sit lower on
    // average.
    let clean_down = clean.fraction_below(0.5);
    let noisy_down = noisy.fraction_below(0.5);
    assert!(
        noisy_down > clean_down + 0.05,
        "markdown rates: clean {clean_down:.3}, noisy {noisy_down:.3}"
    );
    let clean_mean = clean_sum / clean.total() as f32;
    let noisy_mean = noisy_sum / noisy.total() as f32;
    assert!(
        noisy_mean < clean_mean - 0.05,
        "mean confidence: clean {clean_mean:.3}, noisy {noisy_mean:.3}"
    );
}

#[test]
fn confidences_stay_in_unit_interval() {
    let d = noisy_catalog(0.10);
    let trained = train_pge(&d, &cfg(true));
    assert!(trained
        .confidence
        .scores()
        .iter()
        .all(|&c| (0.0..=1.0).contains(&c)));
}

#[test]
fn disabling_noise_aware_keeps_all_confidences_at_one() {
    let d = noisy_catalog(0.10);
    let trained = train_pge(&d, &cfg(false));
    assert!(trained.confidence.scores().iter().all(|&c| c == 1.0));
}

#[test]
fn appended_artificial_noise_is_flagged() {
    // Fig. 5(b): append corruptions and check their confidences drop.
    let mut d = noisy_catalog(0.0);
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(77)
    };
    let (train, clean) =
        pge::graph::noise::append_noise(&d.graph, &d.train, d.train.len() / 10, &mut rng);
    d.train = train;
    d.train_clean = clean;
    let trained = train_pge(&d, &cfg(true));
    let mean = |sel: bool| {
        let xs: Vec<f32> = d
            .train_clean
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == sel)
            .map(|(i, _)| trained.confidence.get(i))
            .collect();
        xs.iter().sum::<f32>() / xs.len() as f32
    };
    assert!(
        mean(true) > mean(false),
        "clean mean {} vs injected-noise mean {}",
        mean(true),
        mean(false)
    );
}
