//! TSV serialization round-trips for generated datasets.

use pge::datagen::{generate_catalog, generate_fbkg, CatalogConfig, FbkgConfig};
use pge::graph::tsv::{from_tsv, to_tsv};

#[test]
fn catalog_round_trips_through_tsv() {
    let d = generate_catalog(&CatalogConfig::tiny());
    let text = to_tsv(&d).expect("generated text has no tabs/newlines");
    let back = from_tsv(&text).expect("parses");
    assert_eq!(back.graph.num_products(), d.graph.num_products());
    assert_eq!(back.graph.num_values(), d.graph.num_values());
    assert_eq!(back.graph.triples(), d.graph.triples());
    assert_eq!(back.train, d.train);
    assert_eq!(back.train_clean, d.train_clean);
    assert_eq!(back.valid, d.valid);
    assert_eq!(back.test, d.test);
}

#[test]
fn fbkg_round_trips_through_tsv() {
    let d = generate_fbkg(&FbkgConfig::tiny());
    let text = to_tsv(&d).unwrap();
    let back = from_tsv(&text).unwrap();
    assert_eq!(back.train, d.train);
    assert_eq!(back.test, d.test);
}

#[test]
fn inductive_flag_round_trips() {
    let d = generate_catalog(&CatalogConfig {
        allow_unseen_values: true,
        ..CatalogConfig::tiny()
    })
    .to_inductive();
    let text = to_tsv(&d).unwrap();
    let back = from_tsv(&text).unwrap();
    assert_eq!(back.split, pge::graph::Split::Inductive);
    assert!(back.is_entity_disjoint());
}

#[test]
fn tsv_is_diffable_text() {
    let d = generate_catalog(&CatalogConfig::tiny());
    let a = to_tsv(&d).unwrap();
    let b = to_tsv(&d).unwrap();
    assert_eq!(a, b, "serialization must be deterministic");
    assert!(a.lines().count() > 100);
    assert!(a.starts_with("#pge-dataset v1"));
}
