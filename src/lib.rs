//! # PGE — Robust Product Graph Embedding Learning for Error Detection
//!
//! A from-scratch Rust reproduction of *Cheng, Li, Xu, Dong, Sun,
//! "PGE: Robust Product Graph Embedding Learning for Error Detection",
//! PVLDB 15(6), 2022*.
//!
//! This umbrella crate re-exports the workspace so applications can
//! depend on a single crate:
//!
//! ```
//! use pge::datagen::{generate_catalog, CatalogConfig};
//! use pge::core::{train_pge, Detector, PgeConfig};
//!
//! // Generate a small synthetic product catalog with labeled errors.
//! let data = generate_catalog(&CatalogConfig {
//!     products: 120,
//!     labeled: 40,
//!     ..CatalogConfig::tiny()
//! });
//!
//! // Train PGE and fit the detection threshold on validation data.
//! let mut cfg = PgeConfig::tiny();
//! cfg.epochs = 2; // doc-test speed
//! let trained = train_pge(&data, &cfg);
//! let detector = Detector::fit(&trained.model, &data.graph, &data.valid);
//!
//! // Flag suspicious triples in the test split.
//! let flagged = data
//!     .test
//!     .iter()
//!     .filter(|lt| detector.is_error(&data.graph, &lt.triple))
//!     .count();
//! assert!(flagged <= data.test.len());
//! ```
//!
//! ## Layout
//!
//! | Module | Contents |
//! |---|---|
//! | [`tensor`] | dense f32 matrices, kernels, fast hashing |
//! | [`nn`] | CNN / LSTM / Transformer layers, Adam, gradcheck |
//! | [`text`] | tokenizer, vocabulary, word2vec |
//! | [`graph`] | product-graph store, splits, sampling, noise |
//! | [`datagen`] | synthetic Amazon-like catalog + FB15K-237-like KG |
//! | [`core`] | the PGE model, noise-aware training, detection |
//! | [`baselines`] | KGE, CKRL, DKRL, SSP, LSTM/Transformer, RotatE+, Union |
//! | [`eval`] | PR AUC, R@P, thresholds, histograms, tables |
//! | [`store`] | out-of-core snapshot store: mmap, PGEBIN02, catalogs |
//! | [`obs`] | metrics registry, span timers, JSONL run logs |
//! | [`serve`] | online scoring service: HTTP, micro-batching, cache |
//! | [`scan`] | offline bulk scan: checkpointed streaming pipeline |
//! | [`gateway`] | sharded serving tier: epoll loop, consistent-hash routing, hot-swap |

pub use pge_baselines as baselines;
pub use pge_core as core;
pub use pge_datagen as datagen;
pub use pge_eval as eval;
pub use pge_gateway as gateway;
pub use pge_graph as graph;
pub use pge_nn as nn;
pub use pge_obs as obs;
pub use pge_scan as scan;
pub use pge_serve as serve;
pub use pge_store as store;
pub use pge_tensor as tensor;
pub use pge_text as text;
