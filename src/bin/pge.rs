//! `pge` — command-line error detection for product catalogs.
//!
//! ```text
//! pge generate --kind catalog|fb --out data.tsv [--products N] [--seed N]
//!              [--scan-out raw.tsv]
//!              [--count N --catalog-out catalog.bin]
//! pge train    --data data.tsv --out model.pge [--epochs N] [--score transe|rotate]
//!              [--threads N] [--binary] [--checkpoint DIR | --resume DIR]
//!              [--stop-after N] [--runlog run.jsonl]
//! pge embed    --data data.tsv --model model.pge --catalog catalog.bin
//!              --out bank.pge [--mmap auto|on|off]
//! pge detect   --data data.tsv --model model.pge [--top N] [--runlog run.jsonl]
//! pge eval     --data data.tsv --model model.pge [--runlog run.jsonl]
//! pge serve    --data data.tsv --model model.pge [--addr HOST:PORT]
//!              [--threads N] [--cache-cap N] [--queue-cap N] [--no-cache]
//!              [--mmap auto|on|off] [--runlog run.jsonl]
//! pge scan     --data data.tsv --model model.pge --input raw.tsv|catalog.bin
//!              --out-dir DIR
//!              [--jobs N] [--chunk-size N] [--shard-chunks N] [--cache-cap N]
//!              [--resume] [--max-shards N] [--mmap auto|on|off]
//!              [--runlog run.jsonl]
//! pge report   run.jsonl
//! pge trace    run.jsonl
//! pge check-metrics metrics.txt
//! ```
//!
//! `generate` writes a synthetic labeled dataset; `train` fits
//! PGE(CNN) on its training split and saves the model; `detect` ranks
//! the dataset's test triples by suspicion; `eval` reports PR AUC,
//! R@P, and thresholded accuracy; `serve` answers scoring requests
//! over HTTP (see `pge-serve`); `scan` streams a raw
//! `title \t attr \t value` file through the model and writes sharded
//! scores with a checkpoint after every shard (see `pge-scan`) —
//! killed scans rerun with `--resume` and produce byte-identical
//! output.
//!
//! Models save as text by default; `train --binary` writes the
//! memory-mappable PGEBIN02 snapshot instead (sectioned, 64-byte
//! aligned, per-section CRC — see `pge-store`). Every command
//! auto-detects any format (text, PGEBIN01, PGEBIN02) on load;
//! `--mmap` controls whether a PGEBIN02 snapshot is served straight
//! off the page cache (`on`), copied to the heap (`off`), or mapped
//! with a heap fallback (`auto`, the default).
//!
//! `generate --count N --catalog-out catalog.bin` streams a
//! paper-scale seeded catalog (750k products ≈ 5M triples) to a
//! compact CRC-guarded binary blob without ever holding it in
//! memory; `pge scan` consumes it directly. `pge embed` pre-computes
//! an embedding bank for every distinct catalog string and writes it
//! into the model's snapshot, so scan/serve score out-of-core.
//!
//! `train --checkpoint DIR` writes the full trainer state (model,
//! Adam moments, confidence table) atomically to `DIR/trainer.ckpt`
//! after every epoch; a killed run continues with `--resume DIR` and
//! finishes **bit-identical** to an uninterrupted run, at any
//! `--threads`. Resuming against a different dataset or config is
//! rejected by fingerprint. `--stop-after N` halts after N epochs
//! (with the checkpoint on disk) to simulate a kill in tests/CI.
//!
//! `train --threads N` splits every minibatch across N worker
//! threads (default: the machine's available parallelism). Results
//! are bit-identical for any thread count at a fixed seed — see
//! DESIGN.md on gradient-lane reduction.
//!
//! `--runlog` appends structured JSONL telemetry (run manifest,
//! per-epoch training records, eval results, serve snapshots, span
//! timings) to the given file; successive commands can share one file
//! and `pge report` summarizes it.

use pge::core::{
    load_model_auto_path, resolve_threads, save_model, save_model_store, train_incremental,
    train_pge_resumable, write_model_sections, CheckpointOptions, ConfidenceBackend, Detector,
    IncrementalConfig, PgeConfig, PgeModel, ScoreKind,
};
use pge::datagen::{
    generate_catalog, generate_drift, generate_fbkg, stream_catalog, write_drift_eval,
    CatalogConfig, DriftConfig, FbkgConfig,
};
use pge::eval::{average_precision, recall_at_precision, Scored};
use pge::gateway::GatewayConfig;
use pge::graph::tsv::{from_tsv, to_tsv, write_raw_triples};
use pge::graph::{read_delta_stream, write_delta_stream, Dataset, ProductGraph, Triple};
use pge::obs::{
    eval_event, global_tracer, manifest_event, render_report, render_traces, scan_event,
    set_spans_enabled, spans_event, trace_event, validate_exposition, EvalTelemetry, RunLog,
    Tracer,
};
use pge::scan::ScanConfig;
use pge::serve::ServeConfig;
use pge::store::{
    BankBuilder, CatalogReader, CatalogWriter, MmapMode, SnapshotWriter, DEFAULT_RESIDENT_BUDGET,
};
use std::collections::HashMap;
use std::path::Path;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  pge generate --kind catalog|fb --out data.tsv [--products N] [--seed N] [--scan-out raw.tsv]\n               \
         [--count N --catalog-out catalog.bin]   (streamed paper-scale binary catalog)\n               \
         [--drift-out deltas.tsv --drift-windows N --drift-ops N --drift-seed N\n                \
         --drift-eval-out eval.tsv]   (seeded churn scenario for incremental training)\n  \
         pge train    --data data.tsv --out model.pge [--epochs N] [--score transe|rotate]\n               \
         [--threads N] [--binary] [--checkpoint DIR | --resume DIR] [--stop-after N]\n               \
         [--confidence pge|cca] [--runlog run.jsonl]\n               \
         [--incremental --deltas deltas.tsv --window-epochs N --snapshot-dir DIR\n                \
         --push HOST:PORT]   (warm-start from --checkpoint, ingest delta windows)\n  \
         pge embed    --data data.tsv --model model.pge --catalog catalog.bin --out bank.pge\n               \
         [--mmap auto|on|off]   (write model + precomputed embedding bank snapshot)\n  \
         pge detect   --data data.tsv --model model.pge [--top N] [--mmap auto|on|off] [--runlog run.jsonl]\n  \
         pge eval     --data data.tsv --model model.pge [--mmap auto|on|off] [--runlog run.jsonl]\n  \
         pge serve    --data data.tsv --model model.pge [--addr HOST:PORT]\n               \
         [--threads N] [--cache-cap N] [--queue-cap N] [--no-cache]\n               \
         [--trace-slow MS] [--mmap auto|on|off] [--runlog run.jsonl]\n  \
         pge scan     --data data.tsv --model model.pge --input raw.tsv|catalog.bin --out-dir DIR\n               \
         [--jobs N] [--chunk-size N] [--shard-chunks N] [--cache-cap N]\n               \
         [--resume] [--max-shards N] [--mmap auto|on|off] [--runlog run.jsonl]\n  \
         pge gateway  --data data.tsv --model model.pge [--addr HOST:PORT] [--replicas N]\n               \
         [--vnodes N] [--cache-cap N] [--queue-cap N] [--max-batch N] [--no-cache]\n               \
         [--trace-slow MS] [--mmap auto|on|off] [--runlog run.jsonl]   (SIGHUP hot-swaps --model from disk)\n  \
         pge report   run.jsonl\n  \
         pge trace    run.jsonl        (per-stage waterfalls of retained slow traces)\n  \
         pge check-metrics metrics.txt (lint a scraped /metrics exposition)"
    );
    exit(2)
}

/// Open the `--runlog` sink if requested, enabling span timers for
/// the rest of the process (they stay disabled — near-zero cost —
/// otherwise).
fn open_runlog(path: Option<String>) -> Option<RunLog> {
    let path = path?;
    let log = RunLog::create(&path).unwrap_or_else(|e| {
        eprintln!("cannot open runlog {path}: {e}");
        exit(1)
    });
    set_spans_enabled(true);
    Some(log)
}

/// Parse `--flag value` pairs. A flag followed by another flag (or by
/// the end of the arguments) is boolean and maps to `"true"` — so
/// `--no-cache` works with or without an explicit value.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let name = arg
            .strip_prefix("--")
            .filter(|n| !n.is_empty())
            .ok_or_else(|| format!("unexpected argument '{arg}'"))?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                flags.insert(name.to_string(), v.clone());
                i += 2;
            }
            _ => {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        }
    }
    Ok(flags)
}

/// Parse `--mmap auto|on|off` (default `auto`: map PGEBIN02
/// snapshots when possible, fall back to a heap copy).
fn parse_mmap(flags: &HashMap<String, String>) -> MmapMode {
    match flags.get("mmap").map(String::as_str) {
        None => MmapMode::Auto,
        Some(s) => MmapMode::parse(s).unwrap_or_else(|| {
            eprintln!("invalid --mmap '{s}' (expected auto, on, or off)");
            exit(2)
        }),
    }
}

/// Read a model snapshot — text, PGEBIN01, or PGEBIN02, routed by
/// magic. `mode` picks the PGEBIN02 backing (ignored for the other
/// formats, which are always heap-resident).
fn load_model_file(path: &str, graph: &ProductGraph, mode: MmapMode) -> PgeModel {
    load_model_auto_path(Path::new(path), graph, mode, DEFAULT_RESIDENT_BUDGET).unwrap_or_else(
        |e| {
            eprintln!("cannot load model {path}: {e}");
            exit(1)
        },
    )
}

fn load_dataset(path: &str) -> Dataset {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    from_tsv(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    // `report`, `trace`, and `check-metrics` take a positional path,
    // which parse_flags rejects.
    if cmd == "report" || cmd == "trace" || cmd == "check-metrics" {
        let [_, path] = args.as_slice() else { usage() };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        let rendered = match cmd.as_str() {
            "report" => render_report(&text),
            "trace" => render_traces(&text),
            // CI lints a scraped /metrics body for well-formed
            // Prometheus text exposition.
            _ => validate_exposition(&text).map(|()| {
                let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
                format!("{path}: OK ({families} metric families)\n")
            }),
        };
        match rendered {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("cannot summarize {path}: {e}");
                exit(1)
            }
        }
        return;
    }
    let flags = parse_flags(&args[1..]).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    });
    let get = |k: &str| flags.get(k).cloned();
    let require = |k: &str| {
        get(k).unwrap_or_else(|| {
            eprintln!("missing --{k}");
            usage()
        })
    };

    match cmd.as_str() {
        "generate" => {
            let seed: u64 = get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
            // Paper-scale path: stream a seeded catalog straight to a
            // binary PGECAT01 blob — constant memory at any --count.
            if let Some(cat_out) = get("catalog-out") {
                if matches!(get("kind").as_deref(), Some(k) if k != "catalog") {
                    eprintln!("--catalog-out only streams --kind catalog");
                    exit(2);
                }
                let count: usize = get("count").and_then(|s| s.parse().ok()).unwrap_or(750_000);
                let cfg = CatalogConfig {
                    products: count,
                    seed,
                    ..CatalogConfig::default()
                };
                let mut w = CatalogWriter::create(Path::new(&cat_out), seed).unwrap_or_else(|e| {
                    eprintln!("cannot create {cat_out}: {e}");
                    exit(1)
                });
                let stats = stream_catalog(&cfg, &mut w).unwrap_or_else(|e| {
                    eprintln!("cannot write {cat_out}: {e}");
                    exit(1)
                });
                let summary = w.finish().unwrap_or_else(|e| {
                    eprintln!("cannot finish {cat_out}: {e}");
                    exit(1)
                });
                println!(
                    "wrote {cat_out}: {} products, {} triples ({:.1} MB, seed {seed})",
                    stats.products,
                    stats.triples,
                    summary.body_len as f64 / 1e6
                );
                // `--catalog-out` alone is a complete invocation; add
                // `--out` to also emit a labeled TSV training sample.
                if get("out").is_none() {
                    return;
                }
            }
            let kind = get("kind").unwrap_or_else(|| "catalog".into());
            let out = require("out");
            // Kept for `--drift-out`: churned products must come from
            // the same sampler knobs as the base catalog.
            let mut catalog_cfg = None;
            let dataset = match kind.as_str() {
                "catalog" => {
                    let products: usize =
                        get("products").and_then(|s| s.parse().ok()).unwrap_or(1000);
                    let cfg = CatalogConfig {
                        products,
                        labeled: products / 3,
                        seed,
                        ..CatalogConfig::default()
                    };
                    let d = generate_catalog(&cfg);
                    catalog_cfg = Some(cfg);
                    d
                }
                "fb" => generate_fbkg(&FbkgConfig {
                    seed,
                    ..FbkgConfig::default()
                }),
                _ => usage(),
            };
            let text = to_tsv(&dataset).expect("generated datasets serialize");
            std::fs::write(&out, text).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            // A raw triple dump (`title \t attr \t value`, no labels)
            // is the input format `pge scan` consumes.
            if let Some(scan_out) = get("scan-out") {
                let file = std::fs::File::create(&scan_out).unwrap_or_else(|e| {
                    eprintln!("cannot write {scan_out}: {e}");
                    exit(1)
                });
                let n = write_raw_triples(&dataset, std::io::BufWriter::new(file)).unwrap_or_else(
                    |e| {
                        eprintln!("cannot write {scan_out}: {e}");
                        exit(1)
                    },
                );
                println!("wrote {scan_out}: {n} raw triples for bulk scanning");
            }
            // A seeded churn scenario over the freshly generated
            // catalog: a delta stream for `train --incremental` plus
            // its per-window labeled eval set. Uses its own RNG — the
            // catalog (and the golden PGECAT01 CRC) is unaffected.
            if let Some(drift_out) = get("drift-out") {
                let Some(cat_cfg) = &catalog_cfg else {
                    eprintln!("--drift-out requires --kind catalog");
                    exit(2)
                };
                let windows = get("drift-windows")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(4);
                let ops: usize = get("drift-ops").and_then(|s| s.parse().ok()).unwrap_or(40);
                let dcfg = DriftConfig {
                    windows,
                    adds_per_window: ops,
                    updates_per_window: ops / 2,
                    retracts_per_window: ops / 4,
                    seed: get("drift-seed")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(seed),
                    ..DriftConfig::default()
                };
                let scenario = generate_drift(&dataset, cat_cfg, &dcfg);
                let file = std::fs::File::create(&drift_out).unwrap_or_else(|e| {
                    eprintln!("cannot write {drift_out}: {e}");
                    exit(1)
                });
                write_delta_stream(&scenario.windows, std::io::BufWriter::new(file))
                    .unwrap_or_else(|e| {
                        eprintln!("cannot write {drift_out}: {e}");
                        exit(1)
                    });
                let eval_out = get("drift-eval-out").unwrap_or_else(|| format!("{drift_out}.eval"));
                let file = std::fs::File::create(&eval_out).unwrap_or_else(|e| {
                    eprintln!("cannot write {eval_out}: {e}");
                    exit(1)
                });
                write_drift_eval(&scenario.eval, std::io::BufWriter::new(file)).unwrap_or_else(
                    |e| {
                        eprintln!("cannot write {eval_out}: {e}");
                        exit(1)
                    },
                );
                let ops_total: usize = scenario.windows.iter().map(|w| w.ops.len()).sum();
                println!(
                    "wrote {drift_out}: {} windows, {ops_total} delta ops; {eval_out}: {} labeled eval triples",
                    scenario.windows.len(),
                    scenario.eval.len()
                );
            }
            let s = dataset.stats();
            println!(
                "wrote {out}: {} products, {} values, {} train / {} valid / {} test triples",
                s.products, s.values, s.train, s.valid, s.test
            );
        }
        "train" => {
            let data_path = require("data");
            let data = load_dataset(&data_path);
            let out = require("out");
            let cfg = PgeConfig {
                epochs: get("epochs").and_then(|s| s.parse().ok()).unwrap_or(12),
                score: match get("score").as_deref() {
                    Some("transe") => ScoreKind::TransE,
                    _ => ScoreKind::RotatE,
                },
                // 0 = auto (available parallelism); recorded resolved
                // in the manifest below so runs are reproducible.
                threads: get("threads").and_then(|s| s.parse().ok()).unwrap_or(0),
                confidence: match get("confidence") {
                    Some(s) => ConfidenceBackend::parse(&s).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        exit(2)
                    }),
                    None => ConfidenceBackend::default(),
                },
                ..PgeConfig::default()
            };
            let ckpt = match (get("resume"), get("checkpoint")) {
                (Some(dir), _) => Some(CheckpointOptions::resume(dir)),
                (None, Some(dir)) => Some(CheckpointOptions::new(dir)),
                (None, None) => None,
            }
            .map(|mut opts| {
                opts.stop_after = get("stop-after").and_then(|s| s.parse().ok());
                opts
            });
            let log = open_runlog(get("runlog"));
            // Streaming ingest: warm-start from the base checkpoint,
            // fine-tune per delta window, snapshot + optionally push
            // each window to a gateway. Resumable like full training.
            if flags.contains_key("incremental") {
                let deltas_path = require("deltas");
                let Some(ckpt) = ckpt else {
                    eprintln!("--incremental needs --checkpoint DIR (the base run's checkpoint; add --resume to continue a killed ingest)");
                    exit(2)
                };
                let file = std::fs::File::open(&deltas_path).unwrap_or_else(|e| {
                    eprintln!("cannot read {deltas_path}: {e}");
                    exit(1)
                });
                let windows =
                    read_delta_stream(std::io::BufReader::new(file)).unwrap_or_else(|e| {
                        eprintln!("cannot parse {deltas_path}: {e}");
                        exit(1)
                    });
                let snapshot_dir =
                    get("snapshot-dir").unwrap_or_else(|| format!("{out}.snapshots"));
                let mut inc = IncrementalConfig::new(std::path::PathBuf::from(snapshot_dir));
                if let Some(n) = get("window-epochs").and_then(|s| s.parse().ok()) {
                    inc.epochs_per_window = n;
                }
                inc.push = get("push");
                if let Some(n) = get("push-attempts").and_then(|s| s.parse().ok()) {
                    inc.push_attempts = n;
                }
                if let Some(ms) = get("push-backoff-ms").and_then(|s| s.parse().ok()) {
                    inc.push_backoff_ms = ms;
                }
                if let Some(log) = &log {
                    log.write(&manifest_event(
                        "train-incremental",
                        cfg.seed,
                        &[
                            ("data".into(), data_path.clone()),
                            ("deltas".into(), deltas_path.clone()),
                            ("out".into(), out.clone()),
                            ("windows".into(), windows.len().to_string()),
                            ("window_epochs".into(), inc.epochs_per_window.to_string()),
                            ("confidence".into(), cfg.confidence.name().into()),
                            ("threads".into(), resolve_threads(cfg.threads).to_string()),
                            (
                                "push".into(),
                                inc.push.clone().unwrap_or_else(|| "none".into()),
                            ),
                        ],
                    ));
                }
                println!(
                    "incremental ingest of {} windows from {deltas_path} ({} backend, {} threads) ...",
                    windows.len(),
                    cfg.confidence.name(),
                    resolve_threads(cfg.threads)
                );
                let outcome = train_incremental(&data, &windows, &cfg, &inc, &ckpt, log.as_ref())
                    .unwrap_or_else(|e| {
                        eprintln!("incremental training failed: {e}");
                        exit(1)
                    });
                for p in &outcome.pushes {
                    println!(
                        "window {} pushed -> gateway version {} ({} attempt{})",
                        p.window,
                        p.version,
                        p.attempts,
                        if p.attempts == 1 { "" } else { "s" }
                    );
                }
                println!(
                    "ingested {} of {} windows in {:.1}s ({} train triples now)",
                    outcome.windows_done,
                    windows.len(),
                    outcome.train_secs,
                    outcome.dataset.train.len()
                );
                if outcome.windows_done < windows.len() {
                    println!("stopped early (checkpoint retained; continue with --resume)");
                }
                if flags.contains_key("binary") {
                    save_model_store(&outcome.model, Path::new(&out)).unwrap_or_else(|e| {
                        eprintln!("cannot write {out}: {e}");
                        exit(1)
                    });
                } else {
                    let text = save_model(&outcome.model).expect("CNN models persist");
                    std::fs::write(&out, text).unwrap_or_else(|e| {
                        eprintln!("cannot write {out}: {e}");
                        exit(1)
                    });
                }
                println!("model saved to {out}");
                return;
            }
            if let Some(log) = &log {
                log.write(&manifest_event(
                    "train",
                    cfg.seed,
                    &[
                        ("data".into(), data_path.clone()),
                        ("out".into(), out.clone()),
                        ("label".into(), cfg.label()),
                        ("epochs".into(), cfg.epochs.to_string()),
                        ("batch".into(), cfg.batch.to_string()),
                        ("negatives".into(), cfg.negatives.to_string()),
                        ("noise_aware".into(), cfg.noise_aware.to_string()),
                        ("threads".into(), resolve_threads(cfg.threads).to_string()),
                        ("train_triples".into(), data.train.len().to_string()),
                        (
                            "checkpoint".into(),
                            ckpt.as_ref()
                                .map_or("none".into(), |o| o.dir.display().to_string()),
                        ),
                        (
                            "resume".into(),
                            ckpt.as_ref().is_some_and(|o| o.resume).to_string(),
                        ),
                    ],
                ));
            }
            println!(
                "training {} on {} triples ({} threads) ...",
                cfg.label(),
                data.train.len(),
                resolve_threads(cfg.threads)
            );
            if let Some(opts) = &ckpt {
                println!(
                    "{} epoch-boundary checkpoints in {}",
                    if opts.resume {
                        "resuming from"
                    } else {
                        "writing"
                    },
                    opts.dir.display()
                );
            }
            let trained = train_pge_resumable(&data, &cfg, log.as_ref(), ckpt.as_ref())
                .unwrap_or_else(|e| {
                    eprintln!("training failed: {e}");
                    exit(1)
                });
            println!(
                "done in {:.1}s (loss {:.3} -> {:.3})",
                trained.train_secs,
                trained.epoch_losses.first().unwrap_or(&0.0),
                trained.epoch_losses.last().unwrap_or(&0.0)
            );
            if trained.epoch_losses.len() < cfg.epochs {
                println!(
                    "stopped after {} of {} epochs (checkpoint retained; continue with --resume)",
                    trained.epoch_losses.len(),
                    cfg.epochs
                );
            }
            if flags.contains_key("binary") {
                // Sectioned PGEBIN02 snapshot: every downstream
                // command can mmap it instead of heap-loading.
                save_model_store(&trained.model, Path::new(&out)).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1)
                });
            } else {
                let text = save_model(&trained.model).expect("CNN models persist");
                std::fs::write(&out, text).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1)
                });
            }
            if let Some(log) = &log {
                // Epoch traces retained by the trainer's flight
                // recorder, oldest first, for `pge trace`.
                for t in global_tracer().retained(usize::MAX).iter().rev() {
                    log.write(&trace_event(t));
                }
                log.write(&spans_event());
            }
            println!("model saved to {out}");
        }
        "embed" => {
            let data = load_dataset(&require("data"));
            let model_path = require("model");
            let model = load_model_file(&model_path, &data.graph, parse_mmap(&flags));
            let catalog_path = require("catalog");
            let out = require("out");
            let reader = CatalogReader::open(Path::new(&catalog_path)).unwrap_or_else(|e| {
                eprintln!("cannot open catalog {catalog_path}: {e}");
                exit(1)
            });
            println!(
                "collecting keys from {catalog_path} ({} products, {} triples) ...",
                reader.products(),
                reader.triples()
            );
            let mut builder = BankBuilder::new();
            let records = reader.records().unwrap_or_else(|e| {
                eprintln!("cannot read catalog {catalog_path}: {e}");
                exit(1)
            });
            for rec in records {
                let rec = rec.unwrap_or_else(|e| {
                    eprintln!("catalog read failed: {e}");
                    exit(1)
                });
                builder.add(&rec.title);
                builder.add(&rec.value);
            }
            let n_keys = builder.len();
            println!(
                "embedding {n_keys} distinct strings (dim {}) ...",
                model.dim()
            );
            let mut w = SnapshotWriter::create(Path::new(&out)).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            write_model_sections(&model, &mut w).unwrap_or_else(|e| {
                eprintln!("cannot write model sections: {e}");
                exit(1)
            });
            let mut done = 0usize;
            builder
                .write_sections(&mut w, model.dim(), |key, row| {
                    row.extend_from_slice(&model.embed_text_uncached(key));
                    done += 1;
                    if done.is_multiple_of(100_000) {
                        println!("  {done}/{n_keys} rows");
                    }
                })
                .unwrap_or_else(|e| {
                    eprintln!("cannot write bank sections: {e}");
                    exit(1)
                });
            w.finish().unwrap_or_else(|e| {
                eprintln!("cannot finish {out}: {e}");
                exit(1)
            });
            let table_mb = (n_keys * model.dim() * 4) as f64 / 1e6;
            println!("wrote {out}: model + {n_keys}-row embedding bank ({table_mb:.1} MB of rows)");
        }
        "detect" => {
            let data = load_dataset(&require("data"));
            let model = load_model_file(&require("model"), &data.graph, parse_mmap(&flags));
            let top: usize = get("top").and_then(|s| s.parse().ok()).unwrap_or(20);
            let log = open_runlog(get("runlog"));
            if let Some(log) = &log {
                log.write(&manifest_event(
                    "detect",
                    0,
                    &[
                        ("top".into(), top.to_string()),
                        ("test_triples".into(), data.test.len().to_string()),
                    ],
                ));
            }
            let det = Detector::fit(&model, &data.graph, &data.valid);
            println!(
                "threshold {:.3} (validation accuracy {:.3})",
                det.threshold, det.valid_accuracy
            );
            let triples: Vec<Triple> = data.test.iter().map(|lt| lt.triple).collect();
            let order = det.rank_errors(&data.graph, &triples);
            println!("top {top} suspicious test triples:");
            for &ix in order.iter().take(top) {
                let t = triples[ix];
                println!(
                    "  {} | {} | {}",
                    data.graph.title(t.product),
                    data.graph.attr_name(t.attr),
                    data.graph.value_text(t.value)
                );
            }
            if let Some(log) = &log {
                log.write(&eval_event(&EvalTelemetry {
                    pr_auc: None,
                    threshold: det.threshold as f64,
                    valid_accuracy: det.valid_accuracy as f64,
                    test_triples: data.test.len(),
                }));
                log.write(&spans_event());
            }
        }
        "eval" => {
            let data = load_dataset(&require("data"));
            let model = load_model_file(&require("model"), &data.graph, parse_mmap(&flags));
            let log = open_runlog(get("runlog"));
            if let Some(log) = &log {
                log.write(&manifest_event(
                    "eval",
                    0,
                    &[("test_triples".into(), data.test.len().to_string())],
                ));
            }
            let det = Detector::fit(&model, &data.graph, &data.valid);
            let triples: Vec<Triple> = data.test.iter().map(|lt| lt.triple).collect();
            let scores = det.scores(&data.graph, &triples);
            let scored: Vec<Scored> = scores
                .iter()
                .zip(&data.test)
                .map(|(&f, lt)| Scored::new(-f, !lt.correct))
                .collect();
            let pr_auc = average_precision(&scored);
            println!("test triples: {}", data.test.len());
            println!("PR AUC:   {pr_auc:.3}");
            for p in [0.7, 0.8, 0.9] {
                println!("R@P={p}:  {:.3}", recall_at_precision(&scored, p));
            }
            println!("accuracy: {:.3}", det.accuracy(&data.graph, &data.test));
            if let Some(log) = &log {
                log.write(&eval_event(&EvalTelemetry {
                    pr_auc: Some(pr_auc as f64),
                    threshold: det.threshold as f64,
                    valid_accuracy: det.valid_accuracy as f64,
                    test_triples: data.test.len(),
                }));
                log.write(&spans_event());
            }
        }
        "serve" => {
            let data = load_dataset(&require("data"));
            let model = load_model_file(&require("model"), &data.graph, parse_mmap(&flags));
            let det = Detector::fit(&model, &data.graph, &data.valid);
            let threshold = det.threshold;
            println!(
                "threshold {:.3} (validation accuracy {:.3})",
                det.threshold, det.valid_accuracy
            );
            let parsed =
                |k: &str, default: usize| get(k).and_then(|s| s.parse().ok()).unwrap_or(default);
            let defaults = ServeConfig::default();
            let cfg = ServeConfig {
                addr: get("addr").unwrap_or(defaults.addr),
                workers: parsed("threads", defaults.workers),
                cache_cap: if flags.contains_key("no-cache") {
                    0
                } else {
                    parsed("cache-cap", defaults.cache_cap)
                },
                queue_cap: parsed("queue-cap", defaults.queue_cap).max(1),
                trace_slow: get("trace-slow")
                    .and_then(|s| s.parse().ok())
                    .map_or(defaults.trace_slow, std::time::Duration::from_millis),
                runlog_path: get("runlog"),
                ..defaults
            };
            let graph = data.graph;
            let handle = pge::serve::start(model, graph, threshold, cfg).unwrap_or_else(|e| {
                eprintln!("cannot start server: {e}");
                exit(1)
            });
            pge::serve::install_handlers();
            println!("serving on http://{} — ctrl-c to stop", handle.local_addr());
            while !pge::serve::shutdown_requested() {
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            println!("shutting down, draining in-flight requests ...");
            handle.shutdown();
        }
        "gateway" => {
            let model_path = require("model");
            let data = load_dataset(&require("data"));
            let model = load_model_file(&model_path, &data.graph, parse_mmap(&flags));
            let det = Detector::fit(&model, &data.graph, &data.valid);
            let threshold = det.threshold;
            println!(
                "threshold {:.3} (validation accuracy {:.3})",
                det.threshold, det.valid_accuracy
            );
            let parsed =
                |k: &str, default: usize| get(k).and_then(|s| s.parse().ok()).unwrap_or(default);
            let defaults = GatewayConfig::default();
            let cfg = GatewayConfig {
                addr: get("addr").unwrap_or(defaults.addr),
                replicas: parsed("replicas", defaults.replicas).max(1),
                vnodes: parsed("vnodes", defaults.vnodes).max(1),
                cache_cap: if flags.contains_key("no-cache") {
                    0
                } else {
                    parsed("cache-cap", defaults.cache_cap)
                },
                queue_cap: parsed("queue-cap", defaults.queue_cap).max(1),
                max_batch: parsed("max-batch", defaults.max_batch).max(1),
                trace_slow: get("trace-slow")
                    .and_then(|s| s.parse().ok())
                    .map_or(defaults.trace_slow, std::time::Duration::from_millis),
                model_path: Some(model_path.clone()),
                mmap: parse_mmap(&flags),
                runlog_path: get("runlog"),
                ..defaults
            };
            let replicas = cfg.replicas;
            let valid = data.valid.clone();
            let handle = pge::gateway::start(model, data.graph, valid, threshold, cfg)
                .unwrap_or_else(|e| {
                    eprintln!("cannot start gateway: {e}");
                    exit(1)
                });
            pge::serve::install_handlers();
            println!(
                "gateway on http://{} ({replicas} replicas) — SIGHUP to hot-swap {model_path}, ctrl-c to stop",
                handle.local_addr()
            );
            while !pge::serve::shutdown_requested() {
                if pge::serve::take_reload_request() {
                    match handle.reload_from_path(&model_path) {
                        Ok(v) => println!("hot-swapped {model_path} (version {v})"),
                        Err(e) => eprintln!("reload failed, old model keeps serving: {e}"),
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            println!("shutting down, draining in-flight requests ...");
            handle.shutdown();
        }
        "scan" => {
            let data = load_dataset(&require("data"));
            let model = load_model_file(&require("model"), &data.graph, parse_mmap(&flags));
            let input = require("input");
            let out_dir = require("out-dir");
            let det = Detector::fit(&model, &data.graph, &data.valid);
            println!(
                "threshold {:.3} (validation accuracy {:.3})",
                det.threshold, det.valid_accuracy
            );
            let parsed =
                |k: &str, default: usize| get(k).and_then(|s| s.parse().ok()).unwrap_or(default);
            let mut cfg = ScanConfig::new(&out_dir);
            cfg.jobs = parsed("jobs", 0);
            cfg.chunk_size = parsed("chunk-size", cfg.chunk_size).max(1);
            cfg.shard_chunks = parsed("shard-chunks", cfg.shard_chunks).max(1);
            cfg.cache_cap = parsed("cache-cap", cfg.cache_cap);
            cfg.resume = flags.contains_key("resume");
            cfg.max_shards = get("max-shards").and_then(|s| s.parse().ok());
            let log = open_runlog(get("runlog"));
            if let Some(log) = &log {
                log.write(&manifest_event(
                    "scan",
                    0,
                    &[
                        ("input".into(), input.clone()),
                        ("out_dir".into(), out_dir.clone()),
                        ("jobs".into(), cfg.resolved_jobs().to_string()),
                        ("jobs_requested".into(), cfg.jobs.to_string()),
                        (
                            "host_cpus".into(),
                            std::thread::available_parallelism()
                                .map(|n| n.get())
                                .unwrap_or(1)
                                .to_string(),
                        ),
                        ("kernel".into(), pge::tensor::active_kernel().name().into()),
                        ("chunk_size".into(), cfg.chunk_size.to_string()),
                        ("shard_chunks".into(), cfg.shard_chunks.to_string()),
                        ("resume".into(), cfg.resume.to_string()),
                        ("threshold".into(), det.threshold.to_string()),
                    ],
                ));
            }
            let tracer = Tracer::default();
            if let Some(ms) = get("trace-slow").and_then(|s| s.parse().ok()) {
                tracer.set_threshold(std::time::Duration::from_millis(ms));
            }
            let outcome = pge::scan::scan_with_tracer(
                &model,
                det.threshold,
                std::path::Path::new(&input),
                &cfg,
                &tracer,
            )
            .unwrap_or_else(|e| {
                eprintln!("scan failed: {e}");
                exit(1)
            });
            println!(
                "scanned {} rows ({:.0} rows/s): {} flagged, {} quarantined, {} shards in {out_dir}",
                outcome.rows_scanned,
                outcome.rows_per_sec,
                outcome.errors_flagged,
                outcome.quarantined,
                outcome.shards_total
            );
            if outcome.resumed_rows > 0 {
                println!(
                    "  resumed past {} already-scanned rows",
                    outcome.resumed_rows
                );
            }
            if !outcome.done {
                println!("  stopped early (max-shards); rerun with --resume to finish");
            }
            if let Some(log) = &log {
                let busy = &outcome.worker_busy_sec;
                let busy_min = busy.iter().copied().fold(f64::INFINITY, f64::min);
                log.write(&scan_event(&[
                    ("rows_scanned", outcome.rows_scanned as f64),
                    ("rows_total", outcome.rows_total as f64),
                    ("errors_total", outcome.errors_total as f64),
                    ("quarantined_total", outcome.quarantined_total as f64),
                    ("shards_total", outcome.shards_total as f64),
                    ("resumed_rows", outcome.resumed_rows as f64),
                    ("rows_per_sec", outcome.rows_per_sec),
                    ("cache_hits", outcome.cache_hits as f64),
                    ("cache_misses", outcome.cache_misses as f64),
                    ("jobs", outcome.jobs as f64),
                    ("host_cpus", outcome.host_cpus as f64),
                    ("effective_parallelism", outcome.effective_parallelism),
                    ("worker_busy_total_sec", busy.iter().sum::<f64>()),
                    (
                        "worker_busy_min_sec",
                        if busy_min.is_finite() { busy_min } else { 0.0 },
                    ),
                    (
                        "worker_busy_max_sec",
                        busy.iter().copied().fold(0.0, f64::max),
                    ),
                ]));
                // Slow chunk traces, oldest first, for `pge trace`.
                for t in tracer.retained(usize::MAX).iter().rev() {
                    log.write(&trace_event(t));
                }
                log.write(&spans_event());
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::parse_flags;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_value_flags() {
        let f = parse_flags(&strings(&["--data", "d.tsv", "--model", "m.pge"])).unwrap();
        assert_eq!(f.get("data").map(String::as_str), Some("d.tsv"));
        assert_eq!(f.get("model").map(String::as_str), Some("m.pge"));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn empty_args_yield_no_flags() {
        assert!(parse_flags(&[]).unwrap().is_empty());
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let f = parse_flags(&strings(&["--data", "d.tsv", "--no-cache"])).unwrap();
        assert_eq!(f.get("no-cache").map(String::as_str), Some("true"));
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let f = parse_flags(&strings(&["--no-cache", "--threads", "4"])).unwrap();
        assert_eq!(f.get("no-cache").map(String::as_str), Some("true"));
        assert_eq!(f.get("threads").map(String::as_str), Some("4"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        let f = parse_flags(&strings(&["--offset", "-5"])).unwrap();
        assert_eq!(f.get("offset").map(String::as_str), Some("-5"));
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(parse_flags(&strings(&["stray"])).is_err());
        assert!(parse_flags(&strings(&["--ok", "v", "stray"])).is_err());
    }

    #[test]
    fn rejects_bare_double_dash() {
        assert!(parse_flags(&strings(&["--"])).is_err());
    }

    #[test]
    fn later_occurrence_wins() {
        let f = parse_flags(&strings(&["--seed", "1", "--seed", "2"])).unwrap();
        assert_eq!(f.get("seed").map(String::as_str), Some("2"));
    }
}
