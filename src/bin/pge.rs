//! `pge` — command-line error detection for product catalogs.
//!
//! ```text
//! pge generate --kind catalog|fb --out data.tsv [--products N] [--seed N]
//! pge train    --data data.tsv --out model.pge [--epochs N] [--score transe|rotate]
//! pge detect   --data data.tsv --model model.pge [--top N]
//! pge eval     --data data.tsv --model model.pge
//! ```
//!
//! `generate` writes a synthetic labeled dataset; `train` fits
//! PGE(CNN) on its training split and saves the model; `detect` ranks
//! the dataset's test triples by suspicion; `eval` reports PR AUC,
//! R@P, and thresholded accuracy.

use pge::core::{load_model, save_model, train_pge, Detector, PgeConfig, ScoreKind};
use pge::datagen::{generate_catalog, generate_fbkg, CatalogConfig, FbkgConfig};
use pge::eval::{average_precision, recall_at_precision, Scored};
use pge::graph::tsv::{from_tsv, to_tsv};
use pge::graph::{Dataset, Triple};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  pge generate --kind catalog|fb --out data.tsv [--products N] [--seed N]\n  \
         pge train    --data data.tsv --out model.pge [--epochs N] [--score transe|rotate]\n  \
         pge detect   --data data.tsv --model model.pge [--top N]\n  \
         pge eval     --data data.tsv --model model.pge"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i + 1 < args.len() + 1 {
        let Some(key) = args.get(i) else { break };
        if let Some(name) = key.strip_prefix("--") {
            match args.get(i + 1) {
                Some(v) => {
                    flags.insert(name.to_string(), v.clone());
                    i += 2;
                }
                None => usage(),
            }
        } else {
            usage();
        }
    }
    flags
}

fn load_dataset(path: &str) -> Dataset {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    from_tsv(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flags = parse_flags(&args[1..]);
    let get = |k: &str| flags.get(k).cloned();
    let require = |k: &str| {
        get(k).unwrap_or_else(|| {
            eprintln!("missing --{k}");
            usage()
        })
    };

    match cmd.as_str() {
        "generate" => {
            let kind = require("kind");
            let out = require("out");
            let seed: u64 = get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
            let dataset = match kind.as_str() {
                "catalog" => {
                    let products: usize =
                        get("products").and_then(|s| s.parse().ok()).unwrap_or(1000);
                    generate_catalog(&CatalogConfig {
                        products,
                        labeled: products / 3,
                        seed,
                        ..CatalogConfig::default()
                    })
                }
                "fb" => generate_fbkg(&FbkgConfig {
                    seed,
                    ..FbkgConfig::default()
                }),
                _ => usage(),
            };
            let text = to_tsv(&dataset).expect("generated datasets serialize");
            std::fs::write(&out, text).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            let s = dataset.stats();
            println!(
                "wrote {out}: {} products, {} values, {} train / {} valid / {} test triples",
                s.products, s.values, s.train, s.valid, s.test
            );
        }
        "train" => {
            let data = load_dataset(&require("data"));
            let out = require("out");
            let cfg = PgeConfig {
                epochs: get("epochs").and_then(|s| s.parse().ok()).unwrap_or(12),
                score: match get("score").as_deref() {
                    Some("transe") => ScoreKind::TransE,
                    _ => ScoreKind::RotatE,
                },
                ..PgeConfig::default()
            };
            println!("training {} on {} triples ...", cfg.label(), data.train.len());
            let trained = train_pge(&data, &cfg);
            println!(
                "done in {:.1}s (loss {:.3} -> {:.3})",
                trained.train_secs,
                trained.epoch_losses.first().unwrap_or(&0.0),
                trained.epoch_losses.last().unwrap_or(&0.0)
            );
            let text = save_model(&trained.model).expect("CNN models persist");
            std::fs::write(&out, text).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            println!("model saved to {out}");
        }
        "detect" => {
            let data = load_dataset(&require("data"));
            let model_text = std::fs::read_to_string(require("model")).unwrap_or_else(|e| {
                eprintln!("cannot read model: {e}");
                exit(1)
            });
            let model = load_model(&model_text, &data.graph).unwrap_or_else(|e| {
                eprintln!("cannot load model: {e}");
                exit(1)
            });
            let top: usize = get("top").and_then(|s| s.parse().ok()).unwrap_or(20);
            let det = Detector::fit(&model, &data.graph, &data.valid);
            println!(
                "threshold {:.3} (validation accuracy {:.3})",
                det.threshold, det.valid_accuracy
            );
            let triples: Vec<Triple> = data.test.iter().map(|lt| lt.triple).collect();
            let order = det.rank_errors(&data.graph, &triples);
            println!("top {top} suspicious test triples:");
            for &ix in order.iter().take(top) {
                let t = triples[ix];
                println!(
                    "  {} | {} | {}",
                    data.graph.title(t.product),
                    data.graph.attr_name(t.attr),
                    data.graph.value_text(t.value)
                );
            }
        }
        "eval" => {
            let data = load_dataset(&require("data"));
            let model_text = std::fs::read_to_string(require("model")).unwrap_or_else(|e| {
                eprintln!("cannot read model: {e}");
                exit(1)
            });
            let model = load_model(&model_text, &data.graph).unwrap_or_else(|e| {
                eprintln!("cannot load model: {e}");
                exit(1)
            });
            let det = Detector::fit(&model, &data.graph, &data.valid);
            let triples: Vec<Triple> = data.test.iter().map(|lt| lt.triple).collect();
            let scores = det.scores(&data.graph, &triples);
            let scored: Vec<Scored> = scores
                .iter()
                .zip(&data.test)
                .map(|(&f, lt)| Scored::new(-f, !lt.correct))
                .collect();
            println!("test triples: {}", data.test.len());
            println!("PR AUC:   {:.3}", average_precision(&scored));
            for p in [0.7, 0.8, 0.9] {
                println!("R@P={p}:  {:.3}", recall_at_precision(&scored, p));
            }
            println!("accuracy: {:.3}", det.accuracy(&data.graph, &data.test));
        }
        _ => usage(),
    }
}
