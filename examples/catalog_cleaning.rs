//! Catalog cleaning: use the noise-aware confidence scores to find
//! corrupted triples *inside the training data itself* — the workflow
//! behind Fig. 5 of the paper, and what a catalog team would actually
//! run to triage self-reported listings.
//!
//! ```text
//! cargo run --release --example catalog_cleaning
//! ```

use pge::core::{train_pge, PgeConfig};
use pge::datagen::{generate_catalog, CatalogConfig};
use pge::eval::Histogram;

fn main() {
    // A catalog where 10% of the self-reported triples are wrong.
    let data = generate_catalog(&CatalogConfig {
        products: 600,
        labeled: 120,
        train_noise: 0.10,
        ..CatalogConfig::default()
    });
    let dirty = data.train_clean.iter().filter(|c| !**c).count();
    println!(
        "training catalog: {} triples, {} of them corrupted ({}%)",
        data.train.len(),
        dirty,
        dirty * 100 / data.train.len()
    );

    // Train with the noise-aware mechanism: every training triple gets
    // a learnable confidence C(t,a,v) ∈ [0,1] (Eq. 6 of the paper).
    let trained = train_pge(&data, &PgeConfig::default());

    // Confidence distribution, split by the generator's ground truth
    // (which the model never saw).
    let mut clean_hist = Histogram::unit(10);
    let mut noisy_hist = Histogram::unit(10);
    for (i, &is_clean) in data.train_clean.iter().enumerate() {
        let c = trained.confidence.get(i);
        if is_clean {
            clean_hist.add(c);
        } else {
            noisy_hist.add(c);
        }
    }
    println!("\nconfidence of clean triples:");
    print!("{}", clean_hist.render(30));
    println!("confidence of corrupted triples:");
    print!("{}", noisy_hist.render(30));

    // Triage list: lowest-confidence triples first.
    let mut order: Vec<usize> = (0..data.train.len()).collect();
    order.sort_by(|&a, &b| {
        trained
            .confidence
            .get(a)
            .total_cmp(&trained.confidence.get(b))
    });
    println!("\ntriage queue (lowest confidence first):");
    let mut true_positives = 0;
    for &i in order.iter().take(15) {
        let t = &data.train[i];
        let flag = if data.train_clean[i] {
            "  (clean)"
        } else {
            "**ERROR**"
        };
        if !data.train_clean[i] {
            true_positives += 1;
        }
        println!(
            "  C={:.2} {} ({}, {}, {})",
            trained.confidence.get(i),
            flag,
            data.graph.title(t.product),
            data.graph.attr_name(t.attr),
            data.graph.value_text(t.value),
        );
    }
    println!("\n{true_positives}/15 of the triage queue are real errors");
}
