//! Inductive detection: validate attribute values for products and
//! value strings the model has *never seen* (§4.4 of the paper).
//!
//! Id-based KG embeddings cannot do this at all — they have no row
//! for an unseen entity. PGE encodes entities from their raw text, so
//! a brand-new listing can be scored immediately.
//!
//! ```text
//! cargo run --release --example inductive_detection
//! ```

use pge::core::{train_pge, PgeConfig};
use pge::datagen::{generate_catalog, CatalogConfig};

fn main() {
    let data = generate_catalog(&CatalogConfig {
        products: 600,
        labeled: 120,
        ..CatalogConfig::default()
    });
    let trained = train_pge(&data, &PgeConfig::default());
    let model = &trained.model;
    let flavor = data
        .graph
        .lookup_attr("flavor")
        .expect("flavor attribute exists");
    let scent = data
        .graph
        .lookup_attr("scent")
        .expect("scent attribute exists");

    // Brand-new listings that are in no graph: the entry point is raw
    // text. Each case pairs a plausible value with an implausible one.
    let cases = [
        (
            "Lunar Pantry Spicy Queso Corn Puffs, Family Size, 12 oz",
            flavor,
            "spicy queso",
            "lavender",
        ),
        (
            "Glow Botanics Lavender Body Wash For Women And Men, 16 oz",
            scent,
            "lavender chamomile",
            "nacho cheese",
        ),
        (
            "Amber Farms Dark Chocolate Trail Mix, Resealable Bag",
            flavor,
            "dark chocolate",
            "stainless steel",
        ),
    ];

    println!("scoring unseen listings (higher = more plausible):\n");
    let mut wins = 0;
    for (title, attr, good, bad) in cases {
        let f_good = model.score_fact(title, attr, good);
        let f_bad = model.score_fact(title, attr, bad);
        let verdict = if f_good > f_bad { "OK " } else { "MISS" };
        if f_good > f_bad {
            wins += 1;
        }
        println!("[{verdict}] {title}");
        println!("       f({good:?}) = {f_good:.3}   f({bad:?}) = {f_bad:.3}\n");
    }
    println!("{wins}/{} unseen listings ranked correctly", cases.len());
}
