//! Quickstart: generate a product catalog, train PGE, detect errors.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pge::core::{train_pge, Detector, PgeConfig};
use pge::datagen::{generate_catalog, CatalogConfig};

fn main() {
    // 1. A synthetic product catalog with labeled flavor/scent errors.
    //    (Stands in for the paper's Amazon catalog; see DESIGN.md.)
    let data = generate_catalog(&CatalogConfig {
        products: 600,
        labeled: 200,
        ..CatalogConfig::default()
    });
    let stats = data.stats();
    println!(
        "catalog: {} products, {} attributes, {} values, {} training triples",
        stats.products, stats.relations, stats.values, stats.train
    );

    // 2. Train PGE(CNN)-RotatE end to end: word2vec init, CNN text
    //    encoder, noise-aware negative-sampling objective.
    let cfg = PgeConfig::default();
    println!("training {} ...", cfg.label());
    let trained = train_pge(&data, &cfg);
    println!(
        "trained in {:.1}s; triple loss {:.3} -> {:.3}",
        trained.train_secs,
        trained.epoch_losses.first().unwrap(),
        trained.epoch_losses.last().unwrap()
    );

    // 3. Fit the detection threshold on the validation split (§4.2 of
    //    the paper) and classify the test triples.
    let detector = Detector::fit(&trained.model, &data.graph, &data.valid);
    println!(
        "threshold θ = {:.3} (validation accuracy {:.3})",
        detector.threshold, detector.valid_accuracy
    );
    println!(
        "test accuracy: {:.3}",
        detector.accuracy(&data.graph, &data.test)
    );

    // 4. Show the five most suspicious test triples.
    let triples: Vec<_> = data.test.iter().map(|lt| lt.triple).collect();
    let ranked = detector.rank_errors(&data.graph, &triples);
    println!("\nmost suspicious test triples:");
    for &ix in ranked.iter().take(5) {
        let lt = &data.test[ix];
        println!(
            "  [{}] ({}, {}, {})",
            if lt.correct {
                "actually correct"
            } else {
                "true error"
            },
            data.graph.title(lt.triple.product),
            data.graph.attr_name(lt.triple.attr),
            data.graph.value_text(lt.triple.value),
        );
    }
}
