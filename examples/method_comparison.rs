//! Method comparison: PGE vs an id-based KGE baseline vs an NLP
//! baseline on the same catalog — a miniature of the paper's Fig. 2.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use pge::baselines::{train_kge, train_nlp, KgeConfig, NlpArch, NlpConfig, Union};
use pge::core::{train_pge, ErrorDetector, PgeConfig};
use pge::datagen::{generate_catalog, CatalogConfig};
use pge::eval::{average_precision, recall_at_precision, Scored};
use pge::graph::Dataset;

fn evaluate(name: &str, det: &dyn ErrorDetector, data: &Dataset) {
    let triples: Vec<_> = data.test.iter().map(|lt| lt.triple).collect();
    let scores = det.plausibility_all(&data.graph, &triples);
    let scored: Vec<Scored> = scores
        .iter()
        .zip(&data.test)
        .map(|(&f, lt)| Scored::new(-f, !lt.correct))
        .collect();
    let auc = average_precision(&scored);
    let r7 = recall_at_precision(&scored, 0.7);
    let bar = "#".repeat((auc * 40.0) as usize);
    println!("{name:<28} PR AUC {auc:.3}  R@P=0.7 {r7:.3}  {bar}");
}

fn main() {
    let data = generate_catalog(&CatalogConfig {
        products: 800,
        labeled: 250,
        ..CatalogConfig::default()
    });
    println!(
        "evaluating on {} labeled test triples ({} errors)\n",
        data.test.len(),
        data.test.iter().filter(|lt| !lt.correct).count()
    );

    let rotate = train_kge(&data, &KgeConfig::default());
    evaluate("RotatE (id-based)", &rotate, &data);

    let transformer = train_nlp(&data, &NlpConfig::for_arch(NlpArch::Transformer));
    evaluate("Transformer (text-only)", &transformer, &data);

    let pge = train_pge(&data, &PgeConfig::default());
    evaluate("PGE(CNN)-RotatE", &pge.model, &data);

    let union = Union::new(&transformer, &pge.model);
    evaluate("Union (Transformer + PGE)", &union, &data);
}
