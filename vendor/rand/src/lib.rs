//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: the [`Rng`] trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), and
//! [`rngs::mock::StepRng`]. Streams differ from upstream `rand`, but
//! every use in this workspace is either seeded-and-self-consistent or
//! overwritten after construction, so only determinism matters.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range admissible as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// The user-facing random-value API (blanket-implemented for every
/// [`RngCore`], mirroring `rand`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    fn from_entropy() -> Self {
        // No OS entropy in the sandboxed build environment; derive a
        // seed from the clock. Callers in this workspace always seed
        // explicitly, so this exists only for API completeness.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic general-purpose RNG (xoshiro256++). Not the
    /// upstream ChaCha12 `StdRng`, but an equally seeded, portable,
    /// statistically solid generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// A mock RNG yielding an arithmetic progression; used where
        /// the generated values are immediately overwritten.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..4000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(1, 1);
        use super::RngCore;
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }
}
