//! Regex-subset string generation for string-literal strategies.
//!
//! Supports the patterns the workspace's tests use:
//!   * `.`            — any printable ASCII character
//!   * `[a-z0-9 ,.-]` — character classes with ranges and literals
//!   * `{m,n}` / `{n}`— bounded repetition of the preceding item
//!   * plain literal characters
//!
//! Anything fancier (alternation, groups, anchors) is rejected loudly
//! so a new test can't silently get the wrong distribution.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Item {
    /// Inclusive ranges of admissible chars.
    Class(Vec<(char, char)>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    item: Item,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let item = match chars[i] {
            '.' => {
                i += 1;
                // Printable ASCII, space through tilde.
                Item::Class(vec![(' ', '~')])
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                assert!(
                    chars.get(i).copied() != Some('^'),
                    "negated classes unsupported in pattern {pattern:?}"
                );
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let hi = chars[i + 2];
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    chars.get(i) == Some(&']'),
                    "unterminated class in pattern {pattern:?}"
                );
                i += 1;
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                Item::Class(ranges)
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '^' | '$' => {
                panic!(
                    "unsupported regex feature {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Item::Literal(c)
            }
            c => {
                i += 1;
                Item::Literal(c)
            }
        };
        // Optional {m,n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let (lo, hi) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("bad repetition lower bound"),
                    hi.parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n: usize = spec.parse().expect("bad repetition count");
                    (n, n)
                }
            };
            assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
            (lo, hi)
        } else {
            (1, 1)
        };
        pieces.push(Piece { item, min, max });
    }
    pieces
}

fn class_size(ranges: &[(char, char)]) -> u64 {
    ranges
        .iter()
        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
        .sum()
}

fn pick_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let mut k = rng.below(class_size(ranges));
    for &(lo, hi) in ranges {
        let span = hi as u64 - lo as u64 + 1;
        if k < span {
            return char::from_u32(lo as u32 + k as u32).expect("class range is valid chars");
        }
        k -= span;
    }
    unreachable!("class pick out of bounds")
}

pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..count {
            match &piece.item {
                Item::Class(ranges) => out.push(pick_from_class(ranges, rng)),
                Item::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_ranges_and_literals() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-zA-Z0-9 ,.-]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ,.-".contains(c)));
        }
    }

    #[test]
    fn dot_is_printable_ascii() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..100 {
            let s = generate_from_pattern(".{0,10}", &mut rng);
            assert!(s.chars().count() <= 10);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn bounded_repetition_honors_min() {
        let mut rng = TestRng::from_seed(13);
        for _ in 0..100 {
            let s = generate_from_pattern("[a-z]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()), "{s:?}");
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::from_seed(14);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
        assert_eq!(generate_from_pattern(r"a\.b", &mut rng), "a.b");
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn alternation_is_rejected() {
        let mut rng = TestRng::from_seed(15);
        let _ = generate_from_pattern("a|b", &mut rng);
    }
}
