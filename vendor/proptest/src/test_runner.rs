//! Deterministic case generation for the mini-proptest runner.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; without shrinking we favor a
        // smaller-but-meaningful deterministic sweep.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64-based RNG, seeded from the fully qualified test name so
/// every test gets a stable, independent stream across runs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a = TestRng::for_test("mod::test_a");
        let mut b = TestRng::for_test("mod::test_a");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("mod::test_b");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_below() {
        let mut r = TestRng::from_seed(9);
        for _ in 0..100 {
            assert!(r.below(7) < 7);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
