//! Offline mini-proptest.
//!
//! The build environment cannot fetch crates.io, so this crate
//! reimplements the slice of proptest's API the workspace's property
//! tests use: the [`Strategy`] trait, range / tuple / collection /
//! regex-literal strategies, `prop_map` / `prop_flat_map`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros. Cases are
//! generated from a deterministic per-test seed; failing inputs are
//! reported via normal panic messages. **No shrinking** — a failure
//! prints the generated case number and values instead.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Namespace mirror of `proptest::collection` etc. so test code can
/// say `prop::collection::vec(...)`.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::{hash_set, vec};
    }
}

pub use strategy::Strategy;

/// Runs the body of one generated case. `prop_assume!` exits the
/// closure early with `CaseResult::Reject`; assertions panic.
#[derive(Debug, PartialEq, Eq)]
pub enum CaseResult {
    Ok,
    Reject,
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseResult::Reject;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return $crate::CaseResult::Reject;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    // Form with a leading `#![proptest_config(...)]`.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Form without config: default case count.
    (
        $(#[$meta:meta])* fn $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many prop_assume! rejections \
                     ({accepted}/{} cases after {attempts} attempts)",
                    config.cases,
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome = (|| {
                    $body
                    $crate::CaseResult::Ok
                })();
                if outcome == $crate::CaseResult::Ok {
                    accepted += 1;
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 0..10usize, v in crate::prop::collection::vec(-1.0f32..1.0, 1..5)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|f| (-1.0..1.0).contains(f)));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0..100u32) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn mapped_strategies(len in (1..6usize).prop_map(|n| n * 2)) {
            prop_assert!(len % 2 == 0 && len <= 10);
        }

        #[test]
        fn flat_mapped_strategies(v in (1..4usize).prop_flat_map(|n| crate::prop::collection::vec(0..10u32, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn string_patterns(s in "[a-z]{1,8}", t in ".{0,10}") {
            prop_assert!((1..=8).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 10);
        }

        #[test]
        fn bools_and_tuples(b in any::<bool>(), (r, c) in (1..4usize, 2..5usize)) {
            prop_assert!(b || !b);
            prop_assert!(r < 4 && (2..5).contains(&c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn configured_case_count(x in 0..1000u32) {
            // Runs without exhausting attempts; count checked implicitly.
            prop_assert!(x < 1000);
        }
    }

    proptest! {
        #[test]
        #[should_panic]
        fn failures_propagate(x in 5..10usize) {
            prop_assert!(x < 5, "must fail on first case");
        }
    }

    #[test]
    fn hash_set_respects_min_size() {
        let mut rng = crate::test_runner::TestRng::for_test("hash_set_min");
        for _ in 0..50 {
            let s = crate::prop::collection::hash_set("[a-z ]{1,12}", 3..20).generate(&mut rng);
            assert!((3..20).contains(&s.len()), "len {}", s.len());
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = crate::test_runner::TestRng::for_test("just");
        assert_eq!(Just(42).generate(&mut rng), 42);
    }
}
