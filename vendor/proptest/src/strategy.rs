//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` for the types the workspace asks for.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct ArbitraryStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32 * 2.0 - 1.0
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// String literals are regex-subset strategies (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Half-open size bound accepted by `vec`/`hash_set`, mirroring
    /// upstream's `Into<SizeRange>` conversions (`usize` means exactly
    /// that many elements).
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into().0;
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::hash_set(element, size)`. Element
    /// collisions are retried so the set meets the minimum size.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        let size = size.into().0;
        assert!(size.start < size.end, "empty hash_set size range");
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = HashSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 50 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.start,
                "hash_set strategy could not reach minimum size {} (got {})",
                self.size.start,
                out.len()
            );
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..200 {
            let a = (2..9usize).generate(&mut rng);
            assert!((2..9).contains(&a));
            let f = (-3.0f32..3.0).generate(&mut rng);
            assert!((-3.0..3.0).contains(&f));
            let i = (1..=4u32).generate(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_seed(6);
        let doubled = (1..5usize).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
        let matrix_like = (1..4usize, 1..4usize)
            .prop_flat_map(|(r, c)| collection::vec(0..10u32, r * c..r * c + 1));
        for _ in 0..50 {
            let v = matrix_like.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 9);
        }
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::from_seed(7);
        let evens = (0..100u32).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..50 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }
}
