//! Offline stand-in for `parking_lot`: the same non-poisoning API,
//! implemented over `std::sync`. Lock poisoning is absorbed by
//! recovering the inner guard — matching parking_lot semantics, where
//! a panic while holding a lock simply releases it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` can temporarily take the std guard out
    // (std's wait consumes the guard by value; parking_lot's borrows).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken by condvar wait")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("nested condvar wait");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("nested condvar wait");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        // std does not report the woken count; parking_lot callers in
        // this workspace ignore the return value.
        0
    }
}

/// One-time initialization flag (subset of `parking_lot::Once`).
pub struct Once {
    done: AtomicBool,
    lock: Mutex<()>,
}

impl Default for Once {
    fn default() -> Self {
        Self::new()
    }
}

impl Once {
    pub const fn new() -> Self {
        Once {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
        }
    }

    pub fn call_once<F: FnOnce()>(&self, f: F) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let _g = self.lock.lock();
        if !self.done.load(Ordering::Acquire) {
            f();
            self.done.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(*rw.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn once_runs_once() {
        let once = Once::new();
        let mut n = 0;
        once.call_once(|| n += 1);
        once.call_once(|| n += 1);
        assert_eq!(n, 1);
    }
}
