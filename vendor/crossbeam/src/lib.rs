//! Offline stand-in for the `crossbeam` crate, implemented on top of
//! `std::thread::scope` (the workspace only uses scoped threads).

pub mod thread {
    use std::any::Any;

    /// Matches `crossbeam::thread::scope`'s `Result` alias.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Placeholder passed to spawned closures. Upstream crossbeam
    /// passes a `&Scope` so children can themselves spawn; callers in
    /// this workspace ignore it (`|_| ...`), so nested spawning is
    /// intentionally unsupported here.
    #[derive(Debug, Clone, Copy)]
    pub struct NestedScope(());

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&NestedScope(()))),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined
    /// before returning. Unlike upstream (which collects panics from
    /// unjoined children), child panics surface on `join()` or, for
    /// unjoined children, propagate when the std scope exits.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            let mut rest: &mut [u64] = &mut out;
            let mut handles = Vec::new();
            for part in data.chunks(2) {
                let (head, tail) = rest.split_at_mut(part.len());
                rest = tail;
                handles.push(s.spawn(move |_| {
                    for (o, x) in head.iter_mut().zip(part) {
                        *o = x * 10;
                    }
                    part.len()
                }));
            }
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 4);
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
