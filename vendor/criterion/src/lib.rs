//! Offline mini-criterion.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock harness: per bench, a warm-up pass sizes the iteration
//! count, then `sample_size` samples are timed and the median ns/iter
//! is printed. Under `--test` (as passed by `cargo test --benches`)
//! each bench runs exactly once for correctness checking.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The mini harness times
/// the routine per invocation regardless, so the variants only guide
/// batch sizing upstream; they are accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // First free argument (skipping flags and the bench binary
        // path) filters benchmark names, like upstream.
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-') && *a != "bench")
            .cloned();
        Criterion {
            sample_size: 10,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            measured: Vec::new(),
        };
        if self.test_mode {
            f(&mut b);
            println!("test {name} ... ok");
            return self;
        }
        // Warm-up call sizes iteration counts inside Bencher::iter.
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.measured.clear();
            f(&mut b);
            if let Some(&ns) = b.measured.last() {
                samples.push(ns);
            }
        }
        samples.sort_unstable_by(f64::total_cmp);
        if samples.is_empty() {
            println!("{name:<50} (no measurement)");
        } else {
            let median = samples[samples.len() / 2];
            let lo = samples[0];
            let hi = samples[samples.len() - 1];
            println!("{name:<50} {median:>12.1} ns/iter (min {lo:.1}, max {hi:.1})");
        }
        self
    }
}

pub struct Bencher {
    test_mode: bool,
    /// ns/iter measured by each `iter`/`iter_batched` call.
    measured: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Size the iteration count so one sample takes ~5ms.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(5).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.measured.push(total.as_nanos() as f64 / iters as f64);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        // Measure only the routine, excluding setup, until we have
        // ~5ms of measured work (at least 3 iterations).
        while iters < 3 || total < Duration::from_millis(5) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
            if iters >= 10_000 {
                break;
            }
        }
        self.measured.push(total.as_nanos() as f64 / iters as f64);
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
            filter: None,
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
            filter: None,
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: false,
            filter: Some("matmul".into()),
        };
        let mut ran = false;
        c.bench_function("encoder/infer", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(!ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 5,
            test_mode: true,
            filter: None,
        };
        let mut calls = 0;
        c.bench_function("once", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}
