//! Bounded MPMC job queue with batch draining.
//!
//! Producers (connection threads) never block: `try_push` fails fast
//! when the queue is at capacity so the caller can shed load with a
//! `503 Retry-After`. Consumers (scoring workers) block in
//! `pop_batch`, which drains up to a whole micro-batch per wakeup —
//! the batching lever that amortizes per-request overhead.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
}

/// Why `try_push` returned the item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    Full,
    Closed,
}

impl<T> BoundedQueue<T> {
    /// # Panics
    /// Panics when `cap` is 0 — a zero-capacity queue can never
    /// accept work.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap,
        }
    }

    /// Enqueue without blocking; on failure the item comes back to
    /// the caller (it owns a reply channel that must not be dropped
    /// silently).
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut g = self.inner.lock();
        if g.closed {
            return Err((item, PushError::Closed));
        }
        if g.items.len() >= self.cap {
            return Err((item, PushError::Full));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until at least one item is available (or the queue is
    /// closed and drained), then move up to `max` items into `out`.
    /// Returns `false` when the queue is closed and empty — the
    /// consumer should exit.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        let mut g = self.inner.lock();
        loop {
            if !g.items.is_empty() {
                let n = max.max(1).min(g.items.len());
                out.extend(g.items.drain(..n));
                // More work may remain for sibling workers.
                if !g.items.is_empty() {
                    self.not_empty.notify_one();
                }
                return true;
            }
            if g.closed {
                return false;
            }
            self.not_empty.wait_for(&mut g, Duration::from_millis(100));
        }
    }

    /// Close the queue: new pushes fail, consumers drain what's left
    /// and then see `false` from `pop_batch`.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.not_empty.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_pop_batch() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(3, &mut out));
        assert_eq!(out, vec![0, 1, 2]);
        out.clear();
        assert!(q.pop_batch(10, &mut out));
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn overflow_returns_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        let (item, err) = q.try_push("c").unwrap_err();
        assert_eq!((item, err), ("c", PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2).unwrap_err().1, PushError::Closed);
        let mut out = Vec::new();
        assert!(q.pop_batch(4, &mut out));
        assert_eq!(out, vec![1]);
        out.clear();
        assert!(!q.pop_batch(4, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn consumers_wake_on_push_and_close() {
        let q = std::sync::Arc::new(BoundedQueue::new(16));
        let consumed = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            let consumed = consumed.clone();
            handles.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                while q.pop_batch(4, &mut out) {
                    consumed.fetch_add(out.len(), Ordering::SeqCst);
                    out.clear();
                }
            }));
        }
        for i in 0..50 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        // Let consumers drain, then close so they exit.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::SeqCst), 50);
    }
}
