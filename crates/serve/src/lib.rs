//! `pge-serve` — an online error-detection service.
//!
//! Wraps a trained [`pge_core::PgeModel`] in a small threaded HTTP
//! server:
//!
//! * `POST /v1/score` — score a JSON array of `{title, attr, value}`
//!   triples; each answer carries the plausibility and the `is_error`
//!   verdict under the fitted threshold;
//! * `GET /healthz` — liveness;
//! * `GET /metrics` — Prometheus text: request/batch/reject counters,
//!   embedding-cache hits/misses, and a request-latency histogram.
//!
//! Requests flow through a bounded queue (overflow is shed with
//! `503 Retry-After`) into a worker pool that drains micro-batches
//! and scores them through the same `plausibility_parallel` path as
//! offline detection, with a sharded LRU embedding cache in front of
//! the text encoder. See `DESIGN.md` ("Serving architecture") for the
//! full picture.

pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod signal;

pub use metrics::Metrics;
pub use queue::{BoundedQueue, PushError};
pub use server::{start, ItemScore, ScoreItem, ServeConfig, ServerHandle};
pub use signal::{
    install_handlers, request_reload, request_shutdown, shutdown_requested, take_reload_request,
};
