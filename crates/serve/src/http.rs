//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Enough of RFC 9112 for a JSON API behind a trusted load balancer:
//! request line + headers + `Content-Length` bodies, keep-alive, and
//! hard limits on head and body size. No chunked transfer coding
//! (`411 Length Required` is returned when a body has no length).

use std::io::{self, BufRead, Write};

pub const MAX_HEAD_BYTES: usize = 16 * 1024;
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any bytes: the peer closed an idle connection.
    Closed,
    /// Malformed framing; the connection should be dropped after the
    /// given status is sent.
    Bad {
        status: u16,
        reason: &'static str,
    },
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn bad(status: u16, reason: &'static str) -> ReadError {
    ReadError::Bad { status, reason }
}

/// Read one request from `reader`.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ReadError::Closed);
    }
    if line.len() > MAX_HEAD_BYTES {
        return Err(bad(431, "request line too long"));
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(bad(400, "malformed request line"));
    }
    let http11 = version == "HTTP/1.1";

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad(400, "eof in headers"));
        }
        head_bytes += h.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad(431, "headers too large"));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let Some((k, v)) = h.split_once(':') else {
            return Err(bad(400, "malformed header"));
        };
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
        keep_alive: http11,
    };
    match req.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => req.keep_alive = false,
        Some(c) if c.contains("keep-alive") => req.keep_alive = true,
        _ => {}
    }

    if req.header("transfer-encoding").is_some() {
        return Err(bad(411, "chunked bodies unsupported"));
    }
    let len = match req.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| bad(400, "bad content-length"))?,
        None if req.method == "POST" || req.method == "PUT" => 0,
        None => 0,
    };
    if len > MAX_BODY_BYTES {
        return Err(bad(413, "body too large"));
    }
    if len > 0 {
        let mut body = vec![0u8; len];
        io::Read::read_exact(reader, &mut body)?;
        req.body = body;
    }
    Ok(req)
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a response with the given extra headers.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", status, status_reason(status))?;
    write!(w, "content-type: {content_type}\r\n")?;
    write!(w, "content-length: {}\r\n", body.len())?;
    write!(
        w,
        "connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn req(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get() {
        let r = req("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.keep_alive);
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = req("POST /v1/score HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.body, b"abcd");
        assert_eq!(r.header("Content-Length"), Some("4"));
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let r = req("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        // HTTP/1.0 defaults to close.
        let r = req("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn eof_reports_closed() {
        assert!(matches!(req(""), Err(ReadError::Closed)));
    }

    #[test]
    fn malformed_request_line_is_400() {
        for raw in ["GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / SPDY/3\r\n\r\n"] {
            match req(raw) {
                Err(ReadError::Bad { status: 400, .. }) => {}
                other => panic!("{raw:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(req(&raw), Err(ReadError::Bad { status: 413, .. })));
    }

    #[test]
    fn chunked_is_rejected() {
        let raw = "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert!(matches!(req(raw), Err(ReadError::Bad { status: 411, .. })));
    }

    #[test]
    fn response_framing() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "text/plain",
            &[("retry-after", "1")],
            b"busy",
            false,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(s.contains("retry-after: 1\r\n"));
        assert!(s.contains("content-length: 4\r\n"));
        assert!(s.contains("connection: close\r\n"));
        assert!(s.ends_with("\r\nbusy"));
    }
}
