//! Minimal HTTP/1.1 framing over blocking streams *and* byte buffers.
//!
//! Enough of RFC 9112 for a JSON API behind a trusted load balancer:
//! request line + headers + `Content-Length` bodies, keep-alive, and
//! hard limits on head and body size. No chunked transfer coding
//! (`411 Length Required` is returned when a body has no length).
//!
//! Two front ends share one parser core:
//!
//! * [`read_request`] — blocking, line-at-a-time from a `BufRead`
//!   (the thread-per-connection `pge-serve` path);
//! * [`try_parse_request`] — incremental, over whatever bytes a
//!   non-blocking socket has delivered so far (the `pge-gateway`
//!   event-loop path). It either yields a complete request plus the
//!   number of bytes consumed, reports that more bytes are needed, or
//!   rejects malformed framing — so pipelined requests parse straight
//!   out of a connection's read buffer.
//!
//! `Connection` headers are matched token-wise and case-insensitively
//! (`Close`, `keep-alive, Upgrade`, ...); unknown tokens are ignored
//! per RFC 9110 §7.6.1.

use std::io::{self, BufRead, Write};

pub const MAX_HEAD_BYTES: usize = 16 * 1024;
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any bytes: the peer closed an idle connection.
    Closed,
    /// Malformed framing; the connection should be dropped after the
    /// given status is sent.
    Bad {
        status: u16,
        reason: &'static str,
    },
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn bad(status: u16, reason: &'static str) -> ReadError {
    ReadError::Bad { status, reason }
}

/// Parse `GET /path HTTP/1.1` into (method, path, is_http11).
fn parse_request_line(line: &str) -> Result<(String, String, bool), ReadError> {
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(bad(400, "malformed request line"));
    }
    Ok((method, path, version == "HTTP/1.1"))
}

/// Parse one `Name: value` header line (already newline-trimmed).
fn parse_header_line(h: &str) -> Result<(String, String), ReadError> {
    let Some((k, v)) = h.split_once(':') else {
        return Err(bad(400, "malformed header"));
    };
    Ok((k.trim().to_string(), v.trim().to_string()))
}

/// Token-wise, case-insensitive `Connection` header interpretation.
/// `close` wins over `keep-alive` when both appear; unknown tokens
/// (`Upgrade`, garbage) are ignored. Returns `None` when the header
/// carries no recognized token, leaving the HTTP-version default.
fn connection_disposition(value: &str) -> Option<bool> {
    let mut keep = None;
    for token in value.split(',') {
        let token = token.trim();
        if token.eq_ignore_ascii_case("close") {
            return Some(false);
        }
        if token.eq_ignore_ascii_case("keep-alive") {
            keep = Some(true);
        }
    }
    keep
}

/// Assemble a bodyless [`Request`] from parsed head parts and decide
/// how many body bytes must follow. Shared by both parser front ends.
fn finish_head(
    method: String,
    path: String,
    http11: bool,
    headers: Vec<(String, String)>,
) -> Result<(Request, usize), ReadError> {
    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
        keep_alive: http11,
    };
    if let Some(ka) = req.header("connection").and_then(connection_disposition) {
        req.keep_alive = ka;
    }
    if req.header("transfer-encoding").is_some() {
        return Err(bad(411, "chunked bodies unsupported"));
    }
    let len = match req.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| bad(400, "bad content-length"))?,
        None => 0,
    };
    if len > MAX_BODY_BYTES {
        return Err(bad(413, "body too large"));
    }
    Ok((req, len))
}

/// Read one request from `reader`, blocking until it is complete.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ReadError::Closed);
    }
    if line.len() > MAX_HEAD_BYTES {
        return Err(bad(431, "request line too long"));
    }
    let (method, path, http11) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(bad(400, "eof in headers"));
        }
        head_bytes += h.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad(431, "headers too large"));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        headers.push(parse_header_line(h)?);
    }

    let (mut req, len) = finish_head(method, path, http11, headers)?;
    if len > 0 {
        let mut body = vec![0u8; len];
        io::Read::read_exact(reader, &mut body)?;
        req.body = body;
    }
    Ok(req)
}

/// Try to parse one request from the front of `buf` without blocking.
///
/// * `Ok(Some((req, consumed)))` — a complete request; the caller
///   should drain `consumed` bytes and may call again immediately
///   (pipelining).
/// * `Ok(None)` — the buffer holds only a prefix; read more bytes.
/// * `Err(_)` — malformed framing; send the error status and close.
///
/// Line framing matches [`read_request`]: lines end at `\n`, an
/// optional preceding `\r` is trimmed, and an empty line ends the
/// head.
pub fn try_parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, ReadError> {
    let mut pos = 0usize;
    let mut lines: Vec<&[u8]> = Vec::new();
    let head_end = loop {
        let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
            // No complete line yet; bound how much head we will buffer.
            if buf.len() > MAX_HEAD_BYTES {
                return Err(bad(431, "headers too large"));
            }
            return Ok(None);
        };
        let mut line = &buf[pos..pos + nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        pos += nl + 1;
        if pos > MAX_HEAD_BYTES {
            return Err(bad(431, "headers too large"));
        }
        if line.is_empty() {
            if lines.is_empty() {
                return Err(bad(400, "malformed request line"));
            }
            break pos;
        }
        lines.push(line);
    };

    let text = |raw: &[u8]| -> Result<String, ReadError> {
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| bad(400, "non-UTF-8 request head"))
    };
    let (method, path, http11) = parse_request_line(&text(lines[0])?)?;
    let mut headers = Vec::with_capacity(lines.len() - 1);
    for raw in &lines[1..] {
        headers.push(parse_header_line(&text(raw)?)?);
    }

    let (mut req, len) = finish_head(method, path, http11, headers)?;
    if buf.len() < head_end + len {
        return Ok(None);
    }
    req.body = buf[head_end..head_end + len].to_vec();
    Ok(Some((req, head_end + len)))
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a response with the given extra headers.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", status, status_reason(status))?;
    write!(w, "content-type: {content_type}\r\n")?;
    write!(w, "content-length: {}\r\n", body.len())?;
    write!(
        w,
        "connection: {}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    )?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Render a response to an owned byte buffer (the event-loop path,
/// where responses queue in a per-connection write buffer).
pub fn render_response(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    write_response(
        &mut out,
        status,
        content_type,
        extra_headers,
        body,
        keep_alive,
    )
    .expect("writing to a Vec cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn req(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get() {
        let r = req("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.keep_alive);
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = req("POST /v1/score HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.body, b"abcd");
        assert_eq!(r.header("Content-Length"), Some("4"));
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let r = req("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        // HTTP/1.0 defaults to close.
        let r = req("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn connection_tokens_are_case_insensitive() {
        let r = req("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "`Close` must match token-wise");
        let r = req("GET / HTTP/1.0\r\nConnection: Keep-Alive, Upgrade\r\n\r\n").unwrap();
        assert!(r.keep_alive, "`Keep-Alive` must be recognized in a list");
    }

    #[test]
    fn connection_garbage_tokens_are_ignored() {
        // `closed` is NOT the `close` token; the old substring match
        // would have closed this keep-alive connection.
        let r = req("GET / HTTP/1.1\r\nConnection: closed\r\n\r\n").unwrap();
        assert!(r.keep_alive);
        let r = req("GET / HTTP/1.0\r\nConnection: xkeep-alivex\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "garbage token leaves the HTTP/1.0 default");
        // close wins over keep-alive when both appear.
        let r = req("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn eof_reports_closed() {
        assert!(matches!(req(""), Err(ReadError::Closed)));
    }

    #[test]
    fn malformed_request_line_is_400() {
        for raw in ["GARBAGE\r\n\r\n", "GET /\r\n\r\n", "GET / SPDY/3\r\n\r\n"] {
            match req(raw) {
                Err(ReadError::Bad { status: 400, .. }) => {}
                other => panic!("{raw:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(req(&raw), Err(ReadError::Bad { status: 413, .. })));
    }

    #[test]
    fn chunked_is_rejected() {
        let raw = "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert!(matches!(req(raw), Err(ReadError::Bad { status: 411, .. })));
    }

    #[test]
    fn incremental_parse_needs_more_bytes() {
        let full = b"POST /v1/score HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        for cut in 0..full.len() {
            match try_parse_request(&full[..cut]) {
                Ok(None) => {}
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
        let (r, consumed) = try_parse_request(full).unwrap().unwrap();
        assert_eq!(consumed, full.len());
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn incremental_parse_pipelined_pair() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/score HTTP/1.1\r\ncontent-length: 2\r\n\r\nokTRAILING";
        let (first, used) = try_parse_request(raw).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        let (second, used2) = try_parse_request(&raw[used..]).unwrap().unwrap();
        assert_eq!(second.path, "/v1/score");
        assert_eq!(second.body, b"ok");
        assert_eq!(&raw[used + used2..], b"TRAILING");
    }

    #[test]
    fn incremental_parse_matches_blocking_semantics() {
        for raw in [
            "GET / HTTP/1.1\r\nConnection: Close\r\n\r\n",
            "GET / HTTP/1.0\r\nConnection: Keep-Alive, Upgrade\r\n\r\n",
            "GET / HTTP/1.1\r\nConnection: closed\r\n\r\n",
            "POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc",
        ] {
            let blocking = req(raw).unwrap();
            let (incr, consumed) = try_parse_request(raw.as_bytes()).unwrap().unwrap();
            assert_eq!(consumed, raw.len());
            assert_eq!(incr.keep_alive, blocking.keep_alive, "{raw:?}");
            assert_eq!(incr.body, blocking.body);
            assert_eq!(incr.method, blocking.method);
        }
    }

    #[test]
    fn incremental_parse_rejects_malformed() {
        assert!(matches!(
            try_parse_request(b"GARBAGE\r\n\r\n"),
            Err(ReadError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            try_parse_request(b"\r\n"),
            Err(ReadError::Bad { status: 400, .. })
        ));
        let oversized = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            try_parse_request(oversized.as_bytes()),
            Err(ReadError::Bad { status: 413, .. })
        ));
        // An endless head with no newline must not buffer forever.
        let runaway = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(matches!(
            try_parse_request(&runaway),
            Err(ReadError::Bad { status: 431, .. })
        ));
    }

    #[test]
    fn response_framing() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "text/plain",
            &[("retry-after", "1")],
            b"busy",
            false,
        )
        .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(s.contains("retry-after: 1\r\n"));
        assert!(s.contains("content-length: 4\r\n"));
        assert!(s.contains("connection: close\r\n"));
        assert!(s.ends_with("\r\nbusy"));
        assert_eq!(
            render_response(503, "text/plain", &[("retry-after", "1")], b"busy", false),
            s.as_bytes()
        );
    }
}
