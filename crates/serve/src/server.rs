//! The serving pipeline: accept loop → bounded queue → scoring
//! workers, with an embedding cache shared by all workers.
//!
//! ```text
//!   TcpListener ──accept──▶ connection threads (parse HTTP + JSON)
//!        │                        │ try_push (never blocks; full → 503)
//!        │                  BoundedQueue<Job>
//!        │                        │ pop_batch (micro-batching)
//!        ▼                        ▼
//!   stop flag              scoring workers ──▶ plausibility_parallel
//!                                 │                  │
//!                                 │            EmbeddingCache
//!                                 └─ reply channels back to conns
//! ```
//!
//! Consistency: the cache is keyed by exact entity text and the
//! encoder is a pure function of that text, so served scores are
//! bit-identical to offline [`pge_core::Detector`] scores regardless
//! of cache hits, evictions, or batch boundaries.

use crate::http::{self, ReadError, Request};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};
use pge_core::api::plausibility_parallel;
use pge_core::{CachedModel, EmbeddingCache, ErrorDetector, PgeModel};
use pge_graph::{AttrId, ProductGraph, ProductId, Triple, ValueId};
use pge_obs::trace::{DEFAULT_RETAIN_CAP, DEFAULT_RING_CAPACITY, DEFAULT_SLOW_MS};
use pge_obs::{manifest_event, serve_event, trace_event, RetainedTrace, RunLog, Stage, Tracer};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 = ephemeral).
    pub addr: String,
    /// Scoring worker threads draining the queue.
    pub workers: usize,
    /// Embedding cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// Bounded queue capacity in requests; overflow is shed with 503.
    pub queue_cap: usize,
    /// Maximum requests per micro-batch.
    pub max_batch: usize,
    /// Threads for `plausibility_parallel` within one micro-batch
    /// (only engages on batches large enough to beat its serial
    /// cutoff).
    pub batch_threads: usize,
    /// Append run-log events (manifest at start, serving snapshot at
    /// shutdown) to this JSONL file. `None` disables run logging.
    pub runlog_path: Option<String>,
    /// Completed scoring requests at least this slow (or errored) are
    /// promoted into the retained trace set served by
    /// `GET /debug/trace` and dumped to the run log on shutdown.
    pub trace_slow: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            cache_cap: 4096,
            queue_cap: 256,
            max_batch: 32,
            batch_threads: 2,
            runlog_path: None,
            trace_slow: Duration::from_millis(DEFAULT_SLOW_MS),
        }
    }
}

/// One triple to score, as raw text.
#[derive(Debug, Clone)]
pub struct ScoreItem {
    pub title: String,
    pub attr: String,
    pub value: String,
}

/// Outcome for one item. `None` fields mean the attribute was unknown
/// to the model (no relation vector exists to score against).
#[derive(Debug, Clone, PartialEq)]
pub struct ItemScore {
    pub plausibility: Option<f32>,
    pub is_error: Option<bool>,
}

struct Job {
    items: Vec<ScoreItem>,
    reply: mpsc::SyncSender<Vec<ItemScore>>,
    enqueued: Instant,
    /// Flight-recorder trace ID (see [`pge_obs::trace`]).
    trace: u64,
}

struct Shared {
    model: PgeModel,
    graph: ProductGraph,
    /// Plausibility ≤ threshold classifies as error.
    threshold: f32,
    cache: EmbeddingCache,
    metrics: Metrics,
    queue: BoundedQueue<Job>,
    /// Requests admitted to the queue whose response has not yet been
    /// written back to the socket; shutdown drains this to zero so no
    /// accepted request is ever dropped.
    in_flight: AtomicUsize,
    stop: AtomicBool,
    cfg: ServeConfig,
    runlog: Option<RunLog>,
    /// The always-on flight recorder + tail-sampled retained set.
    tracer: Tracer,
}

/// A running server; dropping the handle does NOT stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current metrics in Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render(&self.shared.cache)
    }

    /// The `n` most recent tail-sampled traces, newest first — the
    /// same data `GET /debug/trace?n=K` serves.
    pub fn retained_traces(&self, n: usize) -> Vec<RetainedTrace> {
        self.shared.tracer.retained(n)
    }

    /// Change the slow-trace retention threshold at runtime.
    pub fn set_trace_threshold(&self, d: Duration) {
        self.shared.tracer.set_threshold(d);
    }

    /// Graceful shutdown: stop accepting, drain queued requests, join
    /// the workers, and wait until every admitted request's response
    /// has been written back — no accepted request is dropped.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // New pushes now fail; whatever is queued still gets scored.
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // The workers have replied to every queued job; give the
        // connection threads (detached) time to flush those replies
        // onto their sockets. Deadline-bounded so a wedged peer
        // cannot hold shutdown hostage.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if let Some(log) = &self.shared.runlog {
            let m = &self.shared.metrics;
            let ms = |q: f64| m.latency.quantile(q).unwrap_or(0.0) * 1e3;
            log.write(&serve_event(&[
                ("requests_total", m.requests_total.get() as f64),
                ("items_total", m.items_total.get() as f64),
                ("batches_total", m.batches_total.get() as f64),
                ("rejected_total", m.rejected_total.get() as f64),
                ("bad_requests_total", m.bad_requests_total.get() as f64),
                ("cache_hits", self.shared.cache.hits() as f64),
                ("cache_misses", self.shared.cache.misses() as f64),
                ("latency_p50_ms", ms(0.5)),
                ("latency_p99_ms", ms(0.99)),
            ]));
            // Dump the tail-sampled traces, oldest first, for
            // `pge trace` to replay offline.
            let mut kept = self.shared.tracer.retained(usize::MAX);
            kept.reverse();
            for t in &kept {
                log.write(&trace_event(t));
            }
        }
    }
}

/// Start serving `model` over `graph` with the given fitted
/// `threshold`. Returns once the listener is bound.
pub fn start(
    model: PgeModel,
    graph: ProductGraph,
    threshold: f32,
    cfg: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let cache = EmbeddingCache::new(cfg.cache_cap);
    let metrics = Metrics::default();
    cache.install_encode_histogram(metrics.stage_encode.clone());

    let runlog = match &cfg.runlog_path {
        Some(path) => {
            let log = RunLog::create(path)?;
            log.write(&manifest_event(
                "serve",
                0,
                &[
                    ("addr".into(), addr.to_string()),
                    ("workers".into(), cfg.workers.to_string()),
                    ("cache_cap".into(), cfg.cache_cap.to_string()),
                    ("queue_cap".into(), cfg.queue_cap.to_string()),
                    ("max_batch".into(), cfg.max_batch.to_string()),
                    ("batch_threads".into(), cfg.batch_threads.to_string()),
                ],
            ));
            Some(log)
        }
        None => None,
    };

    let shared = Arc::new(Shared {
        model,
        graph,
        threshold,
        cache,
        metrics,
        queue: BoundedQueue::new(cfg.queue_cap.max(1)),
        in_flight: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        tracer: Tracer::new(DEFAULT_RING_CAPACITY, 0, cfg.trace_slow, DEFAULT_RETAIN_CAP),
        cfg: cfg.clone(),
        runlog,
    });

    let workers = (0..cfg.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("pge-score-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("pge-accept".into())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = shared.clone();
                // Connection threads are detached; they exit when the
                // peer closes, on idle timeout, or at shutdown.
                let _ = std::thread::Builder::new()
                    .name("pge-conn".into())
                    .spawn(move || connection_loop(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(req) => {
                let keep_alive = req.keep_alive && !shared.stop.load(Ordering::SeqCst);
                if respond(&mut writer, shared, &req, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Bad { status, reason }) => {
                shared.metrics.bad_requests_total.inc();
                let body = error_json(reason);
                let _ = http::write_response(
                    &mut writer,
                    status,
                    "application/json",
                    &[],
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(ReadError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle keep-alive connection: hang up at shutdown,
                // otherwise keep waiting.
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

fn error_json(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))]).to_string()
}

fn respond(w: &mut impl Write, shared: &Shared, req: &Request, keep_alive: bool) -> io::Result<()> {
    // The HTTP parser keeps the query string in the path; split it
    // off so `/debug/trace?n=5` dispatches on the bare path.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.path.as_str(), None),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => http::write_response(w, 200, "text/plain", &[], b"ok\n", keep_alive),
        ("GET", "/metrics") => {
            let body = shared.metrics.render(&shared.cache);
            http::write_response(
                w,
                200,
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
                keep_alive,
            )
        }
        ("GET", "/debug/trace") => {
            let n = query
                .into_iter()
                .flat_map(|q| q.split('&'))
                .find_map(|kv| kv.strip_prefix("n="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(16);
            let body =
                Json::Arr(shared.tracer.retained(n).iter().map(trace_event).collect()).to_string();
            http::write_response(w, 200, "application/json", &[], body.as_bytes(), keep_alive)
        }
        ("POST", "/v1/score") => {
            let (status, extra, body, admitted) = handle_score(shared, &req.body);
            let extra: Vec<(&str, &str)> = extra.iter().map(|(k, v)| (*k, v.as_str())).collect();
            let res = http::write_response(
                w,
                status,
                "application/json",
                &extra,
                body.as_bytes(),
                keep_alive,
            );
            // The response for an admitted request is on the wire (or
            // the peer is gone); either way it is no longer owed.
            if admitted {
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            res
        }
        (_, "/healthz" | "/metrics" | "/v1/score" | "/debug/trace") => http::write_response(
            w,
            405,
            "application/json",
            &[],
            error_json("method not allowed").as_bytes(),
            keep_alive,
        ),
        _ => http::write_response(
            w,
            404,
            "application/json",
            &[],
            error_json("no such endpoint").as_bytes(),
            keep_alive,
        ),
    }
}

type ExtraHeaders = Vec<(&'static str, String)>;

/// Returns `(status, extra headers, body, admitted)`; `admitted` is
/// true when the request entered the scoring queue and is being
/// tracked by the in-flight drain counter.
fn handle_score(shared: &Shared, body: &[u8]) -> (u16, ExtraHeaders, String, bool) {
    let bad = |msg: &str| {
        shared.metrics.bad_requests_total.inc();
        (400, Vec::new(), error_json(msg), false)
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return bad("body is not UTF-8");
    };
    let parsed = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return bad(&e.to_string()),
    };
    let Some(raw_items) = parsed.as_array() else {
        return bad("expected a JSON array of {title, attr, value}");
    };
    let mut items = Vec::with_capacity(raw_items.len());
    for (i, it) in raw_items.iter().enumerate() {
        let field = |k: &str| it.get(k).and_then(Json::as_str);
        match (field("title"), field("attr"), field("value")) {
            (Some(t), Some(a), Some(v)) => items.push(ScoreItem {
                title: t.to_string(),
                attr: a.to_string(),
                value: v.to_string(),
            }),
            _ => {
                return bad(&format!(
                    "item {i}: expected string fields title, attr, value"
                ))
            }
        }
    }
    if items.is_empty() {
        shared.metrics.requests_total.inc();
        return (200, Vec::new(), "[]".to_string(), false);
    }

    // The traced inference path starts here: one splitmix64 trace ID
    // follows the request through queue → worker → reply.
    let trace = shared.tracer.begin();
    let enqueued = Instant::now();
    shared
        .tracer
        .record(trace, Stage::Accept, items.len() as u64);
    shared
        .tracer
        .record(trace, Stage::QueueAdmit, shared.queue.len() as u64);
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job {
        items,
        reply: tx,
        enqueued,
        trace,
    };
    // Count before pushing: a worker may drain the job and a racing
    // shutdown observe in_flight before this thread resumes.
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    if let Err((_job, e)) = shared.queue.try_push(job) {
        debug_assert!(matches!(e, PushError::Full | PushError::Closed));
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.rejected_total.inc();
        // A shed request is an errored trace: always retained.
        shared.tracer.record(trace, Stage::Error, 503);
        shared.tracer.finish(trace, enqueued.elapsed(), true);
        return (
            503,
            vec![("retry-after", "1".to_string())],
            error_json("scoring queue full, retry later"),
            false,
        );
    }
    shared.metrics.requests_total.inc();
    match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(scores) => {
            let arr = Json::Arr(
                scores
                    .iter()
                    .map(|s| {
                        let mut pairs = vec![
                            (
                                "plausibility".to_string(),
                                s.plausibility.map_or(Json::Null, |p| Json::Num(p as f64)),
                            ),
                            (
                                "is_error".to_string(),
                                s.is_error.map_or(Json::Null, Json::Bool),
                            ),
                        ];
                        if s.plausibility.is_none() {
                            pairs.push((
                                "detail".to_string(),
                                Json::Str("unknown attribute".into()),
                            ));
                        }
                        Json::Obj(pairs)
                    })
                    .collect(),
            );
            let body = arr.to_string();
            shared
                .tracer
                .record(trace, Stage::WriteBack, body.len() as u64);
            shared.tracer.finish(trace, enqueued.elapsed(), false);
            (200, Vec::new(), body, true)
        }
        Err(_) => {
            shared.tracer.record(trace, Stage::Error, 500);
            shared.tracer.finish(trace, enqueued.elapsed(), true);
            (500, Vec::new(), error_json("scoring timed out"), true)
        }
    }
}

/// An [`ErrorDetector`] view of one micro-batch: synthetic triple `i`
/// scores flattened item `i`, so the batch flows through the same
/// `plausibility_parallel` path as offline detection — including its
/// serial cutoff for small batches.
struct BatchAdapter<'a> {
    cm: &'a CachedModel<'a>,
    items: &'a [(ScoreItem, AttrId)],
}

impl ErrorDetector for BatchAdapter<'_> {
    fn name(&self) -> String {
        "serve-batch".into()
    }

    fn plausibility(&self, _graph: &ProductGraph, t: &Triple) -> f32 {
        let (item, attr) = &self.items[t.product.0 as usize];
        self.cm.score_fact(&item.title, *attr, &item.value)
    }
}

fn worker_loop(shared: &Shared) {
    let cm = CachedModel::new(&shared.model, &shared.cache);
    let mut jobs: Vec<Job> = Vec::new();
    while shared.queue.pop_batch(shared.cfg.max_batch, &mut jobs) {
        shared.metrics.batches_total.inc();
        // Queue wait: enqueue → this worker picking the job up.
        for job in &jobs {
            shared.tracer.record(job.trace, Stage::Dequeue, 0);
            shared
                .metrics
                .stage_queue_wait
                .observe(job.enqueued.elapsed().as_secs_f64());
        }

        // Flatten scorable items; (job index, item index) per entry.
        let assembly_start = Instant::now();
        let mut flat: Vec<(ScoreItem, AttrId)> = Vec::new();
        let mut slots: Vec<(usize, usize)> = Vec::new();
        for (ji, job) in jobs.iter().enumerate() {
            for (ii, item) in job.items.iter().enumerate() {
                if let Some(attr) = shared.model.lookup_attr(&item.attr) {
                    flat.push((item.clone(), attr));
                    slots.push((ji, ii));
                }
            }
        }
        let synthetic: Vec<Triple> = (0..flat.len())
            .map(|i| Triple::new(ProductId(i as u32), AttrId(0), ValueId(0)))
            .collect();
        shared
            .metrics
            .stage_batch_assembly
            .observe(assembly_start.elapsed().as_secs_f64());
        for job in &jobs {
            shared
                .tracer
                .record(job.trace, Stage::BatchAssemble, jobs.len() as u64);
            // Cache hit/miss deltas are skipped here on purpose: the
            // cache is shared across workers, so per-job deltas would
            // misattribute concurrent activity (the gateway's
            // one-worker-per-replica traces carry them instead).
            shared
                .tracer
                .record(job.trace, Stage::Score, job.items.len() as u64);
        }

        let adapter = BatchAdapter {
            cm: &cm,
            items: &flat,
        };
        // Score time covers the whole micro-batch; encoder forwards on
        // cache misses happen inside it and are additionally broken
        // out in `stage_encode` via the cache's histogram hook.
        let score_start = Instant::now();
        let scores = plausibility_parallel(
            &adapter,
            &shared.graph,
            &synthetic,
            shared.cfg.batch_threads.max(1),
        );
        shared
            .metrics
            .stage_score
            .observe(score_start.elapsed().as_secs_f64());

        let mut results: Vec<Vec<ItemScore>> = jobs
            .iter()
            .map(|j| {
                vec![
                    ItemScore {
                        plausibility: None,
                        is_error: None,
                    };
                    j.items.len()
                ]
            })
            .collect();
        for ((ji, ii), score) in slots.into_iter().zip(&scores) {
            results[ji][ii] = ItemScore {
                plausibility: Some(*score),
                is_error: Some(*score <= shared.threshold),
            };
        }

        let total_items: usize = jobs.iter().map(|j| j.items.len()).sum();
        shared.metrics.items_total.add(total_items as u64);
        for (job, result) in jobs.drain(..).zip(results) {
            shared
                .metrics
                .latency
                .observe(job.enqueued.elapsed().as_secs_f64());
            // The receiver may have timed out and gone; that's fine.
            let _ = job.reply.send(result);
        }
    }
}
