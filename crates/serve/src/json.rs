//! JSON for the wire protocol — shared with the run-log machinery.
//!
//! The implementation lives in [`pge_obs::json`] (the run-log sink
//! and `pge report` need the same parser/serializer); this module
//! re-exports it so `pge_serve::json::{Json, parse}` callers keep
//! compiling.

pub use pge_obs::json::{parse, Json, ParseError};
