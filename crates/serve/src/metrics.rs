//! Service counters and the Prometheus text exposition.

use pge_core::EmbeddingCache;
use pge_eval::AtomicHistogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Metrics {
    /// Accepted `POST /v1/score` requests (excludes rejects).
    pub requests_total: AtomicU64,
    /// Triples scored.
    pub items_total: AtomicU64,
    /// Micro-batches drained by workers.
    pub batches_total: AtomicU64,
    /// Requests shed with 503 (queue full).
    pub rejected_total: AtomicU64,
    /// Requests refused with 4xx (malformed).
    pub bad_requests_total: AtomicU64,
    /// End-to-end request latency (enqueue → reply ready), seconds.
    pub latency: AtomicHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests_total: AtomicU64::new(0),
            items_total: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            bad_requests_total: AtomicU64::new(0),
            // 100µs … ~6.5s in ×2 steps.
            latency: AtomicHistogram::exponential(1e-4, 2.0, 16),
        }
    }
}

impl Metrics {
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Render the Prometheus text format (version 0.0.4).
    pub fn render(&self, cache: &EmbeddingCache) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        counter(
            &mut out,
            "pge_score_requests_total",
            "Accepted scoring requests.",
            self.requests_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "pge_score_items_total",
            "Triples scored.",
            self.items_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "pge_score_batches_total",
            "Micro-batches executed.",
            self.batches_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "pge_score_rejected_total",
            "Requests shed with 503 because the queue was full.",
            self.rejected_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "pge_bad_requests_total",
            "Malformed requests refused with 4xx.",
            self.bad_requests_total.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "pge_cache_hits_total",
            "Embedding cache hits.",
            cache.hits(),
        );
        counter(
            &mut out,
            "pge_cache_misses_total",
            "Embedding cache misses.",
            cache.misses(),
        );
        let _ = writeln!(
            out,
            "# HELP pge_cache_resident Embeddings currently cached."
        );
        let _ = writeln!(out, "# TYPE pge_cache_resident gauge");
        let _ = writeln!(out, "pge_cache_resident {}", cache.len());

        let name = "pge_request_latency_seconds";
        let _ = writeln!(
            out,
            "# HELP {name} Request latency from enqueue to scored reply."
        );
        let _ = writeln!(out, "# TYPE {name} histogram");
        let counts = self.latency.bucket_counts();
        let mut cumulative = 0u64;
        for (bound, c) in self.latency.bounds().iter().zip(&counts) {
            cumulative += c;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += counts.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", self.latency.sum());
        let _ = writeln!(out, "{name}_count {cumulative}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let m = Metrics::default();
        Metrics::inc(&m.requests_total);
        Metrics::add(&m.items_total, 7);
        m.latency.observe(0.002);
        let cache = EmbeddingCache::new(8);
        cache.get_or_compute("x", || vec![0.0]);
        cache.get_or_compute("x", || vec![0.0]);
        let text = m.render(&cache);
        assert!(text.contains("pge_score_requests_total 1"), "{text}");
        assert!(text.contains("pge_score_items_total 7"));
        assert!(text.contains("pge_cache_hits_total 1"));
        assert!(text.contains("pge_cache_misses_total 1"));
        assert!(text.contains("pge_cache_resident 1"));
        assert!(text.contains("pge_request_latency_seconds_count 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        // Buckets are cumulative: every bucket after 0.002 reports 1.
        assert!(text.contains("le=\"0.0002\"} 0"));
        assert!(text.contains("le=\"0.0032\"} 1"));
    }
}
