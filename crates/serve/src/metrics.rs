//! Service metrics on the shared `pge-obs` registry.
//!
//! Every counter/gauge/histogram is registered in a per-server
//! [`MetricsRegistry`] (servers in one process — e.g. tests — must
//! not share state) and rendered by the registry's Prometheus text
//! renderer. The pre-registry metric names are load-bearing
//! (dashboards scrape them): `/metrics` output must stay a superset
//! of them — see `legacy_names_still_exposed`.
//!
//! New in the per-stage latency breakdown (all histograms, seconds):
//!
//! * `pge_serve_stage_queue_wait_seconds` — enqueue → worker pickup;
//! * `pge_serve_stage_batch_assembly_seconds` — flattening one
//!   micro-batch (per batch);
//! * `pge_serve_stage_encode_seconds` — one encoder forward pass
//!   (observed per embedding-cache miss; hits skip the encoder);
//! * `pge_serve_stage_score_seconds` — scoring one micro-batch
//!   (includes encode time for any misses inside the batch).

use pge_core::EmbeddingCache;
use pge_obs::{AtomicHistogram, Counter, Gauge, MetricsRegistry};
use std::sync::Arc;

pub struct Metrics {
    registry: MetricsRegistry,
    /// Accepted `POST /v1/score` requests (excludes rejects).
    pub requests_total: Arc<Counter>,
    /// Triples scored.
    pub items_total: Arc<Counter>,
    /// Micro-batches drained by workers.
    pub batches_total: Arc<Counter>,
    /// Requests shed with 503 (queue full).
    pub rejected_total: Arc<Counter>,
    /// Requests refused with 4xx (malformed).
    pub bad_requests_total: Arc<Counter>,
    /// End-to-end request latency (enqueue → reply ready), seconds.
    pub latency: Arc<AtomicHistogram>,
    /// Stage: enqueue → worker pickup, per job.
    pub stage_queue_wait: Arc<AtomicHistogram>,
    /// Stage: micro-batch flattening, per batch.
    pub stage_batch_assembly: Arc<AtomicHistogram>,
    /// Stage: one encoder forward pass, per cache miss.
    pub stage_encode: Arc<AtomicHistogram>,
    /// Stage: micro-batch scoring, per batch.
    pub stage_score: Arc<AtomicHistogram>,
    // Mirrored from the EmbeddingCache's own atomics at render time.
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_resident: Arc<Gauge>,
}

impl Default for Metrics {
    fn default() -> Self {
        let r = MetricsRegistry::new();
        // 100µs … ~6.5s in ×2 steps.
        let latency_bounds = || {
            let mut v = Vec::with_capacity(16);
            let mut b = 1e-4;
            for _ in 0..16 {
                v.push(b);
                b *= 2.0;
            }
            v
        };
        // Stages start finer: 10µs … ~0.65s.
        let stage_bounds = || {
            let mut v = Vec::with_capacity(16);
            let mut b = 1e-5;
            for _ in 0..16 {
                v.push(b);
                b *= 2.0;
            }
            v
        };
        Metrics {
            requests_total: r.counter("pge_score_requests_total", "Accepted scoring requests."),
            items_total: r.counter("pge_score_items_total", "Triples scored."),
            batches_total: r.counter("pge_score_batches_total", "Micro-batches executed."),
            rejected_total: r.counter(
                "pge_score_rejected_total",
                "Requests shed with 503 because the queue was full.",
            ),
            bad_requests_total: r.counter(
                "pge_bad_requests_total",
                "Malformed requests refused with 4xx.",
            ),
            latency: r.histogram(
                "pge_request_latency_seconds",
                "Request latency from enqueue to scored reply.",
                latency_bounds(),
            ),
            stage_queue_wait: r.histogram(
                "pge_serve_stage_queue_wait_seconds",
                "Time a request waits in the bounded queue before a worker picks it up.",
                stage_bounds(),
            ),
            stage_batch_assembly: r.histogram(
                "pge_serve_stage_batch_assembly_seconds",
                "Time to flatten and attr-resolve one micro-batch.",
                stage_bounds(),
            ),
            stage_encode: r.histogram(
                "pge_serve_stage_encode_seconds",
                "One text-encoder forward pass (observed on embedding-cache misses).",
                stage_bounds(),
            ),
            stage_score: r.histogram(
                "pge_serve_stage_score_seconds",
                "Scoring one micro-batch (includes encode time for misses in the batch).",
                stage_bounds(),
            ),
            cache_hits: r.counter("pge_cache_hits_total", "Embedding cache hits."),
            cache_misses: r.counter("pge_cache_misses_total", "Embedding cache misses."),
            cache_resident: r.gauge("pge_cache_resident", "Embeddings currently cached."),
            registry: r,
        }
    }
}

impl Metrics {
    /// Render the Prometheus text format (version 0.0.4), mirroring
    /// the cache's own counters into the registry first.
    pub fn render(&self, cache: &EmbeddingCache) -> String {
        self.cache_hits.set(cache.hits());
        self.cache_misses.set(cache.misses());
        self.cache_resident.set(cache.len() as f64);
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let m = Metrics::default();
        m.requests_total.inc();
        m.items_total.add(7);
        m.latency.observe(0.002);
        let cache = EmbeddingCache::new(8);
        cache.get_or_compute("x", || vec![0.0]);
        cache.get_or_compute("x", || vec![0.0]);
        let text = m.render(&cache);
        assert!(text.contains("pge_score_requests_total 1"), "{text}");
        assert!(text.contains("pge_score_items_total 7"));
        assert!(text.contains("pge_cache_hits_total 1"));
        assert!(text.contains("pge_cache_misses_total 1"));
        assert!(text.contains("pge_cache_resident 1"));
        assert!(text.contains("pge_request_latency_seconds_count 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        // Buckets are cumulative: every bucket after 0.002 reports 1.
        assert!(text.contains("le=\"0.0002\"} 0"));
        assert!(text.contains("le=\"0.0032\"} 1"));
    }

    /// Compat guard: the registry migration must keep `/metrics` a
    /// superset of every pre-migration metric name, with unchanged
    /// types. Removing or renaming any of these breaks scrapers.
    #[test]
    fn legacy_names_still_exposed() {
        let m = Metrics::default();
        let text = m.render(&EmbeddingCache::new(4));
        for (name, kind) in [
            ("pge_score_requests_total", "counter"),
            ("pge_score_items_total", "counter"),
            ("pge_score_batches_total", "counter"),
            ("pge_score_rejected_total", "counter"),
            ("pge_bad_requests_total", "counter"),
            ("pge_cache_hits_total", "counter"),
            ("pge_cache_misses_total", "counter"),
            ("pge_cache_resident", "gauge"),
            ("pge_request_latency_seconds", "histogram"),
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} {kind}")),
                "missing legacy metric {name} ({kind}) in:\n{text}"
            );
        }
    }

    #[test]
    fn stage_histograms_exposed() {
        let m = Metrics::default();
        m.stage_queue_wait.observe(0.001);
        m.stage_batch_assembly.observe(0.0001);
        m.stage_encode.observe(0.01);
        m.stage_score.observe(0.02);
        let text = m.render(&EmbeddingCache::new(4));
        for name in [
            "pge_serve_stage_queue_wait_seconds",
            "pge_serve_stage_batch_assembly_seconds",
            "pge_serve_stage_encode_seconds",
            "pge_serve_stage_score_seconds",
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} histogram")),
                "missing stage metric {name} in:\n{text}"
            );
            assert!(text.contains(&format!("{name}_count 1")), "{name} count");
        }
    }
}
