//! SIGINT/SIGTERM → a global shutdown flag.
//!
//! There is no `libc` crate in the build environment, so the handler
//! registration goes through a direct FFI declaration of `signal(2)`.
//! The handler only stores to an atomic — the one thing that is
//! async-signal-safe — and the serving loop polls the flag.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Has a shutdown signal (SIGINT or SIGTERM) been received?
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the flag programmatically (used by tests and by the CLI on
/// fatal errors).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        /// POSIX `signal(2)`; the return value (previous handler) is
        /// pointer-sized.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {
        // No signal handling off Unix; ctrl-c terminates the process.
    }
}

/// Install handlers for SIGINT and SIGTERM that set the flag.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        // Single test touching the global flag (tests in this module
        // would race each other otherwise).
        install_handlers();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }
}
