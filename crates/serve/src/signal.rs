//! SIGINT/SIGTERM → a global shutdown flag; SIGHUP → a reload flag.
//!
//! There is no `libc` crate in the build environment, so the handler
//! registration goes through a direct FFI declaration of `signal(2)`.
//! The handlers only store to atomics — the one thing that is
//! async-signal-safe — and the serving loops poll the flags.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static RELOAD: AtomicBool = AtomicBool::new(false);

/// Has a shutdown signal (SIGINT or SIGTERM) been received?
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the flag programmatically (used by tests and by the CLI on
/// fatal errors).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Consume a pending reload request (SIGHUP, or programmatic via
/// [`request_reload`]). Returns `true` at most once per request —
/// the flag clears on read, so a serving loop polls this and triggers
/// one model hot-swap per signal.
pub fn take_reload_request() -> bool {
    RELOAD.swap(false, Ordering::SeqCst)
}

/// Trip the reload flag programmatically (tests, admin tooling).
pub fn request_reload() {
    RELOAD.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        /// POSIX `signal(2)`; the return value (previous handler) is
        /// pointer-sized.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(sig: i32) {
        if sig == SIGHUP {
            super::RELOAD.store(true, std::sync::atomic::Ordering::SeqCst);
        } else {
            super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
            signal(SIGHUP, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {
        // No signal handling off Unix; ctrl-c terminates the process.
    }
}

/// Install handlers for SIGINT/SIGTERM (shutdown flag) and SIGHUP
/// (reload flag).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        // Single test touching the global shutdown flag (tests in
        // this module would race each other otherwise).
        install_handlers();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }

    #[test]
    fn reload_request_is_consumed_once() {
        assert!(!take_reload_request());
        request_reload();
        assert!(take_reload_request());
        assert!(!take_reload_request(), "flag clears on read");
    }
}
