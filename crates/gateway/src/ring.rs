//! Consistent-hash routing of scoring requests to replicas.
//!
//! Each replica owns `vnodes` points on a 64-bit hash ring; a request
//! routes to the replica owning the first point clockwise of the
//! subject title's hash. Two properties matter for the serving tier:
//!
//! * **stability** — the same title always lands on the same replica,
//!   so each replica's embedding-cache shard stays hot for its slice
//!   of the catalog;
//! * **minimal disruption** — growing from N to N+1 replicas moves
//!   only ~1/(N+1) of the key space (virtual nodes keep the moved
//!   slice spread evenly), so a scale-out does not cold-start every
//!   cache at once.

/// FNV-1a over the key bytes — the same cheap hash the embedding
/// cache shards by, applied to the routing key.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 — mixes the (replica, vnode) pair into a ring point.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A fixed consistent-hash ring over `replicas` replicas.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, replica)` sorted by point.
    points: Vec<(u64, u32)>,
    replicas: u32,
}

impl HashRing {
    /// Default virtual nodes per replica: enough that the largest
    /// replica arc stays within a few percent of the mean.
    pub const DEFAULT_VNODES: usize = 64;

    /// # Panics
    /// Panics when `replicas` or `vnodes` is 0.
    pub fn new(replicas: u32, vnodes: usize) -> Self {
        assert!(replicas > 0, "a ring needs at least one replica");
        assert!(vnodes > 0, "a replica needs at least one vnode");
        let mut points: Vec<(u64, u32)> = (0..replicas)
            .flat_map(|r| (0..vnodes as u64).map(move |v| (splitmix64(((r as u64) << 32) | v), r)))
            .collect();
        points.sort_unstable();
        HashRing { points, replicas }
    }

    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// The replica owning `key` (first ring point clockwise of the
    /// key's hash, wrapping).
    pub fn route(&self, key: &str) -> u32 {
        let h = fnv1a64(key.as_bytes());
        let ix = self.points.partition_point(|&(p, _)| p < h);
        self.points[ix % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("product title {i}")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_rebuild_stable() {
        let a = HashRing::new(4, HashRing::DEFAULT_VNODES);
        let b = HashRing::new(4, HashRing::DEFAULT_VNODES);
        for k in keys(1000) {
            assert_eq!(a.route(&k), a.route(&k), "same ring, same answer");
            assert_eq!(a.route(&k), b.route(&k), "rebuilt ring, same answer");
        }
    }

    #[test]
    fn all_replicas_receive_a_fair_share() {
        let ring = HashRing::new(4, HashRing::DEFAULT_VNODES);
        let mut counts = [0usize; 4];
        let n = 10_000;
        for k in keys(n) {
            counts[ring.route(&k) as usize] += 1;
        }
        let mean = n / 4;
        for (r, &c) in counts.iter().enumerate() {
            assert!(
                c > mean / 2 && c < mean * 2,
                "replica {r} got {c} of {n} keys (mean {mean})"
            );
        }
    }

    #[test]
    fn adding_a_replica_moves_about_one_nth_of_keys() {
        let n = 10_000usize;
        let ks = keys(n);
        let before = HashRing::new(4, HashRing::DEFAULT_VNODES);
        let after = HashRing::new(5, HashRing::DEFAULT_VNODES);
        let moved = ks
            .iter()
            .filter(|k| before.route(k) != after.route(k))
            .count();
        // Expected 1/5 = 20%; allow generous slack for vnode variance.
        let frac = moved as f64 / n as f64;
        assert!(
            (0.10..=0.35).contains(&frac),
            "moved {frac:.3} of keys, expected ~0.20"
        );
        // Every moved key must land on the new replica — consistent
        // hashing never shuffles keys between surviving replicas.
        for k in &ks {
            if before.route(k) != after.route(k) {
                assert_eq!(after.route(k), 4, "moved key must go to the new replica");
            }
        }
    }

    #[test]
    fn single_replica_takes_everything() {
        let ring = HashRing::new(1, 8);
        for k in keys(50) {
            assert_eq!(ring.route(&k), 0);
        }
    }
}
