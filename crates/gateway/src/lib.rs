//! `pge-gateway` — an async sharded serving tier in front of the PGE
//! error-detection model.
//!
//! Where `pge-serve` is a thread-per-connection server, the gateway
//! is built for fleets of keep-alive clients: a single epoll event
//! loop (direct FFI, no runtime) multiplexes thousands of
//! connections, parses HTTP/1.1 incrementally — pipelining included —
//! and fans scoring work out to N replicas picked by consistent hash
//! of the subject title:
//!
//! * **cache affinity** — the same title always routes to the same
//!   replica, so each replica's LRU embedding-cache shard stays hot
//!   for its slice of the catalog and shards never duplicate entries;
//! * **zero-downtime hot-swap** — `POST /admin/reload` (or SIGHUP via
//!   the `pge gateway` CLI) loads a CRC-validated snapshot off the
//!   event loop and atomically swaps each replica's model + cache +
//!   threshold; in-flight batches finish on the snapshot they started
//!   with, so no request is ever dropped or failed by a swap;
//! * **graceful drain** — shutdown stops accepting, completes every
//!   admitted request, and flushes every response before exiting.
//!
//! Scoring is bit-identical to offline [`pge_core::Detector`] scores
//! at any replica count: routing only decides *where* a triple is
//! scored, and the pure text → embedding path makes *where*
//! irrelevant to the result.
//!
//! Endpoints: `POST /v1/score` (same contract as `pge-serve`),
//! `GET /healthz`, `GET /metrics`, `GET /admin/version`,
//! `POST /admin/reload`.
//!
//! Linux-only: the event loop speaks `epoll(7)` directly.

pub mod conn;
pub mod epoll;
pub mod metrics;
pub mod replica;
pub mod ring;
pub mod server;

pub use metrics::GatewayMetrics;
pub use replica::{ModelState, Replica};
pub use ring::HashRing;
pub use server::{start, GatewayConfig, GatewayHandle};
