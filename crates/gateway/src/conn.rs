//! Per-connection state for the event loop: read buffer, ordered
//! pipelined write-back, and lifecycle flags.
//!
//! HTTP/1.1 pipelining means a connection can have several requests
//! in flight at once, but responses MUST go back in request order.
//! Each parsed request gets the connection's next sequence number;
//! finished responses land in a stash and are released to the write
//! buffer only when every earlier sequence has been released — an
//! out-of-order completion (a fast replica finishing request 3 while
//! request 2 still queues on a slow one) waits its turn.

use std::collections::BTreeMap;
use std::net::TcpStream;

pub struct Conn {
    pub stream: TcpStream,
    /// Bytes read but not yet parsed into requests.
    pub rbuf: Vec<u8>,
    /// Rendered response bytes not yet written to the socket.
    pub wbuf: Vec<u8>,
    /// Sequence assigned to the next parsed request.
    pub next_seq: u64,
    /// Sequence whose response is next to enter `wbuf`.
    next_write: u64,
    /// Finished responses waiting for their turn (seq → bytes).
    stash: BTreeMap<u64, Vec<u8>>,
    /// Responses dispatched to replicas / reload threads and not yet
    /// stashed — the connection cannot close (and drain cannot
    /// finish) while this is non-zero.
    pub pending: usize,
    /// `Some(seq)`: the request at `seq` asked `Connection: close`
    /// (or was malformed); once its response is flushed the
    /// connection closes, and no later pipelined bytes are parsed.
    pub close_after: Option<u64>,
    /// Peer half-closed its write side (EPOLLRDHUP); stop reading,
    /// finish writing what is owed.
    pub peer_closed: bool,
    /// Interest bits currently registered with epoll — cached so the
    /// loop only issues `epoll_ctl(MOD)` when the desired interest
    /// actually changes.
    pub interest: u32,
}

impl Conn {
    pub fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            next_seq: 0,
            next_write: 0,
            stash: BTreeMap::new(),
            pending: 0,
            close_after: None,
            peer_closed: false,
            interest: 0,
        }
    }

    /// Claim the sequence slot for a newly parsed request.
    pub fn claim_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Whether the response for `seq` must be rendered `Connection:
    /// close` (it is the sequence this connection closes after).
    pub fn response_keep_alive(&self, seq: u64) -> bool {
        self.close_after != Some(seq)
    }

    /// A response for `seq` is ready: stash it and release everything
    /// now in order into the write buffer.
    pub fn complete(&mut self, seq: u64, rendered: Vec<u8>) {
        debug_assert!(seq >= self.next_write, "seq {seq} already released");
        self.stash.insert(seq, rendered);
        while let Some(bytes) = self.stash.remove(&self.next_write) {
            self.wbuf.extend_from_slice(&bytes);
            self.next_write += 1;
        }
    }

    pub fn wants_write(&self) -> bool {
        !self.wbuf.is_empty()
    }

    /// All owed responses are on the wire: nothing pending, nothing
    /// stashed, write buffer flushed.
    pub fn is_settled(&self) -> bool {
        self.pending == 0 && self.stash.is_empty() && self.wbuf.is_empty()
    }

    /// The connection has served its `Connection: close` request (or
    /// the peer hung up) and everything owed has been flushed.
    pub fn should_close(&self) -> bool {
        if !self.is_settled() {
            return false;
        }
        match self.close_after {
            Some(seq) => self.next_write > seq,
            None => self.peer_closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn conn() -> Conn {
        // A real (loopback) socket: Conn owns a TcpStream by design.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Conn::new(stream)
    }

    #[test]
    fn out_of_order_completions_release_in_order() {
        let mut c = conn();
        assert_eq!(c.claim_seq(), 0);
        assert_eq!(c.claim_seq(), 1);
        assert_eq!(c.claim_seq(), 2);
        c.complete(2, b"C".to_vec());
        assert!(c.wbuf.is_empty(), "seq 2 must wait for 0 and 1");
        c.complete(0, b"A".to_vec());
        assert_eq!(c.wbuf, b"A", "seq 0 releases alone");
        c.complete(1, b"B".to_vec());
        assert_eq!(c.wbuf, b"ABC", "seq 1 releases itself and stashed 2");
    }

    #[test]
    fn close_after_waits_for_flush() {
        let mut c = conn();
        let s0 = c.claim_seq();
        let s1 = c.claim_seq();
        c.close_after = Some(s1);
        assert!(c.response_keep_alive(s0));
        assert!(!c.response_keep_alive(s1));
        c.pending = 2;
        assert!(!c.should_close(), "responses still pending");
        c.complete(s0, b"A".to_vec());
        c.complete(s1, b"B".to_vec());
        c.pending = 0;
        assert!(!c.should_close(), "write buffer not yet flushed");
        c.wbuf.clear();
        assert!(c.should_close());
    }

    #[test]
    fn keep_alive_connection_only_closes_on_peer_eof() {
        let mut c = conn();
        let s = c.claim_seq();
        c.complete(s, b"A".to_vec());
        c.wbuf.clear();
        assert!(c.is_settled());
        assert!(!c.should_close(), "keep-alive with live peer stays open");
        c.peer_closed = true;
        assert!(c.should_close());
    }
}
