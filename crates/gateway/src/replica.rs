//! Scoring replicas: per-replica model state, bounded job queue, and
//! the worker loop that scores micro-batches and posts completions
//! back to the event loop.
//!
//! Hot-swap protocol: each replica holds its current [`ModelState`]
//! behind an `RwLock<Arc<_>>`. Workers clone the `Arc` once per
//! micro-batch, so a swap never stalls or fails an in-flight request
//! — jobs already picked up finish on the snapshot they started
//! with, and the next batch sees the new one. The embedding cache
//! lives *inside* the state and is replaced with it: cached vectors
//! are a function of the model weights, so a swapped model must start
//! from a cold cache or it would serve stale embeddings.

use crate::epoll::WakePipe;
use crate::metrics::GatewayMetrics;
use parking_lot::{Mutex, RwLock};
use pge_core::{CachedModel, EmbeddingCache, PgeModel};
use pge_obs::{span, Stage, Tracer};
use pge_serve::json::Json;
use pge_serve::queue::BoundedQueue;
use pge_serve::{ItemScore, ScoreItem};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a replica needs to answer a scoring request, swapped as
/// one unit. The model is shared across replicas via `Arc` (weights
/// are immutable); the cache shard is per replica, so each replica
/// stays hot for exactly the slice of the catalog the ring routes to
/// it.
pub struct ModelState {
    pub model: Arc<PgeModel>,
    /// Plausibility ≤ threshold classifies as error.
    pub threshold: f32,
    pub cache: EmbeddingCache,
    /// Snapshot generation: 0 at start, +1 per completed swap.
    pub version: u64,
}

impl ModelState {
    pub fn new(model: Arc<PgeModel>, threshold: f32, cache_cap: usize, version: u64) -> Self {
        ModelState {
            model,
            threshold,
            cache: EmbeddingCache::new(cache_cap),
            version,
        }
    }

    /// Score a request's items through the replica's cache. Identical
    /// math to offline `Detector::scores`: the cache is keyed by exact
    /// text and the encoder is pure, so served plausibilities are
    /// bit-identical to scoring the same triples offline.
    pub fn score_items(&self, items: &[ScoreItem]) -> Vec<ItemScore> {
        let cm = CachedModel::new(&self.model, &self.cache);
        items
            .iter()
            .map(
                |it| match cm.score_text_triple(&it.title, &it.attr, &it.value) {
                    Some(p) => ItemScore {
                        plausibility: Some(p),
                        is_error: Some(p <= self.threshold),
                    },
                    None => ItemScore {
                        plausibility: None,
                        is_error: None,
                    },
                },
            )
            .collect()
    }
}

/// One scoring request in flight: which connection and pipeline slot
/// it answers, and what to score.
pub struct Job {
    /// Event-loop connection token.
    pub conn: u64,
    /// Pipeline sequence within the connection (responses must be
    /// written back in this order).
    pub seq: u64,
    pub items: Vec<ScoreItem>,
    pub enqueued: Instant,
    /// Flight-recorder trace ID (0 = untraced).
    pub trace: u64,
}

/// A finished job on its way back to the event loop.
pub struct Completion {
    pub conn: u64,
    pub seq: u64,
    pub status: u16,
    pub body: String,
    pub enqueued: Instant,
    /// Flight-recorder trace ID (0 = untraced, e.g. admin reloads).
    pub trace: u64,
}

/// Where workers (and reload threads) deposit completions; the event
/// loop drains it after a wake-pipe poke.
pub struct CompletionSink {
    done: Mutex<Vec<Completion>>,
    pub wake: WakePipe,
}

impl CompletionSink {
    pub fn new() -> std::io::Result<CompletionSink> {
        Ok(CompletionSink {
            done: Mutex::new(Vec::new()),
            wake: WakePipe::new()?,
        })
    }

    /// Deposit completions and wake the event loop once.
    pub fn push_all(&self, completions: impl IntoIterator<Item = Completion>) {
        let mut done = self.done.lock();
        done.extend(completions);
        drop(done);
        self.wake.notify();
    }

    /// Take everything deposited so far.
    pub fn drain_into(&self, out: &mut Vec<Completion>) {
        out.append(&mut self.done.lock());
    }
}

/// One scoring replica: its hot-swappable state and its job queue.
pub struct Replica {
    pub state: RwLock<Arc<ModelState>>,
    pub queue: BoundedQueue<Job>,
    /// Fault injection for tests and latency drills: the worker
    /// sleeps this long before each batch (0 = off). The delay lands
    /// between a job's `queue_admit` and `dequeue` trace events, so
    /// an injected stall must surface in the slow-trace waterfall as
    /// queue time on this replica.
    pub stall_nanos: AtomicU64,
}

impl Replica {
    pub fn new(state: ModelState, queue_cap: usize) -> Self {
        Replica {
            state: RwLock::new(Arc::new(state)),
            queue: BoundedQueue::new(queue_cap.max(1)),
            stall_nanos: AtomicU64::new(0),
        }
    }

    /// The current state (an `Arc` clone; cheap).
    pub fn current(&self) -> Arc<ModelState> {
        self.state.read().clone()
    }

    /// Atomically install a new state. In-flight batches keep the old
    /// `Arc` until they finish.
    pub fn swap(&self, state: ModelState) {
        let _swap_span = span("gateway.swap");
        *self.state.write() = Arc::new(state);
    }

    /// Set the fault-injection stall applied before each batch.
    pub fn set_stall(&self, d: Duration) {
        self.stall_nanos
            .store(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Render scores in the exact JSON shape `pge-serve` answers with, so
/// clients cannot tell which tier scored them.
pub fn render_scores(scores: &[ItemScore]) -> String {
    Json::Arr(
        scores
            .iter()
            .map(|s| {
                let mut pairs = vec![
                    (
                        "plausibility".to_string(),
                        s.plausibility.map_or(Json::Null, |p| Json::Num(p as f64)),
                    ),
                    (
                        "is_error".to_string(),
                        s.is_error.map_or(Json::Null, Json::Bool),
                    ),
                ];
                if s.plausibility.is_none() {
                    pairs.push(("detail".to_string(), Json::Str("unknown attribute".into())));
                }
                Json::Obj(pairs)
            })
            .collect(),
    )
    .to_string()
}

/// Worker loop for replica `ix`: drain micro-batches, score each job
/// against the state current at batch start, post completions, poke
/// the event loop. Exits when the queue is closed and empty.
pub fn worker_loop(
    ix: usize,
    replica: &Replica,
    sink: &CompletionSink,
    metrics: &GatewayMetrics,
    tracer: &Tracer,
    max_batch: usize,
) {
    let mut jobs: Vec<Job> = Vec::new();
    let mut out: Vec<Completion> = Vec::new();
    while replica.queue.pop_batch(max_batch.max(1), &mut jobs) {
        let _batch_span = span("gateway.batch");
        // Fault injection: the stall runs before any job's `dequeue`
        // event is recorded, so the traced timeline charges it to
        // queue time on this replica.
        let stall = replica.stall_nanos.load(Ordering::Relaxed);
        if stall > 0 {
            std::thread::sleep(Duration::from_nanos(stall));
        }
        let rm = &metrics.replicas[ix];
        rm.queue_depth.set(replica.queue.len() as f64);
        // The swap boundary: state is pinned for this whole batch.
        let state = replica.current();
        let batch_size = jobs.len() as u64;
        for job in jobs.drain(..) {
            tracer.record(job.trace, Stage::Dequeue, ix as u64);
            metrics
                .stage_queue_wait
                .observe(job.enqueued.elapsed().as_secs_f64());
            tracer.record(job.trace, Stage::BatchAssemble, batch_size);
            let (h0, m0) = (state.cache.hits(), state.cache.misses());
            tracer.record(job.trace, Stage::Score, job.items.len() as u64);
            let score_start = Instant::now();
            let scores = state.score_items(&job.items);
            metrics
                .stage_score
                .observe(score_start.elapsed().as_secs_f64());
            // One worker per replica, so the cache deltas are exactly
            // this job's activity; every miss was one encode.
            let misses = state.cache.misses().saturating_sub(m0);
            tracer.record(
                job.trace,
                Stage::CacheHit,
                state.cache.hits().saturating_sub(h0),
            );
            tracer.record(job.trace, Stage::CacheMiss, misses);
            tracer.record(job.trace, Stage::Encode, misses);
            out.push(Completion {
                conn: job.conn,
                seq: job.seq,
                status: 200,
                body: render_scores(&scores),
                enqueued: job.enqueued,
                trace: job.trace,
            });
        }
        sink.push_all(out.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_serve_shape() {
        let scores = vec![
            ItemScore {
                plausibility: Some(-1.5),
                is_error: Some(true),
            },
            ItemScore {
                plausibility: None,
                is_error: None,
            },
        ];
        let body = render_scores(&scores);
        let parsed = pge_serve::json::parse(&body).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr[0].get("plausibility").unwrap().as_f64(), Some(-1.5));
        assert_eq!(arr[0].get("is_error").unwrap().as_bool(), Some(true));
        assert!(arr[0].get("detail").is_none());
        assert!(matches!(arr[1].get("plausibility"), Some(Json::Null)));
        assert_eq!(
            arr[1].get("detail").unwrap().as_str(),
            Some("unknown attribute")
        );
    }

    #[test]
    fn completion_sink_wakes_and_drains() {
        let sink = CompletionSink::new().unwrap();
        sink.push_all([Completion {
            conn: 3,
            seq: 0,
            status: 200,
            body: "[]".into(),
            enqueued: Instant::now(),
            trace: 0,
        }]);
        let mut out = Vec::new();
        sink.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].conn, 3);
        // Drained sink yields nothing further.
        sink.drain_into(&mut out);
        assert_eq!(out.len(), 1);
    }
}
