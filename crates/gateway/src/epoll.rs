//! Thin `epoll(7)` + wake-pipe wrappers over direct FFI.
//!
//! The build environment has no `libc` crate, so — exactly like
//! `pge-serve`'s `signal.rs` — the syscall entry points are declared
//! directly against the C library that `std` already links. Only the
//! handful of calls the event loop needs are wrapped: create the
//! instance, register/modify/remove interest, wait, and a
//! non-blocking self-pipe that scoring workers poke to wake the loop
//! when a completion is ready.
//!
//! Linux-only by construction; the gateway front end is gated on
//! `target_os = "linux"` at the crate root.

use std::io;
use std::os::fd::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const O_NONBLOCK: i32 = 0x800;
const O_CLOEXEC: i32 = 0x80000;

/// Mirror of the kernel's `struct epoll_event`. x86_64 is the one
/// ABI where the kernel declares it packed.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct Event {
    events: u32,
    data: u64,
}

impl Event {
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The token the fd was registered with.
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut Event) -> i32;
    fn epoll_wait(epfd: i32, events: *mut Event, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance owning its fd.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { epoll_create1(O_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = Event {
            events: interest,
            data: token,
        };
        check(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Register `fd` under `token` for level-triggered `interest`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` (-1 = forever). Returns the number of
    /// ready events filled into `events`; a signal interruption
    /// reports 0 ready events rather than an error.
    ///
    /// The span covers blocking time, so in `pge report` it reads as
    /// "event loop waiting for work" — its total minus wall time is
    /// the loop's busy fraction.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        let _wait_span = pge_obs::span("gateway.epoll_wait");
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A non-blocking self-pipe: scoring workers and reload threads call
/// [`WakePipe::notify`] from any thread; the event loop registers the
/// read end and [`WakePipe::drain`]s it on wakeup. A full pipe means
/// a wakeup is already pending, so `notify` ignores `EAGAIN`.
pub struct WakePipe {
    rd: RawFd,
    wr: RawFd,
}

impl WakePipe {
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        check(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(WakePipe {
            rd: fds[0],
            wr: fds[1],
        })
    }

    pub fn read_fd(&self) -> RawFd {
        self.rd
    }

    /// Wake the event loop. Callable from any thread.
    pub fn notify(&self) {
        let byte = 1u8;
        unsafe { write(self.wr, &byte, 1) };
    }

    /// Consume all pending wake bytes.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while unsafe { read(self.rd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.rd);
            close(self.wr);
        }
    }
}

// SAFETY: the wrapped fds are plain integers; the kernel serializes
// epoll_ctl/epoll_wait and pipe reads/writes across threads.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_rouses_epoll() {
        let ep = Epoll::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        ep.add(pipe.read_fd(), EPOLLIN, 7).unwrap();

        let mut events = [Event::default(); 8];
        // Nothing pending: times out with zero events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        pipe.notify();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].readiness() & EPOLLIN != 0);

        // Drained pipe goes quiet again (level-triggered).
        pipe.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn notify_from_another_thread() {
        let ep = Epoll::new().unwrap();
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        ep.add(pipe.read_fd(), EPOLLIN, 42).unwrap();
        let p2 = pipe.clone();
        let h = std::thread::spawn(move || p2.notify());
        let mut events = [Event::default(); 4];
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        h.join().unwrap();
    }

    #[test]
    fn sockets_report_readiness() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 1).unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = [Event::default(); 8];
        let n = ep.wait(&mut events, 2000).unwrap();
        assert!(n >= 1 && events[..n].iter().any(|e| e.token() == 1));

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        ep.add(accepted.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 2)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert!(events[..n].iter().any(|e| e.token() == 2));
        ep.delete(accepted.as_raw_fd()).unwrap();
    }
}
