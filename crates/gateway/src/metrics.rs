//! Gateway metrics on the shared `pge-obs` registry.
//!
//! Everything the soak and the dashboards need to see a sharded tier
//! behaving: per-replica queue depth and routing counts (skew shows
//! up as one replica's `routed_total` running hot), hot-swap events
//! and the live model version, and per-stage latency histograms
//! (queue wait → score → total) so a p99 regression can be pinned to
//! a stage.

use pge_obs::{AtomicHistogram, Counter, Gauge, MetricsRegistry};
use std::sync::Arc;

/// Per-replica instruments. The registry has no label support, so
/// replicas register indexed metric names
/// (`pge_gateway_replica_0_routed_total`, ...).
pub struct ReplicaMetrics {
    /// Requests routed to this replica (consistent-hash pick).
    pub routed_total: Arc<Counter>,
    /// Jobs sitting in this replica's queue right now.
    pub queue_depth: Arc<Gauge>,
    /// Mirrored from the replica's current embedding-cache shard at
    /// render time (resets on hot-swap: a fresh model gets a fresh
    /// cache).
    pub cache_hits: Arc<Gauge>,
    pub cache_misses: Arc<Gauge>,
}

pub struct GatewayMetrics {
    registry: MetricsRegistry,
    /// Connections currently registered with the event loop.
    pub connections: Arc<Gauge>,
    /// Connections accepted over the gateway's lifetime.
    pub accepted_total: Arc<Counter>,
    /// Requests parsed off connections (all endpoints).
    pub requests_total: Arc<Counter>,
    /// Responses written back (should converge to requests_total).
    pub responses_total: Arc<Counter>,
    /// Scoring requests shed with 503 (replica queue full).
    pub rejected_total: Arc<Counter>,
    /// Malformed requests answered with 4xx.
    pub bad_requests_total: Arc<Counter>,
    /// Completed model hot-swaps.
    pub swaps_total: Arc<Counter>,
    /// Version of the model snapshot currently serving.
    pub model_version: Arc<Gauge>,
    /// Scoring request latency: dispatch → completion applied.
    pub latency: Arc<AtomicHistogram>,
    /// Stage: dispatch → replica worker pickup.
    pub stage_queue_wait: Arc<AtomicHistogram>,
    /// Stage: scoring one job on the replica worker.
    pub stage_score: Arc<AtomicHistogram>,
    pub replicas: Vec<ReplicaMetrics>,
}

impl GatewayMetrics {
    pub fn new(replicas: usize) -> Self {
        let r = MetricsRegistry::new();
        // 100µs … ~6.5s in ×2 steps, same grid as pge-serve.
        let latency_bounds = || {
            let mut v = Vec::with_capacity(16);
            let mut b = 1e-4;
            for _ in 0..16 {
                v.push(b);
                b *= 2.0;
            }
            v
        };
        let stage_bounds = || {
            let mut v = Vec::with_capacity(16);
            let mut b = 1e-5;
            for _ in 0..16 {
                v.push(b);
                b *= 2.0;
            }
            v
        };
        let per_replica = (0..replicas)
            .map(|i| ReplicaMetrics {
                routed_total: r.counter(
                    &format!("pge_gateway_replica_{i}_routed_total"),
                    "Scoring requests routed to this replica.",
                ),
                queue_depth: r.gauge(
                    &format!("pge_gateway_replica_{i}_queue_depth"),
                    "Jobs currently queued on this replica.",
                ),
                cache_hits: r.gauge(
                    &format!("pge_gateway_replica_{i}_cache_hits"),
                    "Embedding-cache hits of the replica's current model state.",
                ),
                cache_misses: r.gauge(
                    &format!("pge_gateway_replica_{i}_cache_misses"),
                    "Embedding-cache misses of the replica's current model state.",
                ),
            })
            .collect();
        GatewayMetrics {
            connections: r.gauge(
                "pge_gateway_connections",
                "Connections registered with the event loop.",
            ),
            accepted_total: r.counter(
                "pge_gateway_accepted_total",
                "Connections accepted since start.",
            ),
            requests_total: r.counter(
                "pge_gateway_requests_total",
                "Requests parsed off connections.",
            ),
            responses_total: r.counter(
                "pge_gateway_responses_total",
                "Responses written back to connections.",
            ),
            rejected_total: r.counter(
                "pge_gateway_rejected_total",
                "Scoring requests shed with 503 because a replica queue was full.",
            ),
            bad_requests_total: r.counter(
                "pge_gateway_bad_requests_total",
                "Malformed requests answered with 4xx.",
            ),
            swaps_total: r.counter(
                "pge_gateway_swaps_total",
                "Completed zero-downtime model hot-swaps.",
            ),
            model_version: r.gauge(
                "pge_gateway_model_version",
                "Version of the snapshot currently serving (increments per swap).",
            ),
            latency: r.histogram(
                "pge_gateway_request_latency_seconds",
                "Scoring latency from dispatch to completion.",
                latency_bounds(),
            ),
            stage_queue_wait: r.histogram(
                "pge_gateway_stage_queue_wait_seconds",
                "Time a job waits in a replica queue before its worker picks it up.",
                stage_bounds(),
            ),
            stage_score: r.histogram(
                "pge_gateway_stage_score_seconds",
                "Scoring one job on a replica worker.",
                stage_bounds(),
            ),
            replicas: per_replica,
            registry: r,
        }
    }

    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// Routing skew: max over replicas of routed / mean routed (1.0 =
    /// perfectly even; reported in run logs and the soak bench).
    pub fn routing_skew(&self) -> f64 {
        let counts: Vec<f64> = self
            .replicas
            .iter()
            .map(|r| r.routed_total.get() as f64)
            .collect();
        let total: f64 = counts.iter().sum();
        if total == 0.0 || counts.is_empty() {
            return 1.0;
        }
        let mean = total / counts.len() as f64;
        counts.iter().fold(0.0f64, |m, &c| m.max(c)) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_gateway_metrics() {
        let m = GatewayMetrics::new(2);
        m.requests_total.inc();
        m.replicas[0].routed_total.inc();
        m.replicas[1].queue_depth.set(3.0);
        m.latency.observe(0.002);
        let text = m.render();
        for name in [
            "pge_gateway_connections",
            "pge_gateway_accepted_total",
            "pge_gateway_requests_total",
            "pge_gateway_responses_total",
            "pge_gateway_rejected_total",
            "pge_gateway_bad_requests_total",
            "pge_gateway_swaps_total",
            "pge_gateway_model_version",
            "pge_gateway_request_latency_seconds",
            "pge_gateway_stage_queue_wait_seconds",
            "pge_gateway_stage_score_seconds",
            "pge_gateway_replica_0_routed_total",
            "pge_gateway_replica_1_queue_depth",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn routing_skew_reflects_imbalance() {
        let m = GatewayMetrics::new(2);
        assert_eq!(m.routing_skew(), 1.0, "no traffic yet");
        m.replicas[0].routed_total.add(30);
        m.replicas[1].routed_total.add(10);
        // max 30 / mean 20 = 1.5
        assert!((m.routing_skew() - 1.5).abs() < 1e-9);
    }
}
