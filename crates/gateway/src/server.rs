//! The gateway front end: one epoll event loop fanning requests out
//! to scoring replicas and writing pipelined responses back in order.
//!
//! ```text
//!   TcpListener ─▶ epoll event loop (single thread, non-blocking)
//!        │            │ parse HTTP incrementally, route by
//!        │            │ consistent hash of the subject title
//!        │            ▼
//!        │     replica queues (bounded; overflow → 503)
//!        │       r0      r1      r2 ...
//!        │        │       │       │   one worker each, own
//!        │        ▼       ▼       ▼   model Arc + cache shard
//!        │     completion sink ──wake pipe──▶ event loop
//!        │                                    (ordered write-back)
//!        └─ admin: /admin/reload, SIGHUP ─▶ reload thread
//!                  (load snapshot off-loop, swap per replica)
//! ```
//!
//! The event loop never blocks on a socket, a model, or the disk:
//! scoring runs on replica workers, snapshot loading on a dedicated
//! reload thread, and both hand results back through the completion
//! sink plus a wake pipe. Shutdown drains: the listener is
//! deregistered, buffered requests finish, and the loop exits only
//! once every admitted request's response is on the wire (or a
//! deadline expires).

use crate::conn::Conn;
use crate::epoll::{Epoll, Event, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::metrics::GatewayMetrics;
use crate::replica::{worker_loop, Completion, CompletionSink, Job, ModelState, Replica};
use crate::ring::HashRing;
use pge_core::{load_model_auto_path, Detector, PersistError, PgeModel};
use pge_graph::{LabeledTriple, ProductGraph};
use pge_obs::trace::{DEFAULT_RETAIN_CAP, DEFAULT_RING_CAPACITY, DEFAULT_SLOW_MS};
use pge_obs::{
    gateway_event, manifest_event, spans_event, trace_event, RetainedTrace, RunLog, Stage, Tracer,
};
use pge_serve::http::{self, ReadError};
use pge_serve::json::{self, Json};
use pge_serve::ScoreItem;
use pge_store::{MmapMode, DEFAULT_RESIDENT_BUDGET};
use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Bind address (port 0 = ephemeral).
    pub addr: String,
    /// Scoring replicas; each owns a queue, a worker, and a cache
    /// shard.
    pub replicas: usize,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Embedding-cache capacity per replica (0 disables caching).
    pub cache_cap: usize,
    /// Per-replica queue capacity; overflow is shed with 503.
    pub queue_cap: usize,
    /// Maximum jobs per worker micro-batch.
    pub max_batch: usize,
    /// Snapshot to (re)load on SIGHUP or a body-less
    /// `POST /admin/reload`.
    pub model_path: Option<String>,
    /// Backing for reloaded PGEBIN02 snapshots: mapped (rows served
    /// off the page cache) or a heap copy. Ignored by the other
    /// formats.
    pub mmap: MmapMode,
    /// Append run-log events here; `None` disables run logging.
    pub runlog_path: Option<String>,
    /// Longest the drain phase may take before remaining connections
    /// are cut.
    pub drain_timeout: Duration,
    /// Completed scoring requests at least this slow (or errored) are
    /// promoted into the retained trace set served by
    /// `GET /debug/trace` and dumped to the run log on shutdown.
    pub trace_slow: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:7900".into(),
            replicas: 2,
            vnodes: HashRing::DEFAULT_VNODES,
            cache_cap: 4096,
            queue_cap: 256,
            max_batch: 32,
            model_path: None,
            mmap: MmapMode::Auto,
            runlog_path: None,
            drain_timeout: Duration::from_secs(30),
            trace_slow: Duration::from_millis(DEFAULT_SLOW_MS),
        }
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const READ_CHUNK: usize = 16 * 1024;

struct Shared {
    replicas: Vec<Arc<Replica>>,
    ring: HashRing,
    metrics: GatewayMetrics,
    sink: Arc<CompletionSink>,
    /// Current snapshot generation (0 at start, +1 per swap).
    version: AtomicU64,
    /// A reload is in progress; concurrent reloads answer 409.
    reload_busy: AtomicBool,
    /// Shutdown requested: stop accepting, drain, exit.
    stop: AtomicBool,
    /// The event loop has entered its drain phase (responses render
    /// `Connection: close`).
    draining: AtomicBool,
    graph: ProductGraph,
    valid: Vec<LabeledTriple>,
    cfg: GatewayConfig,
    runlog: Option<RunLog>,
    /// The always-on flight recorder + tail-sampled retained set.
    tracer: Tracer,
}

/// A failed reload, classified for the caller: `retryable` marks
/// transient states (snapshot mid-write → truncated payload or bad
/// CRC) where the client should back off and resend, versus hard
/// errors (missing file, graph mismatch) that retrying won't fix.
#[derive(Debug)]
struct ReloadError {
    msg: String,
    retryable: bool,
}

/// Clears `reload_busy` when dropped, so the busy flag cannot leak on
/// any exit path — early return, load error, or a panic unwinding the
/// reload thread. Without this a panicked reload left the gateway
/// answering 409 to every subsequent reload forever.
struct ReloadGuard {
    shared: Arc<Shared>,
}

impl ReloadGuard {
    /// Claim the reload slot; `None` when a reload is already running.
    fn acquire(shared: &Arc<Shared>) -> Option<Self> {
        if shared.reload_busy.swap(true, Ordering::SeqCst) {
            return None;
        }
        Some(Self {
            shared: shared.clone(),
        })
    }
}

impl Drop for ReloadGuard {
    fn drop(&mut self) {
        self.shared.reload_busy.store(false, Ordering::SeqCst);
    }
}

impl Shared {
    /// Install `model` (with `threshold`) on every replica. Each gets
    /// a fresh cache — cached vectors are a function of the weights.
    fn swap_model(&self, model: Arc<PgeModel>, threshold: f32) -> u64 {
        let v = self.version.fetch_add(1, Ordering::SeqCst) + 1;
        for r in &self.replicas {
            r.swap(ModelState::new(
                model.clone(),
                threshold,
                self.cfg.cache_cap,
                v,
            ));
        }
        self.metrics.swaps_total.inc();
        self.metrics.model_version.set(v as f64);
        if let Some(log) = &self.runlog {
            log.write(&gateway_event(&[("swap", 1.0), ("version", v as f64)]));
        }
        v
    }

    /// Load a PGEBIN/PGE snapshot from disk and swap it in. Runs on a
    /// reload thread, never on the event loop. A failed load leaves
    /// the serving model untouched.
    fn reload_from_path(&self, path: &str) -> Result<u64, ReloadError> {
        // Magic-routed: a PGEBIN02 snapshot is opened through the
        // store (honoring cfg.mmap), so a hot-swapped model with an
        // embedding bank keeps serving rows off the page cache.
        let model = load_model_auto_path(
            std::path::Path::new(path),
            &self.graph,
            self.cfg.mmap,
            DEFAULT_RESIDENT_BUDGET,
        )
        .map_err(|e| ReloadError {
            // A snapshot the pusher is still writing reads as a bad
            // magic/CRC or truncated payload; the next attempt, after
            // the writer finishes, will see the complete file.
            retryable: matches!(e, PersistError::Corrupt(_) | PersistError::UnknownFormat(_)),
            msg: format!("load {path}: {e}"),
        })?;
        // Refit the decision threshold on the validation split; with
        // no split available the current threshold carries over.
        let threshold = if self.valid.is_empty() {
            self.replicas[0].current().threshold
        } else {
            Detector::fit(&model, &self.graph, &self.valid).threshold
        };
        Ok(self.swap_model(Arc::new(model), threshold))
    }

    fn metrics_text(&self) -> String {
        for (i, r) in self.replicas.iter().enumerate() {
            let st = r.current();
            self.metrics.replicas[i]
                .cache_hits
                .set(st.cache.hits() as f64);
            self.metrics.replicas[i]
                .cache_misses
                .set(st.cache.misses() as f64);
            self.metrics.replicas[i]
                .queue_depth
                .set(r.queue.len() as f64);
        }
        self.metrics.render()
    }
}

/// A running gateway; dropping the handle does NOT stop it — call
/// [`GatewayHandle::shutdown`].
pub struct GatewayHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl GatewayHandle {
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Current snapshot generation.
    pub fn version(&self) -> u64 {
        self.shared.version.load(Ordering::SeqCst)
    }

    /// Max-over-mean routed share across replicas (1.0 = even).
    pub fn routing_skew(&self) -> f64 {
        self.shared.metrics.routing_skew()
    }

    /// Hot-swap to an in-memory model (tests and embedding callers);
    /// returns the new version.
    pub fn swap_model(&self, model: PgeModel, threshold: f32) -> u64 {
        self.shared.swap_model(Arc::new(model), threshold)
    }

    /// The `n` most recent tail-sampled traces, newest first — the
    /// same data `GET /debug/trace?n=K` serves.
    pub fn retained_traces(&self, n: usize) -> Vec<RetainedTrace> {
        self.shared.tracer.retained(n)
    }

    /// Change the slow-trace retention threshold at runtime.
    pub fn set_trace_threshold(&self, d: Duration) {
        self.shared.tracer.set_threshold(d);
    }

    /// Fault injection (tests and latency drills): stall replica
    /// `ix`'s worker by `d` before each batch. The delay must show up
    /// in retained traces as queue time on that replica.
    pub fn set_replica_stall(&self, ix: usize, d: Duration) {
        if let Some(r) = self.shared.replicas.get(ix) {
            r.set_stall(d);
        }
    }

    /// Hot-swap from a snapshot file, refitting the threshold on the
    /// validation split the gateway was started with. The same path
    /// `POST /admin/reload` and SIGHUP take.
    pub fn reload_from_path(&self, path: &str) -> Result<u64, String> {
        let Some(_guard) = ReloadGuard::acquire(&self.shared) else {
            return Err("reload already in progress".into());
        };
        self.shared.reload_from_path(path).map_err(|e| e.msg)
    }

    /// Graceful shutdown: stop accepting, finish every admitted
    /// request, flush every response, then tear down the replicas.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.sink.wake.notify();
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        // The drained loop closed the queues; workers exit once empty.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(log) = &self.shared.runlog {
            let m = &self.shared.metrics;
            let ms = |q: f64| m.latency.quantile(q).unwrap_or(0.0) * 1e3;
            log.write(&gateway_event(&[
                ("requests_total", m.requests_total.get() as f64),
                ("responses_total", m.responses_total.get() as f64),
                ("rejected_total", m.rejected_total.get() as f64),
                ("bad_requests_total", m.bad_requests_total.get() as f64),
                ("accepted_total", m.accepted_total.get() as f64),
                ("swaps_total", m.swaps_total.get() as f64),
                ("model_version", m.model_version.get()),
                ("routing_skew", m.routing_skew()),
                ("latency_p50_ms", ms(0.5)),
                ("latency_p99_ms", ms(0.99)),
            ]));
            // Tail-sampled traces, oldest first, then the span totals
            // the gateway accumulated (event loop, batches, swaps) so
            // `pge report` stops skipping the gateway entirely.
            let mut kept = self.shared.tracer.retained(usize::MAX);
            kept.reverse();
            for t in &kept {
                log.write(&trace_event(t));
            }
            log.write(&spans_event());
        }
    }
}

/// Start the gateway serving `model` (decision threshold `threshold`)
/// over `graph`. `valid` is kept for threshold refits on reload; pass
/// an empty slice to carry the threshold across swaps unchanged.
/// Returns once the listener is bound.
pub fn start(
    model: PgeModel,
    graph: ProductGraph,
    valid: Vec<LabeledTriple>,
    threshold: f32,
    cfg: GatewayConfig,
) -> io::Result<GatewayHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let n_replicas = cfg.replicas.max(1);
    let metrics = GatewayMetrics::new(n_replicas);
    let model = Arc::new(model);
    let replicas: Vec<Arc<Replica>> = (0..n_replicas)
        .map(|_| {
            Arc::new(Replica::new(
                ModelState::new(model.clone(), threshold, cfg.cache_cap, 0),
                cfg.queue_cap,
            ))
        })
        .collect();

    let runlog = match &cfg.runlog_path {
        Some(path) => {
            // With a run log the shutdown snapshot includes span
            // totals; make sure they actually accumulate.
            pge_obs::set_spans_enabled(true);
            let log = RunLog::create(path)?;
            log.write(&manifest_event(
                "gateway",
                0,
                &[
                    ("addr".into(), addr.to_string()),
                    ("replicas".into(), n_replicas.to_string()),
                    ("vnodes".into(), cfg.vnodes.to_string()),
                    ("cache_cap".into(), cfg.cache_cap.to_string()),
                    ("queue_cap".into(), cfg.queue_cap.to_string()),
                    ("max_batch".into(), cfg.max_batch.to_string()),
                ],
            ));
            Some(log)
        }
        None => None,
    };

    let shared = Arc::new(Shared {
        ring: HashRing::new(n_replicas as u32, cfg.vnodes.max(1)),
        replicas,
        metrics,
        sink: Arc::new(CompletionSink::new()?),
        version: AtomicU64::new(0),
        reload_busy: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        graph,
        valid,
        // Trace IDs are deterministic under the fixed seed; the ring
        // is always on — its overhead budget is enforced by the
        // gateway_probe soak.
        tracer: Tracer::new(DEFAULT_RING_CAPACITY, 0, cfg.trace_slow, DEFAULT_RETAIN_CAP),
        cfg: cfg.clone(),
        runlog,
    });

    let workers = (0..n_replicas)
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("pge-gw-replica-{i}"))
                .spawn(move || {
                    worker_loop(
                        i,
                        &shared.replicas[i],
                        &shared.sink,
                        &shared.metrics,
                        &shared.tracer,
                        shared.cfg.max_batch,
                    )
                })
                .expect("spawn replica worker")
        })
        .collect();

    let event_loop = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("pge-gw-loop".into())
            .spawn(move || run_event_loop(listener, &shared))
            .expect("spawn event loop")
    };

    Ok(GatewayHandle {
        addr,
        shared,
        event_loop: Some(event_loop),
        workers,
    })
}

fn error_json(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))]).to_string()
}

/// Parse a `/v1/score` body: a JSON array of `{title, attr, value}`.
/// Mirrors `pge-serve`'s validation (and its error wording) exactly.
fn parse_items(body: &[u8]) -> Result<Vec<ScoreItem>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let parsed = json::parse(text).map_err(|e| e.to_string())?;
    let raw_items = parsed
        .as_array()
        .ok_or_else(|| "expected a JSON array of {title, attr, value}".to_string())?;
    let mut items = Vec::with_capacity(raw_items.len());
    for (i, it) in raw_items.iter().enumerate() {
        let field = |k: &str| it.get(k).and_then(Json::as_str);
        match (field("title"), field("attr"), field("value")) {
            (Some(t), Some(a), Some(v)) => items.push(ScoreItem {
                title: t.to_string(),
                attr: a.to_string(),
                value: v.to_string(),
            }),
            _ => {
                return Err(format!(
                    "item {i}: expected string fields title, attr, value"
                ))
            }
        }
    }
    Ok(items)
}

/// Queue a rendered response on the connection, in sequence order.
fn respond_inline(
    conn: &mut Conn,
    seq: u64,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    shared: &Shared,
) {
    let keep_alive = conn.response_keep_alive(seq) && !shared.draining.load(Ordering::SeqCst);
    conn.complete(
        seq,
        http::render_response(status, content_type, extra, body, keep_alive),
    );
    shared.metrics.responses_total.inc();
}

/// Route one parsed request: answer inline, hand to a replica, or
/// kick off a reload thread.
fn dispatch(conn: &mut Conn, token: u64, seq: u64, req: http::Request, shared: &Arc<Shared>) {
    let inline_json = |conn: &mut Conn, status: u16, body: &str| {
        respond_inline(
            conn,
            seq,
            status,
            "application/json",
            &[],
            body.as_bytes(),
            shared,
        );
    };
    // The HTTP parser keeps the query string in the path; split it
    // off so `/debug/trace?n=5` dispatches on the bare path.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.path.as_str(), None),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            respond_inline(conn, seq, 200, "text/plain", &[], b"ok\n", shared);
        }
        ("GET", "/metrics") => {
            let body = shared.metrics_text();
            respond_inline(
                conn,
                seq,
                200,
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
                shared,
            );
        }
        ("GET", "/debug/trace") => {
            let n = query
                .into_iter()
                .flat_map(|q| q.split('&'))
                .find_map(|kv| kv.strip_prefix("n="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(16);
            let body =
                Json::Arr(shared.tracer.retained(n).iter().map(trace_event).collect()).to_string();
            inline_json(conn, 200, &body);
        }
        ("GET", "/admin/version") => {
            let body = Json::Obj(vec![
                (
                    "version".into(),
                    Json::Num(shared.version.load(Ordering::SeqCst) as f64),
                ),
                ("replicas".into(), Json::Num(shared.replicas.len() as f64)),
            ])
            .to_string();
            inline_json(conn, 200, &body);
        }
        ("POST", "/v1/score") => {
            let items = match parse_items(&req.body) {
                Ok(items) => items,
                Err(msg) => {
                    shared.metrics.bad_requests_total.inc();
                    inline_json(conn, 400, &error_json(&msg));
                    return;
                }
            };
            if items.is_empty() {
                inline_json(conn, 200, "[]");
                return;
            }
            // The traced inference path starts here: one splitmix64
            // trace ID follows the request through route → queue →
            // worker → write-back.
            let trace = shared.tracer.begin();
            let enqueued = Instant::now();
            shared.tracer.record(trace, Stage::Accept, token);
            // Cache affinity: route by the subject title so repeat
            // titles land on the replica whose cache already holds
            // their embedding.
            let r = shared.ring.route(&items[0].title) as usize;
            shared.tracer.record(trace, Stage::Route, r as u64);
            conn.pending += 1;
            let replica = &shared.replicas[r];
            shared
                .tracer
                .record(trace, Stage::QueueAdmit, replica.queue.len() as u64);
            let job = Job {
                conn: token,
                seq,
                items,
                enqueued,
                trace,
            };
            if replica.queue.try_push(job).is_err() {
                conn.pending -= 1;
                shared.metrics.rejected_total.inc();
                // A shed request is an errored trace: always retained.
                shared.tracer.record(trace, Stage::Error, 503);
                shared.tracer.finish(trace, enqueued.elapsed(), true);
                let body = error_json("scoring queue full, retry later");
                respond_inline(
                    conn,
                    seq,
                    503,
                    "application/json",
                    &[("retry-after", "1")],
                    body.as_bytes(),
                    shared,
                );
            } else {
                shared.metrics.replicas[r].routed_total.inc();
                shared.metrics.replicas[r]
                    .queue_depth
                    .set(replica.queue.len() as f64);
            }
        }
        ("POST", "/admin/reload") => {
            // Optional body {"path": "..."} overrides the configured
            // snapshot path.
            let body_path = (!req.body.is_empty())
                .then(|| {
                    std::str::from_utf8(&req.body)
                        .ok()
                        .and_then(|t| json::parse(t).ok())
                        .and_then(|j| j.get("path").and_then(Json::as_str).map(str::to_string))
                })
                .flatten();
            let Some(path) = body_path.or_else(|| shared.cfg.model_path.clone()) else {
                shared.metrics.bad_requests_total.inc();
                inline_json(
                    conn,
                    422,
                    &error_json("no snapshot path: send {\"path\": ...} or start with --model"),
                );
                return;
            };
            let Some(guard) = ReloadGuard::acquire(shared) else {
                inline_json(conn, 409, &error_json("reload already in progress"));
                return;
            };
            conn.pending += 1;
            let shared = shared.clone();
            let enqueued = Instant::now();
            // Snapshot loading (disk + CRC + threshold refit) happens
            // on its own thread; the event loop keeps serving and the
            // answer comes back through the completion sink. The guard
            // rides along so `reload_busy` clears even if the load
            // panics; a failed spawn drops it right here.
            let spawned = std::thread::Builder::new()
                .name("pge-gw-reload".into())
                .spawn(move || {
                    let _guard = guard;
                    let (status, body) = match shared.reload_from_path(&path) {
                        Ok(v) => (
                            200,
                            Json::Obj(vec![
                                ("swapped".into(), Json::Bool(true)),
                                ("version".into(), Json::Num(v as f64)),
                            ])
                            .to_string(),
                        ),
                        // 503 + retryable: the snapshot is likely
                        // still being written; clients back off and
                        // resend. Hard failures stay 500.
                        Err(e) if e.retryable => (
                            503,
                            Json::Obj(vec![
                                ("error".into(), Json::Str(e.msg)),
                                ("retryable".into(), Json::Bool(true)),
                            ])
                            .to_string(),
                        ),
                        Err(e) => (500, error_json(&e.msg)),
                    };
                    shared.sink.push_all([Completion {
                        conn: token,
                        seq,
                        status,
                        body,
                        enqueued,
                        trace: 0,
                    }]);
                });
            if spawned.is_err() {
                conn.pending -= 1;
                inline_json(conn, 500, &error_json("could not spawn reload thread"));
            }
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/score" | "/admin/reload" | "/admin/version"
            | "/debug/trace",
        ) => {
            inline_json(conn, 405, &error_json("method not allowed"));
        }
        _ => {
            inline_json(conn, 404, &error_json("no such endpoint"));
        }
    }
}

/// Parse every complete pipelined request sitting in the read buffer.
/// Returns `Err(())` when the connection must be dropped on the spot.
fn parse_buffered(conn: &mut Conn, token: u64, shared: &Arc<Shared>) -> Result<(), ()> {
    while conn.close_after.is_none() {
        match http::try_parse_request(&conn.rbuf) {
            Ok(Some((req, consumed))) => {
                conn.rbuf.drain(..consumed);
                let seq = conn.claim_seq();
                shared.metrics.requests_total.inc();
                if !req.keep_alive {
                    conn.close_after = Some(seq);
                }
                dispatch(conn, token, seq, req, shared);
            }
            Ok(None) => break,
            Err(ReadError::Bad { status, reason }) => {
                shared.metrics.bad_requests_total.inc();
                let seq = conn.claim_seq();
                // Malformed framing poisons everything after it on
                // the stream: answer, then close.
                conn.close_after = Some(seq);
                conn.rbuf.clear();
                respond_inline(
                    conn,
                    seq,
                    status,
                    "application/json",
                    &[],
                    error_json(reason).as_bytes(),
                    shared,
                );
                break;
            }
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

/// Non-blocking read into the connection buffer, then parse.
fn read_and_parse(conn: &mut Conn, token: u64, shared: &Arc<Shared>) -> Result<(), ()> {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    parse_buffered(conn, token, shared)
}

/// Write as much of the pending response bytes as the socket accepts.
fn flush(conn: &mut Conn) -> Result<(), ()> {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => return Err(()),
            Ok(n) => {
                conn.wbuf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

/// Post-event bookkeeping for one connection: opportunistic flush,
/// close check, epoll interest reconciliation. Returns `true` when
/// the connection should be closed.
fn settle(conn: &mut Conn, token: u64, epoll: &Epoll, draining: bool) -> bool {
    if conn.wants_write() && flush(conn).is_err() {
        return true;
    }
    if conn.should_close() {
        return true;
    }
    let reads = !(draining || conn.peer_closed || conn.close_after.is_some());
    let want = if reads { EPOLLIN | EPOLLRDHUP } else { 0 }
        | if conn.wants_write() { EPOLLOUT } else { 0 };
    if want != conn.interest {
        if epoll.modify(conn.stream.as_raw_fd(), want, token).is_err() {
            return true;
        }
        conn.interest = want;
    }
    false
}

fn run_event_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let epoll = Epoll::new().expect("epoll_create1");
    epoll
        .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
        .expect("register listener");
    epoll
        .add(shared.sink.wake.read_fd(), EPOLLIN, TOKEN_WAKE)
        .expect("register wake pipe");

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = vec![Event::default(); 1024];
    let mut completions: Vec<Completion> = Vec::new();
    let mut touched: Vec<u64> = Vec::new();
    let mut draining = false;
    let mut drain_deadline = Instant::now();

    loop {
        let n = epoll.wait(&mut events, 100).expect("epoll_wait");
        touched.clear();
        for ev in &events[..n] {
            let (token, ready) = (ev.token(), ev.readiness());
            match token {
                TOKEN_LISTENER => {
                    if draining {
                        continue;
                    }
                    loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let _ = stream.set_nonblocking(true);
                                let _ = stream.set_nodelay(true);
                                let token = next_token;
                                next_token += 1;
                                let mut conn = Conn::new(stream);
                                let interest = EPOLLIN | EPOLLRDHUP;
                                if epoll.add(conn.stream.as_raw_fd(), interest, token).is_err() {
                                    continue; // fd exhausted; drop it
                                }
                                conn.interest = interest;
                                conns.insert(token, conn);
                                shared.metrics.accepted_total.inc();
                                shared.metrics.connections.set(conns.len() as f64);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => break,
                        }
                    }
                }
                TOKEN_WAKE => shared.sink.wake.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut drop_now = ready & (EPOLLERR | EPOLLHUP) != 0;
                    if !drop_now && ready & EPOLLRDHUP != 0 {
                        conn.peer_closed = true;
                    }
                    if !drop_now && !draining && ready & (EPOLLIN | EPOLLRDHUP) != 0 {
                        drop_now = read_and_parse(conn, token, shared).is_err();
                    }
                    if !drop_now && ready & EPOLLOUT != 0 {
                        drop_now = flush(conn).is_err();
                    }
                    if drop_now {
                        let conn = conns.remove(&token).expect("present");
                        let _ = epoll.delete(conn.stream.as_raw_fd());
                        shared.metrics.connections.set(conns.len() as f64);
                    } else {
                        touched.push(token);
                    }
                }
            }
        }

        // Apply completions from replica workers and reload threads.
        // Drained every iteration so a wake race can never strand one.
        shared.sink.drain_into(&mut completions);
        for c in completions.drain(..) {
            // The connection may have died while its job was queued;
            // the completion is then simply dropped.
            let Some(conn) = conns.get_mut(&c.conn) else {
                continue;
            };
            let total = c.enqueued.elapsed();
            shared.metrics.latency.observe(total.as_secs_f64());
            // Completion is the one point where end-to-end latency is
            // known — the tail-sampling keep/drop decision lives here.
            if c.trace != 0 {
                shared
                    .tracer
                    .record(c.trace, Stage::WriteBack, c.body.len() as u64);
                shared.tracer.finish(c.trace, total, c.status >= 500);
            }
            conn.pending -= 1;
            let keep_alive = conn.response_keep_alive(c.seq) && !draining;
            conn.complete(
                c.seq,
                http::render_response(
                    c.status,
                    "application/json",
                    &[],
                    c.body.as_bytes(),
                    keep_alive,
                ),
            );
            shared.metrics.responses_total.inc();
            touched.push(c.conn);
        }

        // Entering drain: deregister the listener, finish what is
        // buffered, and flip every response to `Connection: close`.
        if !draining && shared.stop.load(Ordering::SeqCst) {
            draining = true;
            shared.draining.store(true, Ordering::SeqCst);
            drain_deadline = Instant::now() + shared.cfg.drain_timeout;
            let _ = epoll.delete(listener.as_raw_fd());
            // Requests already buffered still count as accepted work.
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                let conn = conns.get_mut(&token).expect("present");
                if parse_buffered(conn, token, shared).is_err() {
                    let conn = conns.remove(&token).expect("present");
                    let _ = epoll.delete(conn.stream.as_raw_fd());
                } else {
                    touched.push(token);
                }
            }
        }

        // Settle every connection something happened to.
        touched.sort_unstable();
        touched.dedup();
        for &token in &touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if settle(conn, token, &epoll, draining) {
                let conn = conns.remove(&token).expect("present");
                let _ = epoll.delete(conn.stream.as_raw_fd());
                shared.metrics.connections.set(conns.len() as f64);
            }
        }

        if draining {
            let settled = conns.values().all(Conn::is_settled);
            if settled || Instant::now() >= drain_deadline {
                break;
            }
        }
    }

    // Every admitted request is answered (or the deadline hit);
    // closing the queues lets the replica workers exit.
    for r in &shared.replicas {
        r.queue.close();
    }
    shared.metrics.connections.set(0.0);
}
