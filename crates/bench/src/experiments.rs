//! One function per paper table/figure.
//!
//! Each returns a rendered ASCII report (what `repro` prints) plus
//! structured numbers where downstream code (tests, EXPERIMENTS.md
//! tooling) needs them.

use crate::methods::{pge_config, train_method, Method, TrainedMethod};
use crate::scale::Scale;
use pge_core::api::plausibility_parallel;
use pge_core::{train_pge, Detector, ErrorDetector};
use pge_eval::{average_precision, recall_at_precision, Histogram, Scored, Table};
use pge_graph::{Dataset, LabeledTriple, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scored evaluation of one method on one dataset.
#[derive(Clone, Debug)]
pub struct MethodScores {
    pub name: String,
    pub pr_auc: f32,
    /// R@P at the requested precisions, in order.
    pub r_at_p: Vec<f32>,
    pub train_secs: f64,
}

/// Evaluate a detector on a labeled split: PR AUC (positive class =
/// *incorrect*, per the paper) and R@P at each precision.
pub fn evaluate_detector(
    det: &dyn ErrorDetector,
    dataset: &Dataset,
    split: &[LabeledTriple],
    precisions: &[f32],
) -> (f32, Vec<f32>) {
    let triples: Vec<Triple> = split.iter().map(|lt| lt.triple).collect();
    let scores = plausibility_parallel(det, &dataset.graph, &triples, threads());
    let scored: Vec<Scored> = scores
        .iter()
        .zip(split)
        .map(|(&f, lt)| Scored::new(-f, !lt.correct))
        .collect();
    let pr_auc = average_precision(&scored);
    let r_at_p = precisions
        .iter()
        .map(|&p| recall_at_precision(&scored, p))
        .collect();
    (pr_auc, r_at_p)
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

fn eval_method(tm: &TrainedMethod, dataset: &Dataset, precisions: &[f32]) -> MethodScores {
    let (pr_auc, r_at_p) =
        evaluate_detector(tm.detector.as_ref(), dataset, &dataset.test, precisions);
    MethodScores {
        name: tm.method.label().to_string(),
        pr_auc,
        r_at_p,
        train_secs: tm.train_secs,
    }
}

// ---------------------------------------------------------------
// Table 1 — capability matrix (static).
// ---------------------------------------------------------------

/// Render the paper's Table 1 capability matrix.
pub fn table1() -> String {
    let mut t = Table::new(
        "Table 1: Capabilities of different methods",
        &["Methods", "Graph structure", "Textual data", "Noise-aware"],
    );
    for (m, g, x, n) in [
        ("Structure based KG embedding", "yes", "", ""),
        ("Text and KG joint embedding", "yes", "yes", ""),
        ("Noise-aware KG embedding", "yes", "", "yes"),
        ("PGE", "yes", "yes", "yes"),
    ] {
        t.row(&[m.to_string(), g.to_string(), x.to_string(), n.to_string()]);
    }
    t.render()
}

// ---------------------------------------------------------------
// Table 2 — dataset statistics.
// ---------------------------------------------------------------

/// Render dataset statistics in the shape of the paper's Table 2.
pub fn table2(scale: &Scale) -> String {
    let mut t = Table::new(
        "Table 2: Data statistics",
        &[
            "Dataset",
            "#Relations",
            "#Entities",
            "#Products",
            "#Values",
            "#Train",
            "#Valid",
            "#Test",
        ],
    );
    let mut extra = String::new();
    for (name, d) in [
        ("Amazon-like", scale.amazon()),
        ("FB15K-237-like", scale.fb()),
    ] {
        let s = d.stats();
        t.row(&[
            name.to_string(),
            s.relations.to_string(),
            s.entities.to_string(),
            s.products.to_string(),
            s.values.to_string(),
            s.train.to_string(),
            s.valid.to_string(),
            s.test.to_string(),
        ]);
        extra.push_str(&format!(
            "
{name} structure:
{}",
            pge_graph::graph_stats(&d.graph).render()
        ));
    }
    let mut out = t.render();
    out.push_str(&extra);
    out
}

// ---------------------------------------------------------------
// Tables 3/4 — transductive / inductive error detection.
// ---------------------------------------------------------------

/// All Table-3 results for both datasets, plus the Union row.
pub struct Table3Results {
    pub amazon: Vec<MethodScores>,
    pub fb: Vec<MethodScores>,
    pub report: String,
}

fn run_roster(
    dataset: &Dataset,
    roster: &[Method],
    scale: &Scale,
    precisions: &[f32],
) -> Vec<MethodScores> {
    let mut trained: Vec<TrainedMethod> = Vec::new();
    let mut out: Vec<MethodScores> = Vec::new();
    for &m in roster {
        let tm = train_method(dataset, m, scale);
        out.push(eval_method(&tm, dataset, precisions));
        trained.push(tm);
    }
    // Union of Transformer and PGE(CNN)-RotatE.
    let transformer = trained
        .iter()
        .find(|t| t.method == Method::Transformer)
        .map(|t| t.detector.as_ref());
    let pge = trained
        .iter()
        .find(|t| t.method == Method::PgeCnnRotatE)
        .map(|t| t.detector.as_ref());
    if let (Some(a), Some(b)) = (transformer, pge) {
        let u = pge_baselines::Union::new(a, b);
        let (pr_auc, r_at_p) = evaluate_detector(&u, dataset, &dataset.test, precisions);
        out.push(MethodScores {
            name: "Union of Transformer and PGE(CNN)-RotatE".into(),
            pr_auc,
            r_at_p,
            train_secs: 0.0,
        });
    }
    out
}

fn roster_table(title: &str, precisions: &[f32], with_time: bool, rows: &[MethodScores]) -> Table {
    let mut header: Vec<String> = vec!["Method".into(), "PR AUC".into()];
    header.extend(precisions.iter().map(|p| format!("R@P={p}")));
    if with_time {
        header.push("Time (s)".into());
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);
    for r in rows {
        let mut cells = vec![r.name.clone(), format!("{:.3}", r.pr_auc)];
        cells.extend(r.r_at_p.iter().map(|x| format!("{x:.3}")));
        if with_time {
            cells.push(if r.train_secs > 0.0 {
                format!("{:.1}", r.train_secs)
            } else {
                "-".into()
            });
        }
        t.row(&cells);
    }
    t
}

/// One half of Table 3 (used by the `table3a`/`table3b` fast paths).
pub fn table3_single(scale: &Scale, catalog: bool) -> (Vec<MethodScores>, String) {
    let precisions = [0.7f32, 0.8, 0.9];
    let (data, title) = if catalog {
        (
            scale.amazon(),
            "Table 3a: Transductive error detection — Amazon-like catalog",
        )
    } else {
        (
            scale.fb(),
            "Table 3b: Transductive error detection — FB15K-237-like KG",
        )
    };
    let rows = run_roster(&data, &Method::table3(catalog), scale, &precisions);
    let report = roster_table(title, &precisions, true, &rows).render();
    (rows, report)
}

/// Regenerate Table 3 (transductive error detection on both datasets).
pub fn table3(scale: &Scale) -> Table3Results {
    let precisions = [0.7f32, 0.8, 0.9];
    let amazon_data = scale.amazon();
    let fb_data = scale.fb();
    let amazon = run_roster(&amazon_data, &Method::table3(true), scale, &precisions);
    let fb = run_roster(&fb_data, &Method::table3(false), scale, &precisions);
    let mut report = roster_table(
        "Table 3a: Transductive error detection — Amazon-like catalog",
        &precisions,
        true,
        &amazon,
    )
    .render();
    report.push('\n');
    report.push_str(
        &roster_table(
            "Table 3b: Transductive error detection — FB15K-237-like KG",
            &precisions,
            true,
            &fb,
        )
        .render(),
    );
    Table3Results { amazon, fb, report }
}

/// Table-4 results (inductive) for both datasets.
pub struct Table4Results {
    pub amazon: Vec<MethodScores>,
    pub fb: Vec<MethodScores>,
    pub report: String,
}

/// Regenerate Table 4 (inductive error detection): the catalog variant
/// includes unseen-value errors, and training excludes every triple
/// sharing an entity with the test set (§4.4).
pub fn table4(scale: &Scale) -> Table4Results {
    let precisions = [0.6f32, 0.7, 0.8];
    let amazon_data = scale.amazon_with_unseen().to_inductive();
    let fb_data = scale.fb_inductive().to_inductive();
    let amazon = run_roster(&amazon_data, &Method::table4(), scale, &precisions);
    let fb = run_roster(&fb_data, &Method::table4(), scale, &precisions);
    let mut report = roster_table(
        "Table 4a: Inductive error detection — Amazon-like catalog",
        &precisions,
        false,
        &amazon,
    )
    .render();
    report.push('\n');
    report.push_str(
        &roster_table(
            "Table 4b: Inductive error detection — FB15K-237-like KG",
            &precisions,
            false,
            &fb,
        )
        .render(),
    );
    Table4Results { amazon, fb, report }
}

// ---------------------------------------------------------------
// Figure 2 — headline comparison bars.
// ---------------------------------------------------------------

/// Regenerate Fig. 2 from precomputed Table-3 Amazon rows (PR AUC and
/// R@P bars for RotatE vs Transformer vs PGE vs Union).
pub fn fig2(amazon_rows: &[MethodScores]) -> String {
    let wanted = [
        "RotatE",
        "Transformer",
        "PGE(CNN)-RotatE",
        "Union of Transformer and PGE(CNN)-RotatE",
    ];
    let mut out =
        String::from("== Figure 2: PGE vs RotatE vs Transformer (Amazon-like, transductive) ==\n");
    for metric_ix in 0..4usize {
        let metric = match metric_ix {
            0 => "PR AUC ",
            1 => "R@P=0.7",
            2 => "R@P=0.8",
            _ => "R@P=0.9",
        };
        out.push_str(&format!("{metric}\n"));
        for name in wanted {
            if let Some(r) = amazon_rows.iter().find(|r| r.name == name) {
                let v = if metric_ix == 0 {
                    r.pr_auc
                } else {
                    r.r_at_p[metric_ix - 1]
                };
                let bar = "#".repeat((v * 40.0).round().max(0.0) as usize);
                out.push_str(&format!("  {name:<42} {v:.3} {bar}\n"));
            }
        }
    }
    out
}

// ---------------------------------------------------------------
// Figure 5 — confidence-score distributions.
// ---------------------------------------------------------------

/// Regenerate Fig. 5: confidence-score histograms under (a)
/// labeled-triple injection and (b) artificial-noise injection.
pub fn fig5(scale: &Scale) -> String {
    let base = scale.amazon();
    let mut out =
        String::from("== Figure 5: confidence-score distributions (PGE(CNN)-RotatE) ==\n");

    // (a) Inject human-labeled-style correct + incorrect triples into
    // training and learn confidences for them.
    {
        let mut d = base.clone();
        let offset = d.train.len();
        let mut labels = Vec::new();
        for lt in d.test.iter() {
            d.train.push(lt.triple);
            d.train_clean.push(lt.correct);
            labels.push(lt.correct);
        }
        // Human-labeled-style noise is subtle (semantic swaps), so the
        // confidence mechanism gets a longer schedule and a lower
        // markdown price than the defaults (the paper trains its full
        // catalog for ~40 hours; our rescaled run needs the extra
        // pressure to surface the same contrast).
        let mut cfg = pge_config(Method::PgeCnnRotatE, scale);
        cfg.epochs = scale.epochs * 2;
        cfg.alpha = 0.8;
        cfg.confidence_lr = 0.06;
        let trained = train_pge(&d, &cfg);
        let mut h_good = Histogram::unit(10);
        let mut h_bad = Histogram::unit(10);
        for (j, &correct) in labels.iter().enumerate() {
            let c = trained.confidence.get(offset + j);
            if correct {
                h_good.add(c);
            } else {
                h_bad.add(c);
            }
        }
        out.push_str("(a) injected labeled triples — correct:\n");
        out.push_str(&h_good.render(30));
        out.push_str("(a) injected labeled triples — incorrect:\n");
        out.push_str(&h_bad.render(30));
        out.push_str(&format!(
            "    fraction of correct marked down (C<0.5): {:.3}\n",
            h_good.fraction_below(0.5)
        ));
        out.push_str(&format!(
            "    fraction of incorrect marked down (C<0.5): {:.3}\n",
            h_bad.fraction_below(0.5)
        ));
    }

    // (b) Append artificial value-substitution noises.
    {
        let mut d = base.clone();
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xf16);
        let extra = (d.train.len() / 10).max(10);
        let (train, clean) = pge_graph::noise::append_noise(&d.graph, &d.train, extra, &mut rng);
        d.train = train;
        d.train_clean = clean;
        let trained = train_pge(&d, &pge_config(Method::PgeCnnRotatE, scale));
        let mut h_orig = Histogram::unit(10);
        let mut h_noise = Histogram::unit(10);
        for (i, &is_clean) in d.train_clean.iter().enumerate() {
            let c = trained.confidence.get(i);
            if is_clean {
                h_orig.add(c);
            } else {
                h_noise.add(c);
            }
        }
        out.push_str("(b) artificial noises — original triples:\n");
        out.push_str(&h_orig.render(30));
        out.push_str("(b) artificial noises — injected noises:\n");
        out.push_str(&h_noise.render(30));
        out.push_str(&format!(
            "    original triples marked down (C<0.5): {:.3} (paper: ~1%, real noise)\n",
            h_orig.fraction_below(0.5)
        ));
        out.push_str(&format!(
            "    injected noises marked down (C<0.5): {:.3}\n",
            h_noise.fraction_below(0.5)
        ));
    }
    out
}

// ---------------------------------------------------------------
// Figure 6 — noise-aware ablation.
// ---------------------------------------------------------------

/// Fig. 6 numbers: (with, without) noise-aware mechanism.
pub struct Fig6Results {
    pub with_na: MethodScores,
    pub without_na: MethodScores,
    pub report: String,
}

/// Regenerate Fig. 6: PGE(CNN)-RotatE with vs without the noise-aware
/// mechanism on a noisy catalog.
pub fn fig6(scale: &Scale) -> Fig6Results {
    // Noisier training split makes the mechanism's value visible.
    let mut d = scale.amazon();
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xf6);
    let (train, clean) = pge_graph::inject_noise(&d.graph, &d.train, 0.15, &mut rng);
    d.train = train;
    d.train_clean = clean;

    let precisions = [0.7f32, 0.8, 0.9];
    let with_tm = train_method(&d, Method::PgeCnnRotatE, scale);
    let with_na = eval_method(&with_tm, &d, &precisions);
    let wo_tm = train_method(&d, Method::PgeCnnRotatENoNa, scale);
    let without_na = eval_method(&wo_tm, &d, &precisions);

    let mut t = roster_table(
        "Figure 6: PGE(CNN)-RotatE with vs. without noise-aware mechanism (noisy catalog)",
        &precisions,
        false,
        &[with_na.clone(), without_na.clone()],
    );
    let _ = &mut t;
    Fig6Results {
        report: t.render(),
        with_na,
        without_na,
    }
}

// ---------------------------------------------------------------
// Table 5 — training-time scalability.
// ---------------------------------------------------------------

/// Regenerate Table 5: training time vs. sample ratio for RotatE,
/// PGE(CNN)-RotatE and PGE(BERT)-RotatE. Runs projected to exceed
/// `cap_secs` are reported as `> cap` — the analogue of the paper's
/// "> 3 day" entries.
pub fn table5(scale: &Scale, cap_secs: f64) -> String {
    let ratios = [0.1, 0.3, 0.5, 0.7, 1.0];
    let full = scale.amazon();
    let mut t = {
        let mut header: Vec<String> = vec!["Model".into()];
        header.extend(ratios.iter().map(|r| format!("{r}")));
        let refs: Vec<&str> = header.iter().map(String::as_str).collect();
        Table::new(
            "Table 5: training time (s) vs fraction of sampled triples",
            &refs,
        )
    };
    for method in [Method::RotatE, Method::PgeCnnRotatE, Method::PgeBertRotatE] {
        let mut cells = vec![method.label().to_string()];
        let mut exceeded = false;
        for &ratio in &ratios {
            if exceeded {
                // Training time grows with the sample ratio, so once a
                // smaller ratio blew the cap, larger ones will too —
                // exactly how the paper reports "> 3 day".
                cells.push(format!("> {cap_secs:.0}"));
                continue;
            }
            let d = full.sample_train(ratio);
            let cell = timed_or_capped(&d, method, scale, cap_secs);
            exceeded = cell.starts_with('>');
            cells.push(cell);
        }
        t.row(&cells);
    }
    t.render()
}

/// Train fully if a one-epoch probe projects under `cap_secs`,
/// otherwise report `> cap` (the paper's "> 3 day" analogue).
fn timed_or_capped(d: &Dataset, method: Method, scale: &Scale, cap_secs: f64) -> String {
    let probe_scale = Scale {
        epochs: 1,
        nlp_epochs: 1,
        ..*scale
    };
    let probe = train_method(d, method, &probe_scale);
    // KGE methods run `epochs * 2` inside train_method.
    let epoch_mult = match method {
        Method::RotatE => (scale.epochs * 2) as f64,
        _ => scale.epochs as f64,
    };
    let projected = probe.train_secs * epoch_mult;
    if projected > cap_secs {
        return format!("> {cap_secs:.0}");
    }
    let tm = train_method(d, method, scale);
    format!("{:.1}", tm.train_secs)
}

// ---------------------------------------------------------------
// Table 6 — identified-error case study.
// ---------------------------------------------------------------

/// Regenerate Table 6: the top-ranked detected errors with their
/// ground truth.
pub fn table6(scale: &Scale, top_k: usize) -> String {
    let d = scale.amazon();
    let trained = train_pge(&d, &pge_config(Method::PgeCnnRotatE, scale));
    let detector = Detector::fit(&trained.model, &d.graph, &d.valid);
    let triples: Vec<Triple> = d.test.iter().map(|lt| lt.triple).collect();
    let order = detector.rank_errors(&d.graph, &triples);

    let mut t = Table::new(
        "Table 6: top identified errors on the Amazon-like catalog (PGE(CNN)-RotatE)",
        &["Product", "Attribute", "Attribute Value", "Ground truth"],
    );
    for &ix in order.iter().take(top_k) {
        let lt = &d.test[ix];
        let mut title = d.graph.title(lt.triple.product).to_string();
        if title.len() > 48 {
            title.truncate(45);
            title.push_str("...");
        }
        t.row(&[
            title,
            d.graph.attr_name(lt.triple.attr).to_string(),
            d.graph.value_text(lt.triple.value).to_string(),
            if lt.correct { "correct" } else { "INCORRECT" }.to_string(),
        ]);
    }
    // Precision of the listing.
    let hits = order
        .iter()
        .take(top_k)
        .filter(|&&ix| !d.test[ix].correct)
        .count();
    let mut out = t.render();
    out.push_str(&format!(
        "precision of top-{top_k} detections: {:.2}\n",
        hits as f32 / top_k.min(order.len()).max(1) as f32
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_scale() -> Scale {
        Scale {
            products: 120,
            labeled: 50,
            fb_triples: 400,
            epochs: 2,
            nlp_epochs: 1,
            seed: 5,
        }
    }

    #[test]
    fn table1_static_content() {
        let s = table1();
        assert!(s.contains("PGE"));
        assert!(s.contains("Noise-aware"));
    }

    #[test]
    fn table2_contains_both_datasets() {
        let s = table2(&micro_scale());
        assert!(s.contains("Amazon-like"));
        assert!(s.contains("FB15K-237-like"));
    }

    #[test]
    fn evaluate_detector_perfect_and_inverted() {
        struct Oracle;
        impl ErrorDetector for Oracle {
            fn name(&self) -> String {
                "oracle".into()
            }
            fn plausibility(&self, g: &pge_graph::ProductGraph, t: &Triple) -> f32 {
                // Plausible iff value text does not contain "bad".
                if g.value_text(t.value).contains("bad") {
                    -1.0
                } else {
                    1.0
                }
            }
        }
        let mut g = pge_graph::ProductGraph::new();
        let good = g.add_fact("p0", "a", "fine");
        let bad = g.add_fact("p1", "a", "bad value");
        let test = vec![
            LabeledTriple {
                triple: good,
                correct: true,
            },
            LabeledTriple {
                triple: bad,
                correct: false,
            },
        ];
        let d = Dataset::new(g, vec![], vec![], test);
        let (auc, r) = evaluate_detector(&Oracle, &d, &d.test, &[0.9]);
        assert!((auc - 1.0).abs() < 1e-6);
        assert!((r[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fig2_renders_bars() {
        let rows = vec![
            MethodScores {
                name: "RotatE".into(),
                pr_auc: 0.6,
                r_at_p: vec![0.4, 0.3, 0.2],
                train_secs: 1.0,
            },
            MethodScores {
                name: "PGE(CNN)-RotatE".into(),
                pr_auc: 0.75,
                r_at_p: vec![0.7, 0.5, 0.3],
                train_secs: 1.0,
            },
        ];
        let s = fig2(&rows);
        assert!(s.contains("PGE(CNN)-RotatE"));
        assert!(s.contains("#"));
    }

    #[test]
    fn table6_lists_detections() {
        let s = table6(&micro_scale(), 5);
        assert!(s.contains("Attribute Value"));
        assert!(s.contains("precision of top-5"));
    }
}
