//! Ablation studies over PGE's design choices.
//!
//! The paper ablates the noise-aware mechanism (Fig. 6) and contrasts
//! scoring functions (PGE-TransE vs PGE-RotatE in Tables 3/4) and text
//! encoders (CNN vs BERT in Table 5). This module widens that grid to
//! every load-bearing choice in DESIGN.md: scoring function, negative
//! sampling mode, word2vec initialization, CNN filter widths, and the
//! α/β knobs of the confidence objective.

use crate::experiments::evaluate_detector;
use crate::scale::Scale;
use pge_core::{train_pge, PgeConfig, ScoreKind};
use pge_eval::Table;
use pge_graph::{Dataset, SamplingMode};

fn base_config(scale: &Scale) -> PgeConfig {
    PgeConfig {
        epochs: scale.epochs,
        dim: 48,
        seed: scale.seed ^ 0xab1,
        ..PgeConfig::default()
    }
}

fn run(d: &Dataset, cfg: &PgeConfig, label: &str, t: &mut Table) {
    let out = train_pge(d, cfg);
    let (pr, r) = evaluate_detector(&out.model, d, &d.test, &[0.7, 0.8, 0.9]);
    let mut cells = vec![label.to_string(), format!("{pr:.3}")];
    cells.extend(r.iter().map(|x| format!("{x:.3}")));
    cells.push(format!("{:.1}", out.train_secs));
    t.row(&cells);
}

/// Run the full ablation grid on the catalog; returns the rendered
/// report.
pub fn ablations(scale: &Scale) -> String {
    let d = scale.amazon();
    let header = [
        "Variant", "PR AUC", "R@P=0.7", "R@P=0.8", "R@P=0.9", "Time (s)",
    ];
    let mut out = String::new();

    // 1. Scoring function.
    let mut t = Table::new("Ablation: scoring function f_a(t,v)", &header);
    for score in [
        ScoreKind::RotatE,
        ScoreKind::TransE,
        ScoreKind::DistMult,
        ScoreKind::ComplEx,
    ] {
        let cfg = PgeConfig {
            score,
            ..base_config(scale)
        };
        run(&d, &cfg, score.name(), &mut t);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 2. Negative sampling mode (Eq. 3's N(t,a,v)).
    let mut t = Table::new("Ablation: negative sampling", &header);
    for (mode, label) in [
        (SamplingMode::GlobalUniform, "global uniform (paper)"),
        (SamplingMode::PerAttribute, "per-attribute (hard)"),
    ] {
        let cfg = PgeConfig {
            sampling: mode,
            ..base_config(scale)
        };
        run(&d, &cfg, label, &mut t);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 3. word2vec initialization (§3.1).
    let mut t = Table::new("Ablation: word-embedding initialization", &header);
    for (epochs, label) in [(2usize, "word2vec init (paper)"), (0, "random init")] {
        let cfg = PgeConfig {
            word2vec_epochs: epochs,
            ..base_config(scale)
        };
        run(&d, &cfg, label, &mut t);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 4. CNN filter widths (the paper sweeps {1,2,3,4}).
    let mut t = Table::new("Ablation: CNN filter widths", &header);
    for widths in [vec![1], vec![1, 2], vec![1, 2, 3], vec![2, 3, 4]] {
        let label = format!("widths {widths:?}");
        let cfg = PgeConfig {
            widths: widths.clone(),
            ..base_config(scale)
        };
        run(&d, &cfg, &label, &mut t);
    }
    out.push_str(&t.render());
    out.push('\n');

    // 5. Confidence-objective knobs α (markdown price) and β
    // (polarization), on a noisier catalog where they matter.
    let noisy = {
        let mut n = d.clone();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(scale.seed ^ 0xf00d);
        let (train, clean) = pge_graph::inject_noise(&n.graph, &n.train, 0.15, &mut rng);
        n.train = train;
        n.train_clean = clean;
        n
    };
    let mut t = Table::new("Ablation: noise-aware knobs (15% training noise)", &header);
    {
        let cfg = PgeConfig {
            noise_aware: false,
            ..base_config(scale)
        };
        run(&noisy, &cfg, "no noise-aware", &mut t);
    }
    for (alpha, beta) in [(0.6f32, 0.05f32), (1.2, 0.05), (2.4, 0.05), (1.2, 0.3)] {
        let cfg = PgeConfig {
            alpha,
            beta,
            ..base_config(scale)
        };
        run(&noisy, &cfg, &format!("alpha={alpha} beta={beta}"), &mut t);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains 13 model variants; run with --ignored or via `repro ablations`"]
    fn ablations_render_at_micro_scale() {
        let scale = Scale {
            products: 100,
            labeled: 40,
            fb_triples: 300,
            epochs: 1,
            nlp_epochs: 1,
            seed: 2,
        };
        let report = ablations(&scale);
        assert!(report.contains("scoring function"));
        assert!(report.contains("negative sampling"));
        assert!(report.contains("word2vec init (paper)"));
        assert!(report.contains("widths [1, 2, 3]"));
        assert!(report.contains("no noise-aware"));
    }
}
