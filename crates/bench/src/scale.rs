//! Experiment scaling.
//!
//! The paper trains on 5M triples for tens of hours; this harness
//! rescales everything to laptop budgets while preserving relative
//! shapes. `Scale::default()` drives the full `repro` run; `tiny()`
//! keeps CI fast.

use pge_datagen::{generate_catalog, generate_fbkg, CatalogConfig, FbkgConfig};
use pge_graph::Dataset;

/// Global knob for dataset sizes and training budgets.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Catalog products (the paper: 750,000).
    pub products: usize,
    /// Labeled catalog triples (the paper: 12,706 across valid+test).
    pub labeled: usize,
    /// FB-like true triples (the real FB15K-237 train: 272,115; the
    /// paper's subsample: 67,894).
    pub fb_triples: usize,
    /// Embedding-model epochs.
    pub epochs: usize,
    /// NLP-classifier epochs.
    pub nlp_epochs: usize,
    /// Base RNG seed for generators.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            products: 1500,
            labeled: 500,
            fb_triples: 9000,
            epochs: 12,
            nlp_epochs: 8,
            seed: 42,
        }
    }
}

impl Scale {
    /// CI-sized scale: every experiment in seconds.
    pub fn tiny() -> Self {
        Scale {
            products: 250,
            labeled: 90,
            fb_triples: 1500,
            epochs: 5,
            nlp_epochs: 4,
            seed: 42,
        }
    }

    /// Multiply dataset sizes by `f` (used by `--scale` and Table 5).
    pub fn scaled(&self, f: f64) -> Self {
        Scale {
            products: ((self.products as f64 * f) as usize).max(50),
            labeled: ((self.labeled as f64 * f) as usize).max(20),
            fb_triples: ((self.fb_triples as f64 * f) as usize).max(300),
            ..*self
        }
    }

    /// FB entity count per type scaled so triples-per-entity stays
    /// roughly constant (≈ FB15K-237's density regime).
    fn fb_entities_per_type(&self) -> usize {
        (self.fb_triples / 100).clamp(20, 200)
    }

    /// The Amazon-stand-in catalog dataset (transductive).
    pub fn amazon(&self) -> Dataset {
        generate_catalog(&CatalogConfig {
            products: self.products,
            labeled: self.labeled,
            seed: self.seed,
            ..CatalogConfig::default()
        })
    }

    /// Catalog variant whose labeled errors include unseen-value
    /// (spurious-suffix) corruptions — used to build the inductive
    /// split.
    pub fn amazon_with_unseen(&self) -> Dataset {
        generate_catalog(&CatalogConfig {
            products: self.products,
            labeled: self.labeled,
            allow_unseen_values: true,
            seed: self.seed,
            ..CatalogConfig::default()
        })
    }

    /// The FB15K-237 stand-in (10% training noise, as in §4.1).
    pub fn fb(&self) -> Dataset {
        generate_fbkg(&FbkgConfig {
            triples: self.fb_triples,
            entities_per_type: self.fb_entities_per_type(),
            labeled: (self.fb_triples / 15).max(100),
            seed: self.seed.wrapping_add(1),
            ..FbkgConfig::default()
        })
    }

    /// FB variant prepared for the inductive split: more entities and
    /// a smaller labeled set, so removing every training triple that
    /// shares an entity with the test set (§4.4) still leaves a
    /// trainable graph. (The real FB15K-237 has 14k entities; a test
    /// split touches a small fraction of them.)
    pub fn fb_inductive(&self) -> Dataset {
        generate_fbkg(&FbkgConfig {
            triples: self.fb_triples,
            entities_per_type: (self.fb_entities_per_type() * 2).min(200),
            labeled: (self.fb_triples / 40).max(60),
            seed: self.seed.wrapping_add(2),
            ..FbkgConfig::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_generates_quickly_and_nonempty() {
        let s = Scale::tiny();
        let a = s.amazon();
        assert!(a.train.len() > 500);
        assert!(!a.test.is_empty() && !a.valid.is_empty());
        let f = s.fb();
        assert!(f.train.len() > 500);
        assert!(!f.test.is_empty());
    }

    #[test]
    fn scaled_shrinks_datasets() {
        let s = Scale::tiny();
        let half = s.scaled(0.5);
        assert!(half.products < s.products);
        assert!(half.fb_triples < s.fb_triples);
        // Floors keep datasets viable.
        let micro = s.scaled(1e-9);
        assert!(micro.products >= 50);
    }

    #[test]
    fn datasets_deterministic() {
        let s = Scale::tiny();
        assert_eq!(s.amazon().train, s.amazon().train);
        assert_eq!(s.fb().train, s.fb().train);
    }
}
