//! `train_probe` — data-parallel training throughput probe.
//!
//! Trains the same PGE(CNN) model on a synthetic catalog at several
//! worker-thread counts, verifies the runs are bit-identical (the
//! gradient-lane reduction guarantee, see DESIGN.md), and writes
//! `BENCH_train.json` with per-run epoch throughput and the speedup
//! of each thread count over the serial run.
//!
//! ```text
//! train_probe [--products N] [--epochs N] [--out FILE]
//! ```
//!
//! Numbers are reported against `host_cpus`: on a single-core host
//! the multi-threaded runs cannot beat serial and the probe says so
//! honestly rather than fabricating a speedup.

use pge_core::{resolve_threads, train_pge, PgeConfig};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_graph::Triple;
use pge_serve::json::Json;

struct Run {
    threads: usize,
    elapsed_sec: f64,
    triples_per_sec: f64,
    speedup_vs_serial: f64,
    final_loss: f64,
    bit_identical_to_serial: bool,
}

impl Run {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threads".into(), Json::Num(self.threads as f64)),
            ("elapsed_sec".into(), Json::Num(self.elapsed_sec)),
            ("triples_per_sec".into(), Json::Num(self.triples_per_sec)),
            (
                "speedup_vs_serial".into(),
                Json::Num(self.speedup_vs_serial),
            ),
            ("final_loss".into(), Json::Num(self.final_loss)),
            (
                "bit_identical_to_serial".into(),
                Json::Bool(self.bit_identical_to_serial),
            ),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let products = flag("--products", 300);
    let epochs = flag("--epochs", 3);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_train.json".to_string());

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let data = generate_catalog(&CatalogConfig {
        products,
        labeled: products / 3,
        seed: 11,
        ..CatalogConfig::tiny()
    });
    let probe_triples: Vec<Triple> = data.test.iter().map(|lt| lt.triple).collect();

    let mut counts = vec![1usize, 2, 4, resolve_threads(0)];
    counts.sort_unstable();
    counts.dedup();

    eprintln!(
        "training {} triples x {epochs} epochs at threads {counts:?} (host has {host_cpus} cpu(s))",
        data.train.len()
    );
    let mut runs: Vec<Run> = Vec::new();
    let mut serial_scores: Vec<f32> = Vec::new();
    let mut serial_rate = 0.0;
    for &threads in &counts {
        let trained = train_pge(
            &data,
            &PgeConfig {
                epochs,
                threads,
                ..PgeConfig::default()
            },
        );
        let scores: Vec<f32> = probe_triples
            .iter()
            .map(|t| trained.model.score_triple(t))
            .collect();
        let rate = (epochs * data.train.len()) as f64 / trained.train_secs;
        if threads == 1 {
            serial_scores = scores.clone();
            serial_rate = rate;
        }
        let identical = scores == serial_scores;
        assert!(
            identical,
            "threads={threads} diverged from the serial run — determinism broken"
        );
        eprintln!(
            "threads {threads}: {:.1}s, {rate:.0} triples/s, {:.2}x vs serial",
            trained.train_secs,
            rate / serial_rate
        );
        runs.push(Run {
            threads,
            elapsed_sec: trained.train_secs,
            triples_per_sec: rate,
            speedup_vs_serial: rate / serial_rate,
            final_loss: trained.epoch_losses.last().copied().unwrap_or(0.0) as f64,
            bit_identical_to_serial: identical,
        });
    }

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("train_probe".into())),
        (
            "manifest".into(),
            Json::Obj(vec![
                (
                    "git_rev".into(),
                    pge_obs::git_rev().map_or(Json::Null, Json::Str),
                ),
                ("ts_ms".into(), Json::Num(pge_obs::unix_time_ms() as f64)),
                (
                    "version".into(),
                    Json::Str(env!("CARGO_PKG_VERSION").into()),
                ),
            ]),
        ),
        ("host_cpus".into(), Json::Num(host_cpus as f64)),
        ("products".into(), Json::Num(products as f64)),
        ("train_triples".into(), Json::Num(data.train.len() as f64)),
        ("epochs".into(), Json::Num(epochs as f64)),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(Run::to_json).collect()),
        ),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    println!("{out}");
}
