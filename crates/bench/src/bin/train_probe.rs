//! `train_probe` — data-parallel training throughput probe.
//!
//! Trains the same PGE(CNN) model on a synthetic catalog at several
//! worker-thread counts, verifies the runs are bit-identical (the
//! gradient-lane reduction guarantee, see DESIGN.md), and writes
//! `BENCH_train.json` with per-run epoch throughput and the speedup
//! of each thread count over the serial run.
//!
//! ```text
//! train_probe [--products N] [--epochs N] [--out FILE]
//! ```
//!
//! Numbers are reported against `host_cpus`: on a single-core host
//! the multi-threaded runs cannot beat serial and the probe says so
//! honestly rather than fabricating a speedup.
//!
//! The probe also measures epoch-boundary checkpointing: the
//! wall-clock overhead of writing `trainer.ckpt` every epoch, the
//! checkpoint size, and a kill-at-mid-run + resume whose final model
//! must be byte-identical to the uninterrupted serial run.

use pge_core::{
    resolve_threads, save_model_binary, train_pge, train_pge_resumable, CheckpointOptions,
    PgeConfig,
};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_graph::Triple;
use pge_serve::json::Json;

struct Run {
    threads: usize,
    elapsed_sec: f64,
    triples_per_sec: f64,
    speedup_vs_serial: f64,
    final_loss: f64,
    bit_identical_to_serial: bool,
}

impl Run {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threads".into(), Json::Num(self.threads as f64)),
            ("elapsed_sec".into(), Json::Num(self.elapsed_sec)),
            ("triples_per_sec".into(), Json::Num(self.triples_per_sec)),
            (
                "speedup_vs_serial".into(),
                Json::Num(self.speedup_vs_serial),
            ),
            ("final_loss".into(), Json::Num(self.final_loss)),
            (
                "bit_identical_to_serial".into(),
                Json::Bool(self.bit_identical_to_serial),
            ),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let products = flag("--products", 300);
    let epochs = flag("--epochs", 3);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_train.json".to_string());

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let data = generate_catalog(&CatalogConfig {
        products,
        labeled: products / 3,
        seed: 11,
        ..CatalogConfig::tiny()
    });
    let probe_triples: Vec<Triple> = data.test.iter().map(|lt| lt.triple).collect();

    let mut counts = vec![1usize, 2, 4, resolve_threads(0)];
    counts.sort_unstable();
    counts.dedup();

    eprintln!(
        "training {} triples x {epochs} epochs at threads {counts:?} (host has {host_cpus} cpu(s))",
        data.train.len()
    );
    let mut runs: Vec<Run> = Vec::new();
    let mut serial_scores: Vec<f32> = Vec::new();
    let mut serial_rate = 0.0;
    let mut serial_secs = 0.0;
    let mut serial_snapshot: Vec<u8> = Vec::new();
    for &threads in &counts {
        let trained = train_pge(
            &data,
            &PgeConfig {
                epochs,
                threads,
                ..PgeConfig::default()
            },
        );
        let scores: Vec<f32> = probe_triples
            .iter()
            .map(|t| trained.model.score_triple(t))
            .collect();
        let rate = (epochs * data.train.len()) as f64 / trained.train_secs;
        if threads == 1 {
            serial_scores = scores.clone();
            serial_rate = rate;
            serial_secs = trained.train_secs;
            serial_snapshot = save_model_binary(&trained.model).expect("CNN models persist");
        }
        let identical = scores == serial_scores;
        assert!(
            identical,
            "threads={threads} diverged from the serial run — determinism broken"
        );
        eprintln!(
            "threads {threads}: {:.1}s, {rate:.0} triples/s, {:.2}x vs serial",
            trained.train_secs,
            rate / serial_rate
        );
        runs.push(Run {
            threads,
            elapsed_sec: trained.train_secs,
            triples_per_sec: rate,
            speedup_vs_serial: rate / serial_rate,
            final_loss: trained.epoch_losses.last().copied().unwrap_or(0.0) as f64,
            bit_identical_to_serial: identical,
        });
    }

    // Checkpointing probe: overhead of the per-epoch trainer.ckpt
    // write, checkpoint size, and kill+resume bit-identity against the
    // uninterrupted serial snapshot captured above.
    let ckpt_dir = std::env::temp_dir().join(format!("pge-train-probe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let serial_cfg = PgeConfig {
        epochs,
        threads: 1,
        ..PgeConfig::default()
    };
    let checkpointed = train_pge_resumable(
        &data,
        &serial_cfg,
        None,
        Some(&CheckpointOptions::new(&ckpt_dir)),
    )
    .expect("checkpointed training");
    let ckpt_bytes =
        std::fs::metadata(ckpt_dir.join(pge_core::CHECKPOINT_FILE)).map_or(0, |m| m.len());
    let ckpt_overhead = if serial_secs > 0.0 {
        checkpointed.train_secs / serial_secs - 1.0
    } else {
        0.0
    };
    assert_eq!(
        save_model_binary(&checkpointed.model).expect("CNN models persist"),
        serial_snapshot,
        "checkpointing changed the trained model"
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut kill = CheckpointOptions::new(&ckpt_dir);
    kill.stop_after = Some((epochs / 2).max(1));
    train_pge_resumable(&data, &serial_cfg, None, Some(&kill)).expect("killed training");
    let resumed = train_pge_resumable(
        &data,
        &serial_cfg,
        None,
        Some(&CheckpointOptions::resume(&ckpt_dir)),
    )
    .expect("resumed training");
    let resume_identical =
        save_model_binary(&resumed.model).expect("CNN models persist") == serial_snapshot;
    assert!(
        resume_identical,
        "kill at epoch {:?} + resume diverged from the uninterrupted run",
        kill.stop_after
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    eprintln!(
        "checkpointing: {ckpt_bytes} B/epoch, {:.1}% overhead, kill+resume bit-identical",
        ckpt_overhead * 100.0
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("train_probe".into())),
        (
            "manifest".into(),
            Json::Obj(vec![
                (
                    "git_rev".into(),
                    pge_obs::git_rev().map_or(Json::Null, Json::Str),
                ),
                ("ts_ms".into(), Json::Num(pge_obs::unix_time_ms() as f64)),
                (
                    "version".into(),
                    Json::Str(env!("CARGO_PKG_VERSION").into()),
                ),
            ]),
        ),
        ("host_cpus".into(), Json::Num(host_cpus as f64)),
        ("products".into(), Json::Num(products as f64)),
        ("train_triples".into(), Json::Num(data.train.len() as f64)),
        ("epochs".into(), Json::Num(epochs as f64)),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(Run::to_json).collect()),
        ),
        (
            "checkpoint".into(),
            Json::Obj(vec![
                ("bytes_per_epoch".into(), Json::Num(ckpt_bytes as f64)),
                ("overhead_frac".into(), Json::Num(ckpt_overhead)),
                ("resume_bit_identical".into(), Json::Bool(resume_identical)),
            ]),
        ),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    println!("{out}");
}
