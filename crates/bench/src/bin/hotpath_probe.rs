//! `hotpath_probe` — component-level cost breakdown of the scan row
//! path: CNN text encoding (the cache-miss cost), cached scoring with
//! scratch reuse (the cache-hit cost), and a raw kernel sweep. Run it
//! before trusting any end-to-end rows/s number: it says which
//! component a regression lives in.
//!
//! ```text
//! hotpath_probe [--iters N]
//! ```

use pge_core::{train_pge, CachedModel, EmbeddingCache, PgeConfig, ScoreScratch};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_tensor::kernels;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters: u64 = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);

    let data = generate_catalog(&CatalogConfig {
        products: 200,
        labeled: 80,
        seed: 11,
        ..CatalogConfig::tiny()
    });
    let model = train_pge(
        &data,
        &PgeConfig {
            epochs: 1,
            ..PgeConfig::default()
        },
    )
    .model;

    let t = data.graph.triples()[0];
    let title = data.graph.title(t.product).to_string();
    let attr = data.graph.attr_name(t.attr).to_string();
    let value = data.graph.value_text(t.value).to_string();
    println!(
        "kernel: {}  iters: {iters}  title: {title:?}",
        kernels::active_kernel().name()
    );

    // Cache-miss cost: one full CNN encode per call.
    let start = Instant::now();
    let mut sink = 0.0f32;
    for i in 0..iters {
        // Vary the tail so no memoization can hide the work.
        let text = if i % 2 == 0 { &title } else { &value };
        sink += model.embed_text(text)[0];
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("embed_text       : {per:>9.0} ns/call");

    // Tokenization alone, to separate text preprocessing from the
    // CNN forward inside embed_text.
    let start = Instant::now();
    let mut toks = 0usize;
    for i in 0..iters {
        let text = if i % 2 == 0 { &title } else { &value };
        toks += pge_text::tokenize(text).len();
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "tokenize         : {per:>9.0} ns/call  ({} tokens avg)",
        toks / iters as usize
    );

    // Cache-hit cost: the steady-state row, everything already cached.
    let cache = EmbeddingCache::new(1024);
    let cached = CachedModel::new(&model, &cache);
    let mut scratch = ScoreScratch::default();
    let start = Instant::now();
    for _ in 0..iters {
        sink += cached
            .score_text_triple_scratch(&title, &attr, &value, &mut scratch)
            .unwrap_or(0.0);
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("score (cache hit): {per:>9.0} ns/row");

    // Score-line formatting, the committer's per-row work.
    use std::io::Write as _;
    let mut buf = Vec::with_capacity(64);
    let start = Instant::now();
    for i in 0..iters {
        buf.clear();
        let _ = writeln!(buf, "{title}\t{attr}\t{value}\t{:.6}\t{}", sink, i % 2);
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "format line      : {per:>9.0} ns/row  ({} bytes)",
        buf.len()
    );

    std::hint::black_box(sink);

    // Span breakdown of a real (small) scan: read / score / write /
    // commit totals localize end-to-end cost that the component
    // numbers above don't explain.
    let work = std::env::temp_dir().join(format!("pge-hotpath-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("probe dir");
    let input = work.join("in.tsv");
    {
        use std::io::Write as _;
        let f = std::fs::File::create(&input).unwrap();
        let mut w = std::io::BufWriter::new(f);
        let mut n = 0u64;
        let mut lot = 0u64;
        'outer: loop {
            for t in data.graph.triples() {
                if n >= 200_000 {
                    break 'outer;
                }
                writeln!(
                    w,
                    "{} lot {lot}\t{}\t{}",
                    data.graph.title(t.product),
                    data.graph.attr_name(t.attr),
                    data.graph.value_text(t.value)
                )
                .unwrap();
                n += 1;
            }
            lot += 1;
        }
    }
    // Reader alone: TSV line parse + field split + owned-row build,
    // no scoring. This is the producer-side floor for rows/s.
    {
        let f = std::fs::File::open(&input).unwrap();
        let r = pge_graph::RawTripleReader::new(std::io::BufReader::new(f));
        let start = Instant::now();
        let mut n = 0u64;
        for row in r {
            if row.is_ok() {
                n += 1;
            }
        }
        let per = start.elapsed().as_nanos() as f64 / n as f64;
        println!("read+parse row   : {per:>9.0} ns/row  ({n} rows)");
    }

    pge_obs::set_spans_enabled(true);
    pge_obs::reset_spans();
    let mut cfg = pge_scan::ScanConfig::new(work.join("out"));
    cfg.jobs = 1;
    let start = Instant::now();
    let o = pge_scan::scan(&model, 0.0, &input, &cfg).expect("probe scan");
    let wall = start.elapsed().as_secs_f64();
    pge_obs::set_spans_enabled(false);
    println!(
        "scan 200k rows, jobs 1: {:.0} rows/s  wall {wall:.2}s",
        o.rows_per_sec
    );
    for r in pge_obs::span_snapshot() {
        println!(
            "  {:<24} {:>10.3}s total  {:>8} calls  {:>9.0} ns/call",
            r.path,
            r.total_secs,
            r.count,
            1e9 * r.mean_secs()
        );
    }
    let _ = std::fs::remove_dir_all(&work);
}
