//! `catalog_probe` — paper-scale out-of-core benchmark for the
//! PGEBIN02 store.
//!
//! Streams a seeded 750k-product catalog (~5M triples) to a PGECAT01
//! blob, trains a model on a small labeled sample, embeds every
//! distinct catalog string into an on-disk bank, then scans and
//! serves off the memory-mapped snapshot. Writes `BENCH_catalog.json`
//! with per-phase throughput and peak RSS.
//!
//! ```text
//! catalog_probe [--count N] [--seed N] [--jobs N] [--out FILE]
//!               [--dir DIR] [--rss-budget-mib N]
//! ```
//!
//! The scan and serve phases each run in a child process (the probe
//! re-executes itself with a hidden `--phase` flag) so their `VmHWM`
//! readings are not polluted by the generate/embed phases' heap. The
//! probe exits non-zero unless:
//!
//! * the mapped and heap scans produce bit-identical shards, and
//! * peak RSS of the mapped scan and serve phases stays under the
//!   budget — by default half of what a heap load of the snapshot
//!   would allocate, the bound the out-of-core store exists to hold.
//!
//! `--rss-budget-mib` overrides the budget with an absolute cap; the
//! CI smoke uses that at reduced scale, where fixed process overhead
//! dwarfs the (tiny) embedding table and a relative bound says
//! nothing.

use pge_core::{load_model_auto_path, train_pge, write_model_sections, Detector, PgeConfig};
use pge_datagen::{generate_catalog, stream_catalog, CatalogConfig};
use pge_graph::Dataset;
use pge_obs::json::{parse, Json};
use pge_scan::{scan, Manifest, ScanConfig};
use pge_serve::{start, ServeConfig};
use pge_store::{BankBuilder, CatalogReader, CatalogWriter, MmapMode, SnapshotWriter};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Args(Vec<String>);

impl Args {
    fn str(&self, name: &str, default: &str) -> String {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn num(&self, name: &str, default: u64) -> u64 {
        self.str(name, &default.to_string())
            .parse()
            .unwrap_or_else(|_| panic!("{name} expects a number"))
    }

    fn f32(&self, name: &str, default: f32) -> f32 {
        self.str(name, &default.to_string())
            .parse()
            .unwrap_or_else(|_| panic!("{name} expects a float"))
    }
}

fn peak_rss_mib() -> f64 {
    pge_obs::peak_rss_bytes().map_or(0.0, |b| b as f64 / (1 << 20) as f64)
}

/// The small labeled dataset the model trains on. Children regenerate
/// it from the same knobs, so every process scores with an identical
/// vocabulary and graph.
fn sample_dataset(products: u64, seed: u64) -> Dataset {
    generate_catalog(&CatalogConfig {
        products: products as usize,
        labeled: (products / 3) as usize,
        seed,
        ..CatalogConfig::default()
    })
}

fn parse_mode(s: &str) -> MmapMode {
    MmapMode::parse(s).unwrap_or_else(|| panic!("bad --mmap '{s}'"))
}

fn shard_crcs(out_dir: &Path) -> Vec<u32> {
    Manifest::load(out_dir)
        .expect("load scan manifest")
        .expect("scan manifest exists")
        .shards
        .iter()
        .map(|s| s.crc32)
        .collect()
}

/// Child phase: scan the catalog with the snapshot model, print one
/// JSON line with throughput, peak RSS, and shard CRCs.
fn phase_scan(args: &Args) {
    let data = sample_dataset(args.num("--sample", 800), args.num("--sample-seed", 17));
    let model = load_model_auto_path(
        Path::new(&args.str("--model", "")),
        &data.graph,
        parse_mode(&args.str("--mmap", "auto")),
        args.num("--resident-mib", 16) << 20,
    )
    .expect("load snapshot model");
    let out_dir = PathBuf::from(args.str("--scan-dir", ""));
    let cfg = ScanConfig {
        jobs: args.num("--jobs", 1) as usize,
        cache_cap: args.num("--cache-cap", 8192) as usize,
        ..ScanConfig::new(out_dir.clone())
    };
    let input = PathBuf::from(args.str("--input", ""));
    let threshold = args.f32("--threshold", 0.5);

    let t0 = Instant::now();
    let outcome = scan(&model, threshold, &input, &cfg).expect("scan catalog");
    let elapsed = t0.elapsed().as_secs_f64();

    let bank = model.bank().expect("snapshot model carries a bank");
    let (hits, misses) = bank.hit_stats();
    let report = Json::Obj(vec![
        ("rows".into(), Json::Num(outcome.rows_total as f64)),
        ("errors".into(), Json::Num(outcome.errors_total as f64)),
        (
            "quarantined".into(),
            Json::Num(outcome.quarantined_total as f64),
        ),
        ("elapsed_sec".into(), Json::Num(elapsed)),
        (
            "rows_per_sec".into(),
            Json::Num(outcome.rows_total as f64 / elapsed),
        ),
        ("mapped".into(), Json::Bool(bank.is_mapped())),
        ("bank_hits".into(), Json::Num(hits as f64)),
        ("bank_misses".into(), Json::Num(misses as f64)),
        ("bank_evictions".into(), Json::Num(bank.evictions() as f64)),
        (
            "shard_crcs".into(),
            Json::Arr(
                shard_crcs(&out_dir)
                    .into_iter()
                    .map(|c| Json::Num(c as f64))
                    .collect(),
            ),
        ),
        ("peak_rss_mib".into(), Json::Num(peak_rss_mib())),
    ]);
    println!("{report}");
}

/// A keep-alive HTTP client on one connection, as in `serve_probe`.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to probe server");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn post_score(&mut self, body: &str) -> u16 {
        let raw = format!(
            "POST /v1/score HTTP/1.1\r\nhost: probe\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        self.writer.write_all(raw.as_bytes()).expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header line");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length value");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        status
    }
}

/// Child phase: serve off the mapped snapshot, score real catalog
/// rows over loopback, print one JSON line with throughput, latency
/// percentiles, and peak RSS.
fn phase_serve(args: &Args) {
    let data = sample_dataset(args.num("--sample", 800), args.num("--sample-seed", 17));
    let model = load_model_auto_path(
        Path::new(&args.str("--model", "")),
        &data.graph,
        parse_mode(&args.str("--mmap", "auto")),
        args.num("--resident-mib", 16) << 20,
    )
    .expect("load snapshot model");
    let threshold = args.f32("--threshold", 0.5);
    let requests = args.num("--requests", 200) as usize;
    let batch = args.num("--batch", 64) as usize;

    // Workload: the first `batch` real rows of the catalog — distinct
    // titles, so every item exercises the bank lookup path rather
    // than the embedding cache's best case.
    let reader = CatalogReader::open(Path::new(&args.str("--input", ""))).expect("open catalog");
    let items: Vec<Json> = reader
        .records()
        .expect("read catalog")
        .take(batch)
        .map(|rec| {
            let rec = rec.expect("catalog record");
            Json::Obj(vec![
                ("title".into(), Json::Str(rec.title)),
                ("attr".into(), Json::Str(rec.attr)),
                ("value".into(), Json::Str(rec.value)),
            ])
        })
        .collect();
    let body = Json::Arr(items).to_string();

    let handle = start(
        model,
        data.graph.clone(),
        threshold,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_cap: args.num("--cache-cap", 8192) as usize,
            ..ServeConfig::default()
        },
    )
    .expect("start probe server");
    let mut client = Client::connect(handle.local_addr());

    let t0 = Instant::now();
    let mut latencies = Vec::with_capacity(requests);
    for _ in 0..requests {
        let r0 = Instant::now();
        let status = client.post_score(&body);
        latencies.push(r0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "serve probe request failed");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    handle.shutdown();

    latencies.sort_unstable_by(f64::total_cmp);
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
    let items = requests * batch;
    let report = Json::Obj(vec![
        ("requests".into(), Json::Num(requests as f64)),
        ("items".into(), Json::Num(items as f64)),
        ("elapsed_sec".into(), Json::Num(elapsed)),
        ("items_per_sec".into(), Json::Num(items as f64 / elapsed)),
        ("p50_ms".into(), Json::Num(pct(0.50))),
        ("p99_ms".into(), Json::Num(pct(0.99))),
        ("peak_rss_mib".into(), Json::Num(peak_rss_mib())),
    ]);
    println!("{report}");
}

/// Re-execute this binary for an isolated phase and parse the JSON
/// line it prints. Child stderr passes through for progress.
fn run_child(phase: &str, child_args: &[(&str, String)]) -> Json {
    let exe = std::env::current_exe().expect("resolve current exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--phase").arg(phase);
    for (k, v) in child_args {
        cmd.arg(k).arg(v);
    }
    let out = cmd.output().expect("spawn probe child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{phase} child failed: {}{}",
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("{phase} child printed no JSON: {stdout}"));
    parse(line).unwrap_or_else(|e| panic!("{phase} child JSON: {e:?}"))
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("child report missing {key}"))
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    match args.str("--phase", "").as_str() {
        "" => {}
        "scan" => return phase_scan(&args),
        "serve" => return phase_serve(&args),
        other => panic!("unknown --phase {other}"),
    }

    let count = args.num("--count", 750_000);
    let seed = args.num("--seed", 42);
    let sample = args.num("--sample", 800);
    let sample_seed = args.num("--sample-seed", 17);
    let epochs = args.num("--epochs", 4) as usize;
    let jobs = args.num("--jobs", 1);
    let cache_cap = args.num("--cache-cap", 8192);
    let resident_mib = args.num("--resident-mib", 16);
    let requests = args.num("--requests", 200);
    let batch = args.num("--batch", 64);
    let rss_budget_mib = args.num("--rss-budget-mib", 0);
    let out = args.str("--out", "BENCH_catalog.json");
    let keep_dir = args.str("--dir", "");

    let dir = if keep_dir.is_empty() {
        std::env::temp_dir().join(format!("catalog-probe-{}", std::process::id()))
    } else {
        PathBuf::from(&keep_dir)
    };
    std::fs::create_dir_all(&dir).expect("create work dir");
    let catalog_path = dir.join("catalog.bin");
    let model_path = dir.join("model.pgebin");

    // Phase 1: stream the catalog to disk, O(1) memory.
    eprintln!("generating {count}-product catalog ...");
    let t0 = Instant::now();
    let mut writer = CatalogWriter::create(&catalog_path, seed).expect("create catalog");
    let stats = stream_catalog(
        &CatalogConfig {
            products: count as usize,
            seed,
            ..CatalogConfig::default()
        },
        &mut writer,
    )
    .expect("stream catalog");
    writer.finish().expect("finish catalog");
    let generate_sec = t0.elapsed().as_secs_f64();
    let catalog_bytes = std::fs::metadata(&catalog_path)
        .expect("stat catalog")
        .len();
    eprintln!(
        "  {} products, {} triples, {:.1} MiB in {:.1}s",
        stats.products,
        stats.triples,
        catalog_bytes as f64 / (1 << 20) as f64,
        generate_sec
    );

    // Phase 2: train on the small labeled sample.
    eprintln!("training on {sample}-product sample ({epochs} epochs) ...");
    let data = sample_dataset(sample, sample_seed);
    let t0 = Instant::now();
    let trained = train_pge(
        &data,
        &PgeConfig {
            epochs,
            ..PgeConfig::default()
        },
    );
    let train_sec = t0.elapsed().as_secs_f64();
    let threshold = Detector::fit(&trained.model, &data.graph, &data.valid).threshold;

    // Phase 3: embed every distinct catalog string into the bank and
    // write the PGEBIN02 snapshot.
    eprintln!("embedding catalog strings into the snapshot bank ...");
    let t0 = Instant::now();
    let reader = CatalogReader::open(&catalog_path).expect("open catalog");
    let mut builder = BankBuilder::new();
    for rec in reader.records().expect("read catalog") {
        let rec = rec.expect("catalog record");
        builder.add(&rec.title);
        builder.add(&rec.value);
    }
    let bank_keys = builder.len();
    let dim = trained.model.dim();
    let mut sw = SnapshotWriter::create(&model_path).expect("create snapshot");
    write_model_sections(&trained.model, &mut sw).expect("write model sections");
    builder
        .write_sections(&mut sw, dim, |key, row| {
            row.extend_from_slice(&trained.model.embed_text_uncached(key));
        })
        .expect("write bank sections");
    sw.finish().expect("finish snapshot");
    let embed_sec = t0.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&model_path).expect("stat snapshot").len();
    let table_bytes = (bank_keys * dim * 4) as u64;
    eprintln!(
        "  {bank_keys} keys, table {:.1} MiB, snapshot {:.1} MiB in {:.1}s",
        table_bytes as f64 / (1 << 20) as f64,
        snapshot_bytes as f64 / (1 << 20) as f64,
        embed_sec
    );

    // The bound the store exists to hold: a heap load materializes
    // the whole snapshot, so the mapped path must peak under half of
    // that (or under the absolute override at reduced scale).
    let rss_budget_bytes = if rss_budget_mib > 0 {
        rss_budget_mib << 20
    } else {
        snapshot_bytes / 2
    };

    // Phases 4+5: scan (mapped then heap) and serve, each in a child
    // process for a clean VmHWM.
    let common = |mmap: &str, scan_dir: &str| {
        let mut v = vec![
            ("--model", model_path.display().to_string()),
            ("--input", catalog_path.display().to_string()),
            ("--threshold", threshold.to_string()),
            ("--mmap", mmap.to_string()),
            ("--sample", sample.to_string()),
            ("--sample-seed", sample_seed.to_string()),
            ("--jobs", jobs.to_string()),
            ("--cache-cap", cache_cap.to_string()),
            ("--resident-mib", resident_mib.to_string()),
            ("--requests", requests.to_string()),
            ("--batch", batch.to_string()),
        ];
        if !scan_dir.is_empty() {
            v.push(("--scan-dir", dir.join(scan_dir).display().to_string()));
        }
        v
    };
    eprintln!("scanning {} triples (mmap on) ...", stats.triples);
    let scan_mapped = run_child("scan", &common("on", "scan-mapped"));
    eprintln!(
        "  {:.0} rows/s, peak RSS {:.1} MiB",
        num(&scan_mapped, "rows_per_sec"),
        num(&scan_mapped, "peak_rss_mib")
    );
    eprintln!("scanning {} triples (mmap off) ...", stats.triples);
    let scan_heap = run_child("scan", &common("off", "scan-heap"));
    eprintln!(
        "  {:.0} rows/s, peak RSS {:.1} MiB",
        num(&scan_heap, "rows_per_sec"),
        num(&scan_heap, "peak_rss_mib")
    );
    eprintln!("serving {requests} requests x {batch} items (mmap on) ...");
    let serve = run_child("serve", &common("on", ""));
    eprintln!(
        "  {:.0} items/s, p50 {:.2} ms, p99 {:.2} ms, peak RSS {:.1} MiB",
        num(&serve, "items_per_sec"),
        num(&serve, "p50_ms"),
        num(&serve, "p99_ms"),
        num(&serve, "peak_rss_mib")
    );

    // Checks.
    let shards_identical = scan_mapped.get("shard_crcs").map(Json::to_string)
        == scan_heap.get("shard_crcs").map(Json::to_string);
    let budget_mib = rss_budget_bytes as f64 / (1 << 20) as f64;
    let scan_rss_ok = num(&scan_mapped, "peak_rss_mib") <= budget_mib;
    let serve_rss_ok = num(&serve, "peak_rss_mib") <= budget_mib;
    let mapped = scan_mapped.get("mapped").map(Json::to_string) == Some("true".into());
    let ok = shards_identical && scan_rss_ok && serve_rss_ok && mapped;
    eprintln!(
        "checks: shards_identical={shards_identical} mapped={mapped} \
         scan_rss_ok={scan_rss_ok} serve_rss_ok={serve_rss_ok} (budget {budget_mib:.1} MiB)"
    );

    let run = |label: &str, mmap: &str, j: &Json| {
        let mut fields = vec![
            ("label".into(), Json::Str(label.into())),
            ("mmap".into(), Json::Str(mmap.into())),
        ];
        if let Json::Obj(pairs) = j {
            fields.extend(pairs.iter().cloned());
        }
        Json::Obj(fields)
    };
    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("catalog_probe".into())),
        (
            "manifest".into(),
            Json::Obj(vec![
                (
                    "git_rev".into(),
                    pge_obs::git_rev().map_or(Json::Null, Json::Str),
                ),
                ("ts_ms".into(), Json::Num(pge_obs::unix_time_ms() as f64)),
                (
                    "version".into(),
                    Json::Str(env!("CARGO_PKG_VERSION").into()),
                ),
            ]),
        ),
        ("products".into(), Json::Num(stats.products as f64)),
        ("triples".into(), Json::Num(stats.triples as f64)),
        ("catalog_bytes".into(), Json::Num(catalog_bytes as f64)),
        ("snapshot_bytes".into(), Json::Num(snapshot_bytes as f64)),
        ("bank_keys".into(), Json::Num(bank_keys as f64)),
        ("bank_table_bytes".into(), Json::Num(table_bytes as f64)),
        ("dim".into(), Json::Num(dim as f64)),
        ("host_cpus".into(), Json::Num(resolve_cpus() as f64)),
        (
            "rss_budget_mib".into(),
            Json::Num(rss_budget_bytes as f64 / (1 << 20) as f64),
        ),
        ("resident_budget_mib".into(), Json::Num(resident_mib as f64)),
        ("generate_sec".into(), Json::Num(generate_sec)),
        (
            "generate_triples_per_sec".into(),
            Json::Num(stats.triples as f64 / generate_sec),
        ),
        ("train_sec".into(), Json::Num(train_sec)),
        ("train_sample_products".into(), Json::Num(sample as f64)),
        ("embed_sec".into(), Json::Num(embed_sec)),
        (
            "embed_keys_per_sec".into(),
            Json::Num(bank_keys as f64 / embed_sec),
        ),
        (
            "runs".into(),
            Json::Arr(vec![
                run("scan-mmap", "on", &scan_mapped),
                run("scan-heap", "off", &scan_heap),
                run("serve-mmap", "on", &serve),
            ]),
        ),
        ("shards_identical".into(), Json::Bool(shards_identical)),
        ("scan_rss_ok".into(), Json::Bool(scan_rss_ok)),
        ("serve_rss_ok".into(), Json::Bool(serve_rss_ok)),
        ("ok".into(), Json::Bool(ok)),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    println!("{out}");

    if keep_dir.is_empty() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if !ok {
        std::process::exit(1);
    }
}

fn resolve_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
