//! `probe` — quick hyper-parameter probes for single methods.
//!
//! ```text
//! probe <amazon|fb> <method> [--scale F] [--epochs N] [--lr F]
//!       [--gamma F] [--dim N] [--seed N]
//! ```
//!
//! Prints PR AUC and R@P for one method on one dataset. Used while
//! tuning the reproduction; kept as a convenience tool.

use pge_baselines::{train_kge, KgeConfig};
use pge_bench::{evaluate_detector, Scale};
use pge_core::{train_pge, PgeConfig, ScoreKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: probe <amazon|fb> <method> [--scale F] [--epochs N] [--lr F] [--gamma F] [--dim N] [--seed N]");
        std::process::exit(2);
    }
    let dataset_name = &args[0];
    let method = &args[1];
    let mut scale_f = 0.3;
    let mut epochs: Option<usize> = None;
    let mut lr: Option<f32> = None;
    let mut gamma: Option<f32> = None;
    let mut dim: Option<usize> = None;
    let mut seed = 42u64;
    let mut i = 2;
    while i + 1 < args.len() + 1 {
        match args.get(i).map(String::as_str) {
            Some("--scale") => scale_f = args[i + 1].parse().unwrap(),
            Some("--epochs") => epochs = Some(args[i + 1].parse().unwrap()),
            Some("--lr") => lr = Some(args[i + 1].parse().unwrap()),
            Some("--gamma") => gamma = Some(args[i + 1].parse().unwrap()),
            Some("--dim") => dim = Some(args[i + 1].parse().unwrap()),
            Some("--seed") => seed = args[i + 1].parse().unwrap(),
            Some(_) => {
                eprintln!("unknown flag {}", args[i]);
                std::process::exit(2);
            }
            None => break,
        }
        i += 2;
    }
    let scale = Scale {
        seed,
        ..Scale::default()
    }
    .scaled(scale_f);
    let d = if dataset_name == "fb" {
        scale.fb()
    } else {
        scale.amazon()
    };

    let kind = |name: &str| match name {
        "transe" => ScoreKind::TransE,
        "distmult" => ScoreKind::DistMult,
        "complex" => ScoreKind::ComplEx,
        _ => ScoreKind::RotatE,
    };

    let (name, pr, r, secs) = if let Some(score_name) = method.strip_prefix("kge-") {
        let mut cfg = KgeConfig {
            score: kind(score_name),
            ..KgeConfig::default()
        };
        if let Some(e) = epochs {
            cfg.epochs = e;
        }
        if let Some(l) = lr {
            cfg.lr = l;
        }
        if let Some(g) = gamma {
            cfg.gamma = g;
        }
        if let Some(dd) = dim {
            cfg.dim = dd;
        }
        let m = train_kge(&d, &cfg);
        let (pr, r) = evaluate_detector(&m, &d, &d.test, &[0.7, 0.8, 0.9]);
        (format!("KGE-{score_name}"), pr, r, m.train_secs)
    } else if let Some(score_name) = method.strip_prefix("pge-") {
        let mut cfg = PgeConfig {
            score: kind(score_name),
            ..PgeConfig::default()
        };
        if let Some(e) = epochs {
            cfg.epochs = e;
        }
        if let Some(l) = lr {
            cfg.lr = l;
        }
        if let Some(g) = gamma {
            cfg.gamma = g;
        }
        if let Some(dd) = dim {
            cfg.dim = dd;
        }
        let out = train_pge(&d, &cfg);
        let (pr, r) = evaluate_detector(&out.model, &d, &d.test, &[0.7, 0.8, 0.9]);
        (format!("PGE-{score_name}"), pr, r, out.train_secs)
    } else {
        eprintln!("method must be kge-<score> or pge-<score>");
        std::process::exit(2);
    };
    println!(
        "{dataset_name} {name}: PR_AUC={pr:.3} R@0.7={:.3} R@0.8={:.3} R@0.9={:.3} ({secs:.1}s)",
        r[0], r[1], r[2]
    );
}
