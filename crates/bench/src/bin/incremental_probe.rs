//! `incremental_probe` — streaming-ingest vs full-retrain benchmark.
//!
//! Generates a base catalog plus a seeded drift scenario (~1% of the
//! catalog churned per window), then measures the {full retrain,
//! incremental ingest} × {pge, cca} matrix:
//!
//! * **full** — retrain from scratch on the evolved (post-churn)
//!   catalog, the baseline an operator without `train --incremental`
//!   pays per ingest window;
//! * **incremental** — warm-start from the base run's checkpoint and
//!   fine-tune only the windows' touched rows.
//!
//! Each arm reports wall-clock seconds and error-detection PR-AUC on
//! the combined evaluation set (base test split + the drift scenario's
//! per-window labeled triples, both scored on the evolved graph), and
//! the incremental arm reports its speedup over the full retrain.
//! Writes `BENCH_incremental.json`.
//!
//! ```text
//! incremental_probe [--products N] [--epochs N] [--out FILE]
//! ```

use pge_core::{
    train_incremental, train_pge, train_pge_resumable, CheckpointOptions, ConfidenceBackend,
    Detector, IncrementalConfig, PgeConfig, PgeModel,
};
use pge_datagen::{generate_catalog, generate_drift, CatalogConfig, DriftConfig, DriftEvalTriple};
use pge_eval::{average_precision, Scored};
use pge_graph::{apply_window, Dataset, LabeledTriple, ProductGraph, Triple};
use pge_serve::json::Json;

/// Intern the drift eval set against the evolved graph. Every title
/// and value is transductive by construction, so lookups must hit.
fn labeled_drift(graph: &ProductGraph, eval: &[DriftEvalTriple]) -> Vec<LabeledTriple> {
    eval.iter()
        .map(|e| {
            let p = graph
                .lookup_product(&e.title)
                .unwrap_or_else(|| panic!("drift eval title {:?} not in evolved graph", e.title));
            let a = graph
                .lookup_attr(&e.attr)
                .unwrap_or_else(|| panic!("drift eval attr {:?} not in evolved graph", e.attr));
            let v = graph
                .lookup_value(&e.value)
                .unwrap_or_else(|| panic!("drift eval value {:?} not in evolved graph", e.value));
            LabeledTriple {
                triple: Triple::new(p, a, v),
                correct: e.correct,
            }
        })
        .collect()
}

/// Error-detection PR-AUC of `model` over `eval` on `graph`, with the
/// detector threshold fit on `valid` (same recipe as `pge eval`).
fn pr_auc(
    model: &PgeModel,
    graph: &ProductGraph,
    valid: &[LabeledTriple],
    eval: &[LabeledTriple],
) -> f64 {
    let det = Detector::fit(model, graph, valid);
    let triples: Vec<Triple> = eval.iter().map(|lt| lt.triple).collect();
    let scores = det.scores(graph, &triples);
    let scored: Vec<Scored> = scores
        .iter()
        .zip(eval)
        .map(|(&f, lt)| Scored::new(-f, !lt.correct))
        .collect();
    average_precision(&scored) as f64
}

struct Arm {
    backend: &'static str,
    mode: &'static str,
    elapsed_sec: f64,
    pr_auc: f64,
    pr_auc_drift: f64,
    speedup_vs_full: f64,
}

impl Arm {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("backend".into(), Json::Str(self.backend.into())),
            ("mode".into(), Json::Str(self.mode.into())),
            ("elapsed_sec".into(), Json::Num(self.elapsed_sec)),
            ("pr_auc".into(), Json::Num(self.pr_auc)),
            ("pr_auc_drift".into(), Json::Num(self.pr_auc_drift)),
            ("speedup_vs_full".into(), Json::Num(self.speedup_vs_full)),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let products = flag("--products", 400);
    let epochs = flag("--epochs", 6);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_incremental.json".to_string());

    let cat = CatalogConfig {
        products,
        labeled: products / 3,
        seed: 11,
        ..CatalogConfig::tiny()
    };
    let base = generate_catalog(&cat);
    // ~1% of the catalog churns per window.
    let dcfg = DriftConfig {
        windows: 2,
        adds_per_window: (products / 100).max(2),
        updates_per_window: (products / 200).max(1),
        retracts_per_window: (products / 400).max(1),
        eval_per_window: 40,
        eval_error_rate: 0.5,
        seed: 7,
    };
    let scenario = generate_drift(&base, &cat, &dcfg);
    let delta_ops: usize = scenario.windows.iter().map(|w| w.ops.len()).sum();
    eprintln!(
        "base: {} train triples; drift: {} windows, {} ops ({:.2}% of train), {} eval triples",
        base.train.len(),
        scenario.windows.len(),
        delta_ops,
        100.0 * delta_ops as f64 / base.train.len() as f64,
        scenario.eval.len()
    );

    // The evolved (post-churn) catalog the full retrain trains on:
    // live facts only, over the extended graph.
    let mut evolved = base.clone();
    let mut live = vec![true; evolved.train.len()];
    for w in &scenario.windows {
        let applied = apply_window(&mut evolved, &mut live, w);
        assert_eq!(applied.missed_retractions, 0);
    }
    let live_train: Vec<Triple> = evolved
        .train
        .iter()
        .zip(&live)
        .filter(|(_, l)| **l)
        .map(|(t, _)| *t)
        .collect();
    let mut full_data = Dataset::new(
        evolved.graph.clone(),
        live_train,
        base.valid.clone(),
        base.test.clone(),
    );
    full_data.train_clean = vec![true; full_data.train.len()];

    let mut arms: Vec<Arm> = Vec::new();
    for backend in [ConfidenceBackend::Pge, ConfidenceBackend::Cca] {
        let cfg = PgeConfig {
            epochs,
            threads: 0,
            confidence: backend,
            ..PgeConfig::default()
        };

        // Base run with a checkpoint — the warm start. Its cost is not
        // part of either arm: it happened before the drift arrived.
        let dir = std::env::temp_dir().join(format!(
            "pge-incr-probe-{}-{}",
            backend.name(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        train_pge_resumable(&base, &cfg, None, Some(&CheckpointOptions::new(&dir)))
            .expect("base training");

        // Full retrain on the evolved catalog.
        let full = train_pge(&full_data, &cfg);
        let drift_eval = labeled_drift(&full_data.graph, &scenario.eval);
        let mut combined = full_data.test.clone();
        combined.extend(drift_eval.iter().cloned());
        let full_auc = pr_auc(&full.model, &full_data.graph, &full_data.valid, &combined);
        let full_auc_drift = pr_auc(&full.model, &full_data.graph, &full_data.valid, &drift_eval);
        eprintln!(
            "{}/full: {:.1}s, PR-AUC {:.3} (drift {:.3})",
            backend.name(),
            full.train_secs,
            full_auc,
            full_auc_drift
        );
        arms.push(Arm {
            backend: backend.name(),
            mode: "full",
            elapsed_sec: full.train_secs,
            pr_auc: full_auc,
            pr_auc_drift: full_auc_drift,
            speedup_vs_full: 1.0,
        });

        // Incremental ingest from the checkpoint.
        let mut inc = IncrementalConfig::new(dir.join("snapshots"));
        inc.epochs_per_window = flag("--window-epochs", 3);
        let outcome = train_incremental(
            &base,
            &scenario.windows,
            &cfg,
            &inc,
            &CheckpointOptions::new(&dir),
            None,
        )
        .expect("incremental ingest");
        let graph = &outcome.dataset.graph;
        let drift_eval = labeled_drift(graph, &scenario.eval);
        let mut combined = base.test.clone();
        combined.extend(drift_eval.iter().cloned());
        let incr_auc = pr_auc(&outcome.model, graph, &base.valid, &combined);
        let incr_auc_drift = pr_auc(&outcome.model, graph, &base.valid, &drift_eval);
        let speedup = full.train_secs / outcome.train_secs.max(1e-9);
        eprintln!(
            "{}/incremental: {:.2}s, PR-AUC {:.3} (drift {:.3}), {speedup:.1}x vs full retrain",
            backend.name(),
            outcome.train_secs,
            incr_auc,
            incr_auc_drift
        );
        arms.push(Arm {
            backend: backend.name(),
            mode: "incremental",
            elapsed_sec: outcome.train_secs,
            pr_auc: incr_auc,
            pr_auc_drift: incr_auc_drift,
            speedup_vs_full: speedup,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("incremental_probe".into())),
        (
            "manifest".into(),
            Json::Obj(vec![
                (
                    "git_rev".into(),
                    pge_obs::git_rev().map_or(Json::Null, Json::Str),
                ),
                ("ts_ms".into(), Json::Num(pge_obs::unix_time_ms() as f64)),
                ("products".into(), Json::Num(products as f64)),
                ("epochs".into(), Json::Num(epochs as f64)),
                ("train_triples".into(), Json::Num(base.train.len() as f64)),
                ("delta_ops".into(), Json::Num(delta_ops as f64)),
                (
                    "delta_fraction".into(),
                    Json::Num(delta_ops as f64 / base.train.len() as f64),
                ),
                ("windows".into(), Json::Num(scenario.windows.len() as f64)),
                ("eval_triples".into(), Json::Num(scenario.eval.len() as f64)),
            ]),
        ),
        (
            "arms".into(),
            Json::Arr(arms.iter().map(Arm::to_json).collect()),
        ),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    eprintln!("wrote {out}");
}
