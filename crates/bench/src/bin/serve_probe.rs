//! `serve_probe` — loopback load probe for `pge-serve`.
//!
//! Trains a small model, starts the scoring server twice (embedding
//! cache on, then `cache_cap = 0`), drives both over 127.0.0.1 with a
//! repeated-title workload, and writes `BENCH_serve.json` with
//! throughput, client-side p50/p99 latency, and the cache hit rate.
//!
//! ```text
//! serve_probe [--clients N] [--requests N] [--batch N] [--out FILE]
//! ```
//!
//! The repeated-title workload is the cache's best case: every request
//! scores the same handful of entities, so after warm-up the encoder
//! is never consulted. The probe prints the cached/uncached throughput
//! ratio at the end; ≥2× is the expectation this probe exists to
//! check.

use pge_core::{train_pge, Detector, PgeConfig, PgeModel};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_graph::{Dataset, ProductGraph};
use pge_serve::json::Json;
use pge_serve::{start, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

struct ProbeStats {
    label: String,
    cache_cap: usize,
    requests: usize,
    items: usize,
    elapsed_sec: f64,
    throughput_items_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
}

impl ProbeStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("cache_cap".into(), Json::Num(self.cache_cap as f64)),
            ("requests".into(), Json::Num(self.requests as f64)),
            ("items".into(), Json::Num(self.items as f64)),
            ("elapsed_sec".into(), Json::Num(self.elapsed_sec)),
            (
                "throughput_items_per_sec".into(),
                Json::Num(self.throughput_items_per_sec),
            ),
            ("p50_ms".into(), Json::Num(self.p50_ms)),
            ("p99_ms".into(), Json::Num(self.p99_ms)),
            ("cache_hits".into(), Json::Num(self.cache_hits as f64)),
            ("cache_misses".into(), Json::Num(self.cache_misses as f64)),
            ("cache_hit_rate".into(), Json::Num(self.cache_hit_rate)),
        ])
    }
}

/// A keep-alive HTTP client on one connection: write the request,
/// read headers, then exactly `content-length` body bytes.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to probe server");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn post_score(&mut self, body: &str) -> (u16, String) {
        let raw = format!(
            "POST /v1/score HTTP/1.1\r\nhost: probe\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        self.writer.write_all(raw.as_bytes()).expect("send request");

        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header line");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length value");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8 body"))
    }
}

/// Request body scoring the same few entities over and over — the
/// workload a storefront produces when one hot product is re-checked
/// on every update.
fn repeated_title_body(data: &Dataset, batch: usize) -> String {
    let distinct = 8.min(data.test.len());
    Json::Arr(
        (0..batch)
            .map(|i| {
                let t = data.test[i % distinct].triple;
                Json::Obj(vec![
                    (
                        "title".into(),
                        Json::Str(data.graph.title(t.product).into()),
                    ),
                    (
                        "attr".into(),
                        Json::Str(data.graph.attr_name(t.attr).into()),
                    ),
                    (
                        "value".into(),
                        Json::Str(data.graph.value_text(t.value).into()),
                    ),
                ])
            })
            .collect(),
    )
    .to_string()
}

fn metric(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name).map(str::trim))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{name} missing from metrics"))
}

#[allow(clippy::too_many_arguments)]
fn probe(
    label: &str,
    model: PgeModel,
    graph: ProductGraph,
    threshold: f32,
    body: &str,
    batch: usize,
    clients: usize,
    requests_per_client: usize,
    cache_cap: usize,
) -> ProbeStats {
    let handle = start(
        model,
        graph,
        threshold,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_cap,
            ..ServeConfig::default()
        },
    )
    .expect("start probe server");
    let addr = handle.local_addr();

    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut lat = Vec::with_capacity(requests_per_client);
                    for _ in 0..requests_per_client {
                        let t0 = Instant::now();
                        let (status, resp) = client.post_score(body);
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(status, 200, "probe request failed: {resp}");
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let metrics = handle.metrics_text();
    let hits = metric(&metrics, "pge_cache_hits_total ");
    let misses = metric(&metrics, "pge_cache_misses_total ");
    handle.shutdown();

    latencies.sort_unstable_by(f64::total_cmp);
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
    let requests = clients * requests_per_client;
    let items = requests * batch;
    ProbeStats {
        label: label.to_string(),
        cache_cap,
        requests,
        items,
        elapsed_sec: elapsed,
        throughput_items_per_sec: items as f64 / elapsed,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let clients = flag("--clients", 4);
    let requests_per_client = flag("--requests", 50);
    let batch = flag("--batch", 64);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    eprintln!("training probe model ...");
    let data = generate_catalog(&CatalogConfig {
        products: 200,
        labeled: 80,
        seed: 11,
        ..CatalogConfig::tiny()
    });
    // Full-size embedding dims (not `tiny`): the probe measures the
    // cache against realistic encoder cost, where inference dominates
    // HTTP + JSON overhead.
    let trained = train_pge(
        &data,
        &PgeConfig {
            epochs: 4,
            ..PgeConfig::default()
        },
    );
    let threshold = Detector::fit(&trained.model, &data.graph, &data.valid).threshold;
    let body = repeated_title_body(&data, batch);

    eprintln!(
        "probing: {clients} clients x {requests_per_client} requests x {batch} items/request"
    );
    let cached = probe(
        "cached",
        trained.model.clone(),
        data.graph.clone(),
        threshold,
        &body,
        batch,
        clients,
        requests_per_client,
        4096,
    );
    let uncached = probe(
        "uncached",
        trained.model,
        data.graph,
        threshold,
        &body,
        batch,
        clients,
        requests_per_client,
        0,
    );

    let speedup = cached.throughput_items_per_sec / uncached.throughput_items_per_sec;
    for s in [&cached, &uncached] {
        eprintln!(
            "{:>9}: {:>9.0} items/s  p50 {:.2} ms  p99 {:.2} ms  hit rate {:.1}%",
            s.label,
            s.throughput_items_per_sec,
            s.p50_ms,
            s.p99_ms,
            s.cache_hit_rate * 100.0
        );
    }
    eprintln!("cached/uncached throughput: {speedup:.2}x");

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("serve_probe".into())),
        (
            "manifest".into(),
            Json::Obj(vec![
                (
                    "git_rev".into(),
                    pge_obs::git_rev().map_or(Json::Null, Json::Str),
                ),
                ("ts_ms".into(), Json::Num(pge_obs::unix_time_ms() as f64)),
                (
                    "version".into(),
                    Json::Str(env!("CARGO_PKG_VERSION").into()),
                ),
            ]),
        ),
        ("clients".into(), Json::Num(clients as f64)),
        (
            "requests_per_client".into(),
            Json::Num(requests_per_client as f64),
        ),
        ("batch".into(), Json::Num(batch as f64)),
        ("throughput_speedup".into(), Json::Num(speedup)),
        (
            "runs".into(),
            Json::Arr(vec![cached.to_json(), uncached.to_json()]),
        ),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    println!("{out}");
}
