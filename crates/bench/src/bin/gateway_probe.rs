//! `gateway_probe` — loopback soak + parity probe for `pge-gateway`.
//!
//! Two phases, one report (`BENCH_gateway.json`):
//!
//! 1. **Parity** (in-process): at 1, 2, and 4 replicas, every score
//!    served through the consistent-hash ring must be bit-identical
//!    to offline `Detector::scores`; then a hot-swap to a second
//!    snapshot must serve that snapshot's offline scores exactly.
//! 2. **Soak** (cross-process): ~10k keep-alive connections drive
//!    mixed pipelined traffic (scores + health checks) while a model
//!    hot-swap lands mid-soak. Zero dropped or failed requests is the
//!    acceptance bar; client-side p50/p99 and server counters are
//!    recorded.
//!
//! The process fd limit (hard cap 20000 in the build environment)
//! cannot hold both ends of 10k sockets, so the soak re-executes this
//! binary with `--__server`: the child owns the gateway (~10k
//! accepted fds), the parent owns the 10k client sockets, and they
//! talk over stdin/stdout for lifecycle.
//!
//! ```text
//! gateway_probe [--conns N] [--rounds N] [--depth N] [--threads N] [--out FILE]
//! ```

use pge_core::{save_model_binary, train_pge, Detector, PgeConfig, PgeModel};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_gateway::{start, GatewayConfig};
use pge_graph::Dataset;
use pge_serve::json::{self, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const DATA_SEED: u64 = 11;

fn probe_data() -> Dataset {
    generate_catalog(&CatalogConfig {
        products: 200,
        labeled: 80,
        seed: DATA_SEED,
        ..CatalogConfig::tiny()
    })
}

/// Deterministic model: snapshot A trains 2 epochs, snapshot B 3 —
/// cheap, and reliably different weights.
fn probe_model(data: &Dataset, epochs: usize) -> (PgeModel, f32) {
    let trained = train_pge(
        data,
        &PgeConfig {
            epochs,
            ..PgeConfig::tiny()
        },
    );
    let threshold = Detector::fit(&trained.model, &data.graph, &data.valid).threshold;
    (trained.model, threshold)
}

fn offline_scores(data: &Dataset, model: &PgeModel) -> Vec<f32> {
    let det = Detector::fit(model, &data.graph, &data.valid);
    let triples: Vec<_> = data.test.iter().map(|lt| lt.triple).collect();
    det.scores(&data.graph, &triples)
}

fn score_body(data: &Dataset, i: usize) -> String {
    let t = data.test[i % data.test.len()].triple;
    Json::Arr(vec![Json::Obj(vec![
        (
            "title".into(),
            Json::Str(data.graph.title(t.product).into()),
        ),
        (
            "attr".into(),
            Json::Str(data.graph.attr_name(t.attr).into()),
        ),
        (
            "value".into(),
            Json::Str(data.graph.value_text(t.value).into()),
        ),
    ])])
    .to_string()
}

fn score_request(body: &str) -> String {
    format!(
        "POST /v1/score HTTP/1.1\r\nhost: probe\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
}

/// Read one HTTP response off a keep-alive stream, carrying leftover
/// pipelined bytes across calls in `buf`. `None` = EOF/timeout/error.
fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Option<(u16, String)> {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
            let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
            let clen: usize = head.lines().find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().ok())?
            })?;
            let total = head_end + 4 + clen;
            if buf.len() >= total {
                let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned();
                buf.drain(..total);
                return Some((status, body));
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
}

/// One request on a fresh `Connection: close` connection.
fn oneshot(addr: SocketAddr, raw: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream.write_all(raw.as_bytes()).ok()?;
    let mut buf = Vec::new();
    read_one_response(&mut stream, &mut buf)
}

fn metric(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0.0)
}

// ---------------------------------------------------------------- parity

/// In-process parity: served == offline, bit for bit, at several
/// replica counts; then again after a hot-swap.
fn parity_runs(out: &mut Vec<Json>) -> bool {
    eprintln!("parity: training snapshots A and B ...");
    let data = probe_data();
    let (model_a, thr_a) = probe_model(&data, 2);
    let (model_b, thr_b) = probe_model(&data, 3);
    let offline_a = offline_scores(&data, &model_a);
    let offline_b = offline_scores(&data, &model_b);
    let mut all_ok = true;

    for replicas in [1usize, 2, 4] {
        let handle = start(
            model_a.clone(),
            data.graph.clone(),
            data.valid.clone(),
            thr_a,
            GatewayConfig {
                addr: "127.0.0.1:0".into(),
                replicas,
                ..GatewayConfig::default()
            },
        )
        .expect("start parity gateway");
        let addr = handle.local_addr();

        let check = |offline: &[f32]| -> (usize, usize) {
            let mut checked = 0;
            let mut exact = 0;
            for (i, want) in offline.iter().enumerate() {
                let Some((status, body)) = oneshot(addr, &score_request(&score_body(&data, i)))
                else {
                    continue;
                };
                checked += 1;
                if status != 200 {
                    continue;
                }
                let got = json::parse(&body)
                    .ok()
                    .and_then(|v| v.as_array()?.first()?.get("plausibility")?.as_f64())
                    .map(|f| f as f32);
                if got.map(f32::to_bits) == Some(want.to_bits()) {
                    exact += 1;
                }
            }
            (checked, exact)
        };

        let (checked_a, exact_a) = check(&offline_a);
        handle.swap_model(model_b.clone(), thr_b);
        let (checked_b, exact_b) = check(&offline_b);
        let ok = checked_a == offline_a.len()
            && exact_a == checked_a
            && checked_b == offline_b.len()
            && exact_b == checked_b;
        all_ok &= ok;
        eprintln!(
            "parity: {replicas} replicas  pre-swap {exact_a}/{checked_a}  post-swap {exact_b}/{checked_b}  {}",
            if ok { "exact" } else { "MISMATCH" }
        );
        out.push(Json::Obj(vec![
            ("replicas".into(), Json::Num(replicas as f64)),
            ("triples".into(), Json::Num(offline_a.len() as f64)),
            (
                "bit_identical".into(),
                Json::Bool(exact_a == checked_a && checked_a == offline_a.len()),
            ),
            (
                "swap_bit_identical".into(),
                Json::Bool(exact_b == checked_b && checked_b == offline_b.len()),
            ),
        ]));
        handle.shutdown();
    }
    all_ok
}

// ------------------------------------------------------------------ soak

/// Child mode: own the gateway (and its ~10k accepted fds), tell the
/// parent where it listens, hold until stdin says shutdown.
fn run_server_child(dir: &str) -> ! {
    let data = probe_data();
    let (model_a, thr_a) = probe_model(&data, 2);
    let (model_b, _) = probe_model(&data, 3);
    let snapshot = format!("{dir}/model-b.pgebin");
    std::fs::write(&snapshot, save_model_binary(&model_b).expect("snapshot B"))
        .expect("write snapshot");
    let runlog = format!("{dir}/gateway.jsonl");
    let handle = start(
        model_a,
        data.graph.clone(),
        data.valid.clone(),
        thr_a,
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 4,
            queue_cap: 8192,
            model_path: Some(snapshot),
            runlog_path: Some(runlog),
            ..GatewayConfig::default()
        },
    )
    .expect("start soak gateway");
    println!("ADDR {}", handle.local_addr());
    std::io::stdout().flush().ok();

    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line); // "shutdown" or EOF
    handle.shutdown();
    println!("DONE");
    std::process::exit(0);
}

struct SoakOutcome {
    requests: u64,
    ok_200: u64,
    shed_503: u64,
    failures: u64,
    latencies_ms: Vec<f64>,
}

/// Drive `conns` keep-alive connections for `rounds` rounds of
/// `depth`-deep pipelined traffic, from `threads` client threads.
#[allow(clippy::too_many_arguments)]
fn run_soak(
    addr: SocketAddr,
    data: &Dataset,
    conns: usize,
    rounds: usize,
    depth: usize,
    threads: usize,
    reload_fired: &AtomicU64,
    completed: &AtomicU64,
) -> SoakOutcome {
    // Pre-render the request pool: a small set of hot titles (the
    // cache's steady state) plus a health check mixed in.
    let bodies: Vec<String> = (0..64)
        .map(|i| score_request(&score_body(data, i)))
        .collect();
    let health = "GET /healthz HTTP/1.1\r\nhost: probe\r\n\r\n".to_string();

    eprintln!("soak: opening {conns} keep-alive connections ...");
    let per_thread = conns.div_ceil(threads);
    let outcomes: Vec<SoakOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let bodies = &bodies;
                let health = &health;
                let my_conns = per_thread.min(conns.saturating_sub(t * per_thread));
                scope.spawn(move || {
                    let mut sockets: Vec<(TcpStream, Vec<u8>)> = Vec::with_capacity(my_conns);
                    for i in 0..my_conns {
                        // Pace connects so the accept loop (and the
                        // loopback backlog) keeps up.
                        if i % 256 == 255 {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        match TcpStream::connect(addr) {
                            Ok(s) => {
                                let _ = s.set_nodelay(true);
                                let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                                sockets.push((s, Vec::new()));
                            }
                            Err(e) => panic!("soak connect {i} failed: {e}"),
                        }
                    }
                    let mut outcome = SoakOutcome {
                        requests: 0,
                        ok_200: 0,
                        shed_503: 0,
                        failures: 0,
                        latencies_ms: Vec::new(),
                    };
                    for round in 0..rounds {
                        for (si, (stream, buf)) in sockets.iter_mut().enumerate() {
                            // Mixed pipelined batch: scores, with a
                            // health check woven into every 16th.
                            let mut batch = String::new();
                            for d in 0..depth {
                                if (si + d) % 16 == 15 {
                                    batch.push_str(health);
                                } else {
                                    batch.push_str(&bodies[(t + si + round + d) % bodies.len()]);
                                }
                            }
                            let t0 = Instant::now();
                            if stream.write_all(batch.as_bytes()).is_err() {
                                outcome.requests += depth as u64;
                                outcome.failures += depth as u64;
                                continue;
                            }
                            for _ in 0..depth {
                                outcome.requests += 1;
                                match read_one_response(stream, buf) {
                                    Some((200, _)) => {
                                        outcome.ok_200 += 1;
                                        outcome.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                                    }
                                    Some((503, _)) => outcome.shed_503 += 1,
                                    Some(_) | None => outcome.failures += 1,
                                }
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    outcome
                })
            })
            .collect();

        // Fire the hot-swap from the main thread once the soak is
        // about half done — requests in flight on both sides of it.
        let total = (conns * rounds * depth) as u64;
        while completed.load(Ordering::Relaxed) < total / 2 {
            std::thread::sleep(Duration::from_millis(20));
        }
        let raw = "POST /admin/reload HTTP/1.1\r\nhost: probe\r\ncontent-length: 0\r\nconnection: close\r\n\r\n";
        match oneshot(addr, raw) {
            Some((200, _)) => {
                reload_fired.store(1, Ordering::SeqCst);
                eprintln!("soak: hot-swap landed mid-soak");
            }
            other => eprintln!("soak: hot-swap FAILED: {other:?}"),
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("soak thread"))
            .collect()
    });

    let mut total = SoakOutcome {
        requests: 0,
        ok_200: 0,
        shed_503: 0,
        failures: 0,
        latencies_ms: Vec::new(),
    };
    for mut o in outcomes {
        total.requests += o.requests;
        total.ok_200 += o.ok_200;
        total.shed_503 += o.shed_503;
        total.failures += o.failures;
        total.latencies_ms.append(&mut o.latencies_ms);
    }
    total
}

/// Microbench the always-on flight recorder's hot path. Returns
/// `(ns_per_record, ns_per_traced_request)`: one ring write, and the
/// full fast-path cost of a traced request — mint an ID, stamp the
/// ~10 stage events the gateway records, and take the tail-sampling
/// drop decision. The soak's p99 budget for "always-on at <1%
/// overhead" is judged against the latter.
fn recorder_overhead() -> (f64, f64) {
    use pge_obs::{Stage, Tracer};
    let tracer = Tracer::default();
    let stages = [
        Stage::Accept,
        Stage::Route,
        Stage::QueueAdmit,
        Stage::Dequeue,
        Stage::BatchAssemble,
        Stage::Score,
        Stage::CacheHit,
        Stage::CacheMiss,
        Stage::Encode,
        Stage::WriteBack,
    ];
    // Warm the ring (first pass touches every slot's cache line).
    for i in 0..(1u64 << 15) {
        tracer.record(i | 1, Stage::Score, i);
    }
    let n = 1_000_000u64;
    let t0 = Instant::now();
    for i in 0..n {
        tracer.record(i | 1, Stage::Score, i);
    }
    let ns_per_record = t0.elapsed().as_nanos() as f64 / n as f64;
    let m = 100_000u64;
    let t0 = Instant::now();
    for _ in 0..m {
        let id = tracer.begin();
        for st in stages {
            tracer.record(id, st, 0);
        }
        // Fast request, under the slow threshold: the drop path.
        tracer.finish(id, Duration::ZERO, false);
    }
    let ns_per_request = t0.elapsed().as_nanos() as f64 / m as f64;
    (ns_per_record, ns_per_request)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--__server") {
        let dir = args.get(1).expect("--__server <dir>").clone();
        run_server_child(&dir);
    }

    let flag = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let conns = flag("--conns", 10_000);
    let rounds = flag("--rounds", 3);
    let depth = flag("--depth", 2).max(1);
    let threads = flag("--threads", 8).max(1);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_gateway.json".to_string());

    // Phase 1: sharding/swap parity, in-process.
    let mut parity = Vec::new();
    let parity_ok = parity_runs(&mut parity);

    // Phase 2: the big soak, server in a child process.
    let dir = std::env::temp_dir().join(format!("pge-gateway-probe-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let dir_str = dir.to_string_lossy().into_owned();
    eprintln!("soak: spawning gateway server child (trains its own snapshots) ...");
    let exe = std::env::current_exe().expect("current_exe");
    let mut child: Child = Command::new(exe)
        .args(["--__server", &dir_str])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let addr: SocketAddr = {
        let mut line = String::new();
        loop {
            line.clear();
            if child_out.read_line(&mut line).expect("child addr line") == 0 {
                panic!("server child exited before announcing its address");
            }
            if let Some(a) = line.trim().strip_prefix("ADDR ") {
                break a.parse().expect("child address parses");
            }
        }
    };
    eprintln!("soak: gateway child listening on {addr}");

    let data = probe_data();
    let reload_fired = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let started = Instant::now();
    let soak = run_soak(
        addr,
        &data,
        conns,
        rounds,
        depth,
        threads,
        &reload_fired,
        &completed,
    );
    let elapsed = started.elapsed().as_secs_f64();

    // Server-side truth: counters over the wire, then a clean drain.
    let (_, metrics) = oneshot(
        addr,
        "GET /metrics HTTP/1.1\r\nhost: probe\r\nconnection: close\r\n\r\n",
    )
    .expect("final metrics");
    let (_, version_body) = oneshot(
        addr,
        "GET /admin/version HTTP/1.1\r\nhost: probe\r\nconnection: close\r\n\r\n",
    )
    .expect("final version");
    let version_after = json::parse(&version_body)
        .ok()
        .and_then(|v| v.get("version")?.as_f64())
        .unwrap_or(-1.0);
    let replica_routed: Vec<f64> = (0..4)
        .map(|i| metric(&metrics, &format!("pge_gateway_replica_{i}_routed_total")))
        .collect();
    let routed_sum: f64 = replica_routed.iter().sum();
    let routing_skew = if routed_sum > 0.0 {
        replica_routed.iter().cloned().fold(0.0, f64::max)
            / (routed_sum / replica_routed.len() as f64)
    } else {
        0.0
    };

    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(b"shutdown\n")
        .expect("ask child to drain");
    let status = child.wait().expect("child exit");
    assert!(status.success(), "server child exited with {status}");

    // The gateway's run log must render under `pge report`.
    let runlog_text =
        std::fs::read_to_string(dir.join("gateway.jsonl")).expect("gateway runlog written");
    let runlog_events = runlog_text.lines().filter(|l| !l.trim().is_empty()).count();
    let rendered = pge_obs::render_report(&runlog_text).expect("runlog renders");
    assert!(
        rendered.contains("gateway:"),
        "report missing gateway section:\n{rendered}"
    );
    std::fs::remove_dir_all(&dir).ok();

    let mut lat = soak.latencies_ms.clone();
    lat.sort_unstable_by(f64::total_cmp);
    let pct = |q: f64| {
        if lat.is_empty() {
            0.0
        } else {
            lat[((lat.len() - 1) as f64 * q).round() as usize]
        }
    };
    let (p50, p99) = (pct(0.50), pct(0.99));

    eprintln!(
        "soak: {} requests over {conns} conns in {elapsed:.1}s  ({:.0} req/s)",
        soak.requests,
        soak.requests as f64 / elapsed
    );
    eprintln!(
        "soak: {} ok, {} shed (503), {} FAILED  p50 {p50:.2} ms  p99 {p99:.2} ms  skew {routing_skew:.2}",
        soak.ok_200, soak.shed_503, soak.failures
    );
    let soak_ok = soak.failures == 0 && reload_fired.load(Ordering::SeqCst) == 1;

    // Flight-recorder overhead: the soak above already ran with the
    // recorder always-on (it cannot be turned off); the microbench
    // bounds its per-request cost against the measured p99. The
    // previous report's p99, if one exists at --out, is carried along
    // so run-over-run regressions stay visible.
    let baseline_p99_ms = std::fs::read_to_string(&out)
        .ok()
        .and_then(|t| json::parse(&t).ok())
        .and_then(|v| v.get("soak")?.get("p99_ms")?.as_f64());
    let (ns_per_record, ns_per_traced_request) = recorder_overhead();
    let recorder_pct_of_p99 = if p99 > 0.0 {
        ns_per_traced_request / (p99 * 1e6) * 100.0
    } else {
        0.0
    };
    let recorder_ok = recorder_pct_of_p99 <= 1.0;
    eprintln!(
        "recorder: {ns_per_record:.0} ns/event, {ns_per_traced_request:.0} ns/traced request \
         ({recorder_pct_of_p99:.2}% of soak p99)"
    );
    if let Some(b) = baseline_p99_ms {
        eprintln!(
            "recorder: p99 {p99:.3} ms vs previous report {b:.3} ms ({:+.1}%)",
            (p99 - b) / b * 100.0
        );
    }

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("gateway_probe".into())),
        (
            "manifest".into(),
            Json::Obj(vec![
                (
                    "git_rev".into(),
                    pge_obs::git_rev().map_or(Json::Null, Json::Str),
                ),
                ("ts_ms".into(), Json::Num(pge_obs::unix_time_ms() as f64)),
                (
                    "version".into(),
                    Json::Str(env!("CARGO_PKG_VERSION").into()),
                ),
            ]),
        ),
        ("parity_ok".into(), Json::Bool(parity_ok)),
        ("parity".into(), Json::Arr(parity)),
        (
            "soak".into(),
            Json::Obj(vec![
                ("connections".into(), Json::Num(conns as f64)),
                ("rounds".into(), Json::Num(rounds as f64)),
                ("pipeline_depth".into(), Json::Num(depth as f64)),
                ("client_threads".into(), Json::Num(threads as f64)),
                ("elapsed_sec".into(), Json::Num(elapsed)),
                ("requests".into(), Json::Num(soak.requests as f64)),
                (
                    "requests_per_sec".into(),
                    Json::Num(soak.requests as f64 / elapsed),
                ),
                ("ok_200".into(), Json::Num(soak.ok_200 as f64)),
                ("shed_503".into(), Json::Num(soak.shed_503 as f64)),
                ("failed".into(), Json::Num(soak.failures as f64)),
                ("p50_ms".into(), Json::Num(p50)),
                ("p99_ms".into(), Json::Num(p99)),
                (
                    "hot_swap_mid_soak".into(),
                    Json::Bool(reload_fired.load(Ordering::SeqCst) == 1),
                ),
                ("model_version_after".into(), Json::Num(version_after)),
                ("routing_skew".into(), Json::Num(routing_skew)),
                (
                    "server_requests_total".into(),
                    Json::Num(metric(&metrics, "pge_gateway_requests_total")),
                ),
                (
                    "server_responses_total".into(),
                    Json::Num(metric(&metrics, "pge_gateway_responses_total")),
                ),
                (
                    "server_rejected_total".into(),
                    Json::Num(metric(&metrics, "pge_gateway_rejected_total")),
                ),
                (
                    "server_swaps_total".into(),
                    Json::Num(metric(&metrics, "pge_gateway_swaps_total")),
                ),
                (
                    "server_accepted_total".into(),
                    Json::Num(metric(&metrics, "pge_gateway_accepted_total")),
                ),
                ("runlog_events".into(), Json::Num(runlog_events as f64)),
            ]),
        ),
        (
            "flight_recorder".into(),
            Json::Obj(vec![
                ("ns_per_event".into(), Json::Num(ns_per_record)),
                (
                    "ns_per_traced_request".into(),
                    Json::Num(ns_per_traced_request),
                ),
                ("overhead_pct_of_p99".into(), Json::Num(recorder_pct_of_p99)),
                (
                    "baseline_p99_ms".into(),
                    baseline_p99_ms.map_or(Json::Null, Json::Num),
                ),
                ("overhead_ok".into(), Json::Bool(recorder_ok)),
            ]),
        ),
        ("ok".into(), Json::Bool(parity_ok && soak_ok && recorder_ok)),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    println!("{out}");
    assert!(parity_ok, "parity phase found score mismatches");
    assert!(
        soak_ok,
        "soak phase had failures or the hot-swap did not land"
    );
    assert!(
        recorder_ok,
        "flight recorder costs {recorder_pct_of_p99:.2}% of soak p99 per traced \
         request (budget: 1%)"
    );
}
