//! `repro` — regenerate every table and figure of the PGE paper.
//!
//! ```text
//! repro <experiment> [--scale F] [--seed N] [--cap SECS]
//!
//! experiments: table1 table2 table3 table4 table5 table6
//!              fig2 fig5 fig6 all
//! --scale F   multiply default dataset sizes by F (default 1.0)
//! --seed N    generator seed (default 42)
//! --cap SECS  Table 5 per-cell wall-clock cap (default 180)
//! ```

use pge_bench::{
    ablations, fig2, fig5, fig6, table1, table2, table3, table4, table5, table6, Scale,
};
use std::io::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|table2|table3[a|b]|table4|table5|table6|fig2|fig5|fig6|ablations|all> \
         [--scale F] [--seed N] [--cap SECS]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].clone();
    let mut scale_f = 1.0f64;
    let mut seed = 42u64;
    let mut cap = 180.0f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale_f = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--cap" => {
                cap = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let scale = Scale {
        seed,
        ..Scale::default()
    }
    .scaled(scale_f);

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut emit = |s: &str| {
        let _ = writeln!(out, "{s}");
    };

    // Stamp the run so archived outputs stay attributable to a source
    // revision and configuration. The `#` prefix keeps the line out of
    // any table-diffing tooling.
    emit(&format!(
        "# manifest {}",
        pge_obs::manifest_event(
            "repro",
            seed,
            &[
                ("experiment".into(), experiment.clone()),
                ("scale".into(), scale_f.to_string()),
                ("cap_secs".into(), cap.to_string()),
            ],
        )
    ));

    let run_fig2_and_table3 = |emit: &mut dyn FnMut(&str)| {
        let r = table3(&scale);
        emit(&r.report);
        emit(&fig2(&r.amazon));
    };

    match experiment.as_str() {
        "table1" => emit(&table1()),
        "table2" => emit(&table2(&scale)),
        "table3" => emit(&table3(&scale).report),
        "table3a" => emit(&pge_bench::table3_single(&scale, true).1),
        "table3b" => emit(&pge_bench::table3_single(&scale, false).1),
        "table4" => emit(&table4(&scale).report),
        "table5" => emit(&table5(&scale, cap)),
        "table6" => emit(&table6(&scale, 10)),
        "fig2" => run_fig2_and_table3(&mut emit),
        "fig5" => emit(&fig5(&scale)),
        "fig6" => emit(&fig6(&scale).report),
        "ablations" => emit(&ablations(&scale)),
        "all" => {
            emit(&table1());
            emit(&table2(&scale));
            run_fig2_and_table3(&mut emit);
            emit(&table4(&scale).report);
            emit(&table5(&scale, cap));
            emit(&table6(&scale, 10));
            emit(&fig5(&scale));
            emit(&fig6(&scale).report);
        }
        _ => usage(),
    }
}
