//! `scan_probe` — throughput and memory probe for `pge-scan`.
//!
//! Trains a small model, synthesizes a catalog-scale raw triple file
//! (default one million rows: a base catalog replicated with distinct
//! per-lot titles, so the embedding cache sees a realistic mix of
//! misses and hits), bulk-scans it in a `--jobs` sweep (1, 2, 4),
//! verifies every run produced identical shard CRCs, and writes
//! `BENCH_scan.json` with rows/s, shard counts, cache hit rates,
//! per-worker busy time, the active compute kernel, the true host
//! core count, and the process peak RSS.
//!
//! ```text
//! scan_probe [--rows N] [--out FILE]
//! ```
//!
//! Scaling caveat: on a single-core host the sweep measures pool
//! overhead, not speedup — read `effective_parallelism` together with
//! `host_cpus` before drawing scaling conclusions.
//!
//! Peak RSS is read from `/proc/self/status` (`VmHWM`) and is a
//! process-wide high-water mark — the number that matters for the
//! pipeline's bounded-memory claim: it must stay far below the input
//! file size.

use pge_core::{train_pge, Detector, PgeConfig};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_obs::json::Json;
use pge_scan::{scan, Manifest, ScanConfig, ScanOutcome};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// `VmHWM` from /proc/self/status in MiB, or 0 where unavailable.
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Write `rows` raw triples by replicating the base catalog under
/// fresh per-lot titles. Titles repeat within a lot (one product has
/// several attributes) but never across lots, so the title cache
/// works exactly as hard as it would on a real catalog of
/// `rows / triples-per-product` distinct products.
fn synthesize_input(path: &Path, base: &[(String, String, String)], rows: u64) -> u64 {
    let file = std::fs::File::create(path).expect("create probe input");
    let mut w = BufWriter::new(file);
    let mut written = 0u64;
    let mut lot = 0u64;
    'outer: loop {
        for (title, attr, value) in base {
            if written >= rows {
                break 'outer;
            }
            writeln!(w, "{title} lot {lot}\t{attr}\t{value}").expect("write probe input");
            written += 1;
        }
        lot += 1;
    }
    w.flush().expect("flush probe input");
    written
}

fn outcome_json(label: &str, o: &ScanOutcome, peak_mib: f64) -> Json {
    let hit_rate = if o.cache_hits + o.cache_misses > 0 {
        o.cache_hits as f64 / (o.cache_hits + o.cache_misses) as f64
    } else {
        0.0
    };
    Json::Obj(vec![
        ("label".into(), Json::Str(label.into())),
        ("jobs".into(), Json::Num(o.jobs as f64)),
        ("kernel".into(), Json::Str(o.kernel.clone())),
        ("rows".into(), Json::Num(o.rows_scanned as f64)),
        ("errors_flagged".into(), Json::Num(o.errors_flagged as f64)),
        ("quarantined".into(), Json::Num(o.quarantined as f64)),
        ("shards".into(), Json::Num(o.shards_total as f64)),
        ("elapsed_sec".into(), Json::Num(o.elapsed_sec)),
        ("rows_per_sec".into(), Json::Num(o.rows_per_sec)),
        ("cache_hit_rate".into(), Json::Num(hit_rate)),
        (
            "effective_parallelism".into(),
            Json::Num(o.effective_parallelism),
        ),
        (
            "worker_busy_sec".into(),
            Json::Arr(o.worker_busy_sec.iter().map(|&s| Json::Num(s)).collect()),
        ),
        (
            "worker_chunks".into(),
            Json::Arr(
                o.worker_chunks
                    .iter()
                    .map(|&c| Json::Num(c as f64))
                    .collect(),
            ),
        ),
        ("peak_rss_mib".into(), Json::Num(peak_mib)),
    ])
}

fn shard_crcs(out_dir: &Path) -> Vec<u32> {
    Manifest::load(out_dir)
        .expect("load manifest")
        .expect("manifest exists")
        .shards
        .iter()
        .map(|s| s.crc32)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: u64| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let rows = flag("--rows", 1_000_000);
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scan.json".to_string());

    eprintln!("training probe model ...");
    let data = generate_catalog(&CatalogConfig {
        products: 200,
        labeled: 80,
        seed: 11,
        ..CatalogConfig::tiny()
    });
    let trained = train_pge(
        &data,
        &PgeConfig {
            epochs: 2,
            ..PgeConfig::default()
        },
    );
    let threshold = Detector::fit(&trained.model, &data.graph, &data.valid).threshold;

    let base: Vec<(String, String, String)> = data
        .graph
        .triples()
        .iter()
        .map(|t| {
            (
                data.graph.title(t.product).to_string(),
                data.graph.attr_name(t.attr).to_string(),
                data.graph.value_text(t.value).to_string(),
            )
        })
        .collect();

    let work: PathBuf = std::env::temp_dir().join(format!("pge-scan-probe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create probe dir");
    let input = work.join("catalog.tsv");
    eprintln!("synthesizing {rows} rows ...");
    let written = synthesize_input(&input, &base, rows);
    let input_mib = std::fs::metadata(&input).expect("stat input").len() as f64 / (1024.0 * 1024.0);
    eprintln!("input: {written} rows, {input_mib:.1} MiB");

    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let kernel = pge_tensor::active_kernel().name();
    eprintln!("host cpus: {host_cpus}, kernel: {kernel}");

    let mut runs = Vec::new();
    let mut crcs = Vec::new();
    for j in [1usize, 2, 4] {
        let label = format!("jobs-{j}");
        let out_dir = work.join(&label);
        let mut cfg = ScanConfig::new(&out_dir);
        cfg.jobs = j;
        let o = scan(&trained.model, threshold, &input, &cfg).expect("probe scan");
        assert!(o.done);
        let peak = peak_rss_mib();
        eprintln!(
            "{label:>7}: {:>9.0} rows/s  {} shards  hit rate {:.1}%  eff par {:.2}  peak RSS {peak:.0} MiB",
            o.rows_per_sec,
            o.shards_total,
            100.0 * o.cache_hits as f64 / (o.cache_hits + o.cache_misses).max(1) as f64,
            o.effective_parallelism,
        );
        crcs.push(shard_crcs(&out_dir));
        runs.push(outcome_json(&label, &o, peak));
    }
    for (i, crc) in crcs.iter().enumerate().skip(1) {
        assert_eq!(
            &crcs[0], crc,
            "sweep run {i} produced different shards than jobs-1"
        );
    }
    eprintln!(
        "all sweep runs produced identical shard CRCs ({} shards)",
        crcs[0].len()
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("scan_probe".into())),
        (
            "manifest".into(),
            Json::Obj(vec![
                (
                    "git_rev".into(),
                    pge_obs::git_rev().map_or(Json::Null, Json::Str),
                ),
                ("ts_ms".into(), Json::Num(pge_obs::unix_time_ms() as f64)),
                (
                    "version".into(),
                    Json::Str(env!("CARGO_PKG_VERSION").into()),
                ),
            ]),
        ),
        ("rows".into(), Json::Num(written as f64)),
        ("input_mib".into(), Json::Num(input_mib)),
        ("host_cpus".into(), Json::Num(host_cpus as f64)),
        ("kernel".into(), Json::Str(kernel.into())),
        ("shards_identical".into(), Json::Bool(true)),
        ("runs".into(), Json::Arr(runs)),
    ]);
    std::fs::write(&out, format!("{report}\n")).expect("write report");
    let _ = std::fs::remove_dir_all(&work);
    println!("{out}");
}
