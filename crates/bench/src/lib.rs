//! Benchmark harness regenerating every table and figure of the PGE
//! paper's evaluation (§4).
//!
//! * [`scale`] — one knob rescaling both datasets and training
//!   budgets; the defaults are laptop-sized, the paper's shapes hold.
//! * [`methods`] — the method zoo: constructors for every row of
//!   Tables 3/4 behind one interface.
//! * [`experiments`] — one function per table/figure, each returning a
//!   rendered report plus structured numbers.
//!
//! The `repro` binary dispatches to these; the Criterion benches time
//! the per-epoch/per-call kernels of each experiment.

pub mod ablations;
pub mod experiments;
pub mod methods;
pub mod scale;

pub use ablations::ablations;
pub use experiments::*;
pub use methods::{pge_config, train_method, Method, TrainedMethod};
pub use scale::Scale;
