//! The method zoo: every row of Tables 3/4 behind one constructor.

use crate::scale::Scale;
use pge_baselines::{
    train_ckrl, train_dkrl, train_kge, train_nlp, train_rotate_plus, train_ssp, CkrlConfig,
    DkrlConfig, KgeConfig, NlpArch, NlpConfig, SspConfig,
};
use pge_core::{train_pge, EncoderKind, ErrorDetector, PgeConfig, ScoreKind};
use pge_graph::Dataset;

/// Identifier of one comparable method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    Lstm,
    Transformer,
    TransE,
    DistMult,
    ComplEx,
    RotatE,
    RotatEPlus,
    Dkrl,
    Ssp,
    Ckrl,
    PgeCnnTransE,
    PgeCnnRotatE,
    /// PGE(CNN)-RotatE with the noise-aware mechanism disabled
    /// (Fig. 6 ablation).
    PgeCnnRotatENoNa,
    /// PGE with the BERT-style encoder (Table 5).
    PgeBertRotatE,
}

impl Method {
    /// Paper-style display name.
    pub fn label(self) -> &'static str {
        match self {
            Method::Lstm => "LSTM",
            Method::Transformer => "Transformer",
            Method::TransE => "TransE",
            Method::DistMult => "DistMult",
            Method::ComplEx => "ComplEx",
            Method::RotatE => "RotatE",
            Method::RotatEPlus => "RotatE+",
            Method::Dkrl => "DKRL",
            Method::Ssp => "SSP",
            Method::Ckrl => "CKRL",
            Method::PgeCnnTransE => "PGE(CNN)-TransE",
            Method::PgeCnnRotatE => "PGE(CNN)-RotatE",
            Method::PgeCnnRotatENoNa => "PGE(CNN)-RotatE w/o noise-aware",
            Method::PgeBertRotatE => "PGE(BERT)-RotatE",
        }
    }

    /// The transductive Table 3 roster (RotatE+ applies only to the
    /// catalog, mirroring the paper's footnote).
    pub fn table3(catalog: bool) -> Vec<Method> {
        let mut m = vec![
            Method::Lstm,
            Method::Transformer,
            Method::TransE,
            Method::DistMult,
            Method::ComplEx,
            Method::RotatE,
        ];
        if catalog {
            m.push(Method::RotatEPlus);
        }
        m.extend([
            Method::Dkrl,
            Method::Ssp,
            Method::Ckrl,
            Method::PgeCnnTransE,
            Method::PgeCnnRotatE,
        ]);
        m
    }

    /// The inductive Table 4 roster (id-based KGE cannot represent
    /// unseen entities, as §4.4 argues).
    pub fn table4() -> Vec<Method> {
        vec![
            Method::Lstm,
            Method::Transformer,
            Method::Dkrl,
            Method::Ssp,
            Method::PgeCnnTransE,
            Method::PgeCnnRotatE,
        ]
    }
}

/// A trained method ready for evaluation.
pub struct TrainedMethod {
    pub method: Method,
    pub detector: Box<dyn ErrorDetector>,
    pub train_secs: f64,
}

/// PGE config for a method at a scale (shared with Table 5).
pub fn pge_config(method: Method, scale: &Scale) -> PgeConfig {
    let score = match method {
        Method::PgeCnnTransE => ScoreKind::TransE,
        _ => ScoreKind::RotatE,
    };
    PgeConfig {
        score,
        encoder: if method == Method::PgeBertRotatE {
            EncoderKind::Bert
        } else {
            EncoderKind::Cnn
        },
        noise_aware: method != Method::PgeCnnRotatENoNa,
        // PGE converges slower per epoch than id-based KGE (its
        // "tables" are shared text parameters); 1.5× epochs evens the
        // budget out.
        epochs: scale.epochs * 3 / 2,
        dim: 48,
        seed: scale.seed ^ 0xb0b,
        ..PgeConfig::default()
    }
}

/// Train one method on a dataset.
pub fn train_method(dataset: &Dataset, method: Method, scale: &Scale) -> TrainedMethod {
    let seed = scale.seed ^ 0xb0b;
    match method {
        Method::Lstm | Method::Transformer => {
            let arch = if method == Method::Lstm {
                NlpArch::Lstm
            } else {
                NlpArch::Transformer
            };
            let m = train_nlp(
                dataset,
                &NlpConfig {
                    epochs: scale.nlp_epochs,
                    seed,
                    ..NlpConfig::for_arch(arch)
                },
            );
            TrainedMethod {
                method,
                train_secs: m.train_secs,
                detector: Box::new(m),
            }
        }
        Method::TransE | Method::DistMult | Method::ComplEx | Method::RotatE => {
            let score = match method {
                Method::TransE => ScoreKind::TransE,
                Method::DistMult => ScoreKind::DistMult,
                Method::ComplEx => ScoreKind::ComplEx,
                _ => ScoreKind::RotatE,
            };
            // RotatE needs a wider embedding and larger margin to
            // shine (Sun et al. use dim 1000, γ up to 24).
            let (dim, gamma) = if method == Method::RotatE {
                (64, 12.0)
            } else {
                (KgeConfig::default().dim, KgeConfig::default().gamma)
            };
            let m = train_kge(
                dataset,
                &KgeConfig {
                    score,
                    dim,
                    gamma,
                    epochs: scale.epochs * 2, // cheap per epoch
                    seed,
                    ..KgeConfig::default()
                },
            );
            TrainedMethod {
                method,
                train_secs: m.train_secs,
                detector: Box::new(m),
            }
        }
        Method::RotatEPlus => {
            let m = train_rotate_plus(
                dataset,
                &KgeConfig {
                    dim: 64,
                    gamma: 12.0,
                    epochs: scale.epochs * 2,
                    seed,
                    ..KgeConfig::default()
                },
            );
            TrainedMethod {
                method,
                train_secs: m.train_secs,
                detector: Box::new(m),
            }
        }
        Method::Dkrl => {
            let m = train_dkrl(
                dataset,
                &DkrlConfig {
                    epochs: scale.epochs,
                    seed,
                    ..DkrlConfig::default()
                },
            );
            TrainedMethod {
                method,
                train_secs: m.train_secs,
                detector: Box::new(m),
            }
        }
        Method::Ssp => {
            let m = train_ssp(
                dataset,
                &SspConfig {
                    epochs: scale.epochs * 2,
                    seed,
                    ..SspConfig::default()
                },
            );
            TrainedMethod {
                method,
                train_secs: m.train_secs,
                detector: Box::new(m),
            }
        }
        Method::Ckrl => {
            let m = train_ckrl(
                dataset,
                &CkrlConfig {
                    epochs: scale.epochs * 2,
                    seed,
                    ..CkrlConfig::default()
                },
            );
            TrainedMethod {
                method,
                train_secs: m.train_secs,
                detector: Box::new(m),
            }
        }
        Method::PgeCnnTransE
        | Method::PgeCnnRotatE
        | Method::PgeCnnRotatENoNa
        | Method::PgeBertRotatE => {
            let mut cfg = pge_config(method, scale);
            // Relation-rich KGs (FB-like) benefit from diverse initial
            // rotations; few-attribute catalogs prefer near-identity
            // (see PgeConfig::rotate_phase_init).
            cfg.rotate_phase_init = dataset.graph.num_attrs() > 20;
            let out = train_pge(dataset, &cfg);
            TrainedMethod {
                method,
                train_secs: out.train_secs,
                detector: Box::new(out.model),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_match_paper() {
        assert_eq!(Method::table3(true).len(), 12);
        assert_eq!(Method::table3(false).len(), 11);
        assert!(!Method::table4().contains(&Method::RotatE));
        assert!(Method::table4().contains(&Method::Dkrl));
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(Method::PgeCnnRotatE.label(), "PGE(CNN)-RotatE");
        assert_eq!(Method::RotatEPlus.label(), "RotatE+");
    }

    #[test]
    fn every_method_trains_on_tiny_data() {
        let scale = Scale {
            products: 120,
            labeled: 40,
            fb_triples: 400,
            epochs: 1,
            nlp_epochs: 1,
            seed: 7,
        };
        let d = scale.amazon();
        for m in Method::table3(true) {
            let tm = train_method(&d, m, &scale);
            let f = tm.detector.plausibility(&d.graph, &d.test[0].triple);
            assert!(f.is_finite(), "{m:?} produced non-finite score");
        }
    }
}
