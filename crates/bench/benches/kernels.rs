//! Microbenchmarks of the hot kernels under every experiment: text
//! encoders, scoring functions, sampling, and metric computation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pge_core::{ScoreKind, Scorer};
use pge_datagen::{generate_catalog, CatalogConfig};
use pge_eval::{average_precision, Scored};
use pge_graph::{NegativeSampler, SamplingMode};
use pge_nn::{CnnConfig, Embedding, Lstm, TextCnnEncoder, TransformerConfig, TransformerEncoder};
use pge_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = pge_tensor::init::xavier_uniform(&mut rng, 64, 64);
    let b = pge_tensor::init::xavier_uniform(&mut rng, 64, 64);
    c.bench_function("matrix/matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    c.bench_function("matrix/matmul_transposed_64x64", |bench| {
        bench.iter(|| black_box(a.matmul_transposed(&b)))
    });
}

fn bench_encoders(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let vocab = 2000;
    let tokens: Vec<u32> = (0..20).map(|i| (i * 37 % vocab) as u32).collect();

    let cnn = TextCnnEncoder::new(&mut rng, CnnConfig::small(vocab, 48));
    c.bench_function("encoder/cnn_infer_20_tokens", |b| {
        b.iter(|| black_box(cnn.infer(&tokens)))
    });
    let (_, cache) = cnn.forward(&tokens);
    let grad = vec![0.1f32; 48];
    let mut cnn_mut = cnn.clone();
    c.bench_function("encoder/cnn_backward_20_tokens", |b| {
        b.iter(|| cnn_mut.backward(black_box(&cache), black_box(&grad)))
    });

    let lstm = Lstm::new(&mut rng, vocab, 32, 32, 24);
    c.bench_function("encoder/lstm_infer_20_tokens", |b| {
        b.iter(|| black_box(lstm.infer(&tokens)))
    });

    let shallow = TransformerEncoder::new(&mut rng, TransformerConfig::baseline(vocab));
    c.bench_function("encoder/transformer_infer_20_tokens", |b| {
        b.iter(|| black_box(shallow.infer(&tokens)))
    });

    // The Table-5 contrast: the BERT-style encoder per-call cost.
    let bert = TransformerEncoder::new(&mut rng, TransformerConfig::bert_style(vocab));
    c.bench_function("encoder/bert_style_infer_20_tokens", |b| {
        b.iter(|| black_box(bert.infer(&tokens)))
    });
}

fn bench_scorers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let d = 48;
    let h: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let t: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for kind in [
        ScoreKind::TransE,
        ScoreKind::RotatE,
        ScoreKind::DistMult,
        ScoreKind::ComplEx,
    ] {
        let s = Scorer::new(kind, 6.0);
        let r: Vec<f32> = (0..s.rel_dim(d))
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        c.bench_function(&format!("score/{}", kind.name()), |b| {
            b.iter(|| black_box(s.score(&h, &r, &t)))
        });
        let mut dh = vec![0.0; d];
        let mut dr = vec![0.0; r.len()];
        let mut dt = vec![0.0; d];
        c.bench_function(&format!("score/{}_backward", kind.name()), |b| {
            b.iter(|| s.backward(&h, &r, &t, black_box(1.0), &mut dh, &mut dr, &mut dt))
        });
    }
}

fn bench_sampling_and_metrics(c: &mut Criterion) {
    let data = generate_catalog(&CatalogConfig::tiny());
    let sampler = NegativeSampler::new(&data.graph, SamplingMode::GlobalUniform);
    let mut rng = StdRng::seed_from_u64(4);
    let triple = data.train[0];
    c.bench_function("sampler/negative_sample_x4", |b| {
        b.iter(|| black_box(sampler.sample(&mut rng, &triple, 4)))
    });

    let scored: Vec<Scored> = (0..5000)
        .map(|i| Scored::new((i * 2654435761u64 % 1000) as f32, i % 2 == 0))
        .collect();
    c.bench_function("eval/pr_auc_5000", |b| {
        b.iter(|| black_box(average_precision(&scored)))
    });
}

fn bench_embedding_update(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut emb = Embedding::new(&mut rng, 10_000, 48);
    let grad = vec![0.01f32; 48];
    let hp = pge_nn::AdamHparams::default();
    let mut t = 0u64;
    c.bench_function("embedding/sparse_accumulate_and_step_8_rows", |b| {
        b.iter(|| {
            for id in 0..8u32 {
                emb.accumulate_grad(id * 1000, &grad);
            }
            t += 1;
            emb.adam_step(&hp, t);
        })
    });
    let _ = Matrix::zeros(1, 1);
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul,
        bench_encoders,
        bench_scorers,
        bench_sampling_and_metrics,
        bench_embedding_update
);
criterion_main!(kernels);
