//! One Criterion group per paper table/figure, timing the unit of
//! work that dominates each experiment. The `repro` binary produces
//! the actual table/figure *values*; these benches track the *cost* of
//! regenerating them so performance regressions are caught.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use pge_bench::{evaluate_detector, pge_config, train_method, Method, Scale};
use pge_core::{train_pge, ConfidenceStore, PgeConfig};
use pge_datagen::{generate_catalog, CatalogConfig};
use rand::SeedableRng;

fn micro_scale() -> Scale {
    Scale {
        products: 150,
        labeled: 60,
        fb_triples: 600,
        epochs: 1,
        nlp_epochs: 1,
        seed: 3,
    }
}

/// Table 2: dataset generation cost.
fn bench_table2_generation(c: &mut Criterion) {
    let s = micro_scale();
    c.bench_function("table2/generate_catalog", |b| {
        b.iter(|| black_box(s.amazon()))
    });
    c.bench_function("table2/generate_fbkg", |b| b.iter(|| black_box(s.fb())));
}

/// Table 3 / Fig. 2: one training epoch of the headline methods on the
/// transductive catalog.
fn bench_table3_epochs(c: &mut Criterion) {
    let s = micro_scale();
    let d = s.amazon();
    for method in [Method::RotatE, Method::Transformer, Method::PgeCnnRotatE] {
        c.bench_function(&format!("table3/one_epoch_{}", method.label()), |b| {
            b.iter(|| black_box(train_method(&d, method, &s)))
        });
    }
}

/// Table 4: inductive split construction + PGE inference on unseen
/// entities (the part transductive evaluation doesn't exercise).
fn bench_table4_inductive(c: &mut Criterion) {
    let s = micro_scale();
    let base = s.amazon_with_unseen();
    c.bench_function("table4/to_inductive", |b| {
        b.iter(|| black_box(base.to_inductive()))
    });
    let d = base.to_inductive();
    let trained = train_pge(&d, &pge_config(Method::PgeCnnRotatE, &s));
    c.bench_function("table4/pge_score_unseen_test_split", |b| {
        b.iter(|| {
            black_box(evaluate_detector(
                &trained.model,
                &d,
                &d.test,
                &[0.6, 0.7, 0.8],
            ))
        })
    });
}

/// Table 5: per-epoch cost at two sample ratios for CNN vs BERT
/// encoders — the scalability contrast.
fn bench_table5_scaling(c: &mut Criterion) {
    let s = micro_scale();
    let full = s.amazon();
    for ratio in [0.3, 1.0] {
        let d = full.sample_train(ratio);
        c.bench_function(&format!("table5/pge_cnn_epoch_ratio_{ratio}"), |b| {
            b.iter(|| black_box(train_method(&d, Method::PgeCnnRotatE, &s)))
        });
    }
    // The BERT encoder is benched at the smallest ratio only: its cost
    // is the point, not a surprise.
    let d = full.sample_train(0.3);
    c.bench_function("table5/pge_bert_epoch_ratio_0.3", |b| {
        b.iter(|| black_box(train_method(&d, Method::PgeBertRotatE, &s)))
    });
}

/// Table 6: ranking all test triples by plausibility.
fn bench_table6_ranking(c: &mut Criterion) {
    let s = micro_scale();
    let d = s.amazon();
    let trained = train_pge(&d, &pge_config(Method::PgeCnnRotatE, &s));
    let det = pge_core::Detector::fit(&trained.model, &d.graph, &d.valid);
    let triples: Vec<_> = d.test.iter().map(|lt| lt.triple).collect();
    c.bench_function("table6/rank_errors", |b| {
        b.iter(|| black_box(det.rank_errors(&d.graph, &triples)))
    });
}

/// Fig. 5: the confidence-score update (Eq. 6) per training triple.
fn bench_fig5_confidence(c: &mut Criterion) {
    c.bench_function("fig5/confidence_update_x1000", |b| {
        b.iter_batched(
            || ConfidenceStore::new(1000, 1.2, 0.05, 0.03),
            |mut store| {
                for i in 0..1000 {
                    store.update(i, (i % 7) as f32 * 0.3);
                }
                black_box(store)
            },
            BatchSize::SmallInput,
        )
    });
}

/// Fig. 6: noise-aware vs plain training epoch on a noisy catalog.
fn bench_fig6_noise_aware(c: &mut Criterion) {
    let mut d = generate_catalog(&CatalogConfig {
        products: 150,
        labeled: 60,
        seed: 3,
        ..CatalogConfig::default()
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let (train, clean) = pge_graph::inject_noise(&d.graph, &d.train, 0.15, &mut rng);
    d.train = train;
    d.train_clean = clean;
    for noise_aware in [true, false] {
        let cfg = PgeConfig {
            epochs: 1,
            noise_aware,
            confidence_warmup: 0,
            ..PgeConfig::tiny()
        };
        let name = if noise_aware {
            "fig6/epoch_with_noise_aware"
        } else {
            "fig6/epoch_without_noise_aware"
        };
        c.bench_function(name, |b| b.iter(|| black_box(train_pge(&d, &cfg))));
    }
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_table2_generation,
        bench_table3_epochs,
        bench_table4_inductive,
        bench_table5_scaling,
        bench_table6_ranking,
        bench_fig5_confidence,
        bench_fig6_noise_aware
);
criterion_main!(experiments);
