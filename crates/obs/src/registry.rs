//! A registry of named counters, gauges, and histograms with a
//! Prometheus text renderer (exposition format 0.0.4).
//!
//! Naming convention: `pge_<subsystem>_<name>{_unit}` — e.g.
//! `pge_serve_stage_encode_seconds`, `pge_train_epochs_total`. The
//! registry enforces the character set (Prometheus' `[a-zA-Z0-9_:]`)
//! and that one name keeps one kind for the life of the process.
//!
//! Handles ([`Counter`], [`Gauge`], [`AtomicHistogram`]) are `Arc`s:
//! register once at startup, stash the handle, and update it on the
//! hot path with relaxed atomics — the registry lock is only taken at
//! registration and render time.

use crate::hist::AtomicHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value — only for mirroring an *external* monotone
    /// source (e.g. a cache's own hit counter) into the registry just
    /// before rendering; never mix with `inc`/`add` on the same
    /// counter.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits in
/// an atomic so `set`/`get` need no lock.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    metric: Metric,
}

/// A set of named metrics rendered together. Most binaries use one
/// registry per process ([`global`]); `pge-serve` owns one per server
/// so concurrently running servers (e.g. in tests) don't share state.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Entry>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// Panics on an invalid metric name or if `name` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        match self.register(name, help, || Metric::Counter(Arc::default())) {
            Metric::Counter(c) => c,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// As [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.register(name, help, || Metric::Gauge(Arc::default())) {
            Metric::Gauge(g) => g,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    /// Get or register the histogram `name`; `bounds` only apply on
    /// first registration.
    ///
    /// # Panics
    /// As [`MetricsRegistry::counter`], or if `bounds` are invalid on
    /// first registration.
    pub fn histogram(&self, name: &str, help: &str, bounds: Vec<f64>) -> Arc<AtomicHistogram> {
        match self.register(name, help, || {
            Metric::Histogram(Arc::new(AtomicHistogram::new(bounds)))
        }) {
            Metric::Histogram(h) => h,
            m => panic!("metric {name} already registered as a {}", m.kind()),
        }
    }

    fn register(&self, name: &str, help: &str, make: impl FnOnce() -> Metric) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: make(),
        });
        match &entry.metric {
            Metric::Counter(c) => Metric::Counter(c.clone()),
            Metric::Gauge(g) => Metric::Gauge(g.clone()),
            Metric::Histogram(h) => Metric::Histogram(h.clone()),
        }
    }

    /// Render every metric in the Prometheus text format, sorted by
    /// name.
    pub fn render(&self) -> String {
        // Refresh the process-wide RSS high-water mark on every
        // scrape, so any `/metrics` endpoint (serve, gateway, the
        // global registry) exports it without per-binary wiring.
        if let Some(rss) = crate::manifest::peak_rss_bytes() {
            self.gauge(
                "pge_process_peak_rss_bytes",
                "Peak resident set size (VmHWM) of this process",
            )
            .set(rss as f64);
        }
        let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, entry) in map.iter() {
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
            let _ = writeln!(out, "# TYPE {name} {}", entry.metric.kind());
            match &entry.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (bound, c) in h.bounds().iter().zip(&counts) {
                        cumulative += c;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                    }
                    cumulative += counts.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {cumulative}");
                }
            }
        }
        out
    }
}

/// Validate Prometheus text exposition (format 0.0.4), as scraped
/// from a `/metrics` endpoint. Checks the invariants a real scraper
/// relies on:
///
/// * every sample belongs to a family with a `# TYPE` line *before*
///   its first sample (histogram `_bucket`/`_sum`/`_count` and
///   summary `_sum`/`_count` suffixes resolve to their base family);
/// * at most one `# TYPE` / `# HELP` line per family (unique names);
/// * no duplicate `name{labels}` series;
/// * names match `[a-zA-Z_:][a-zA-Z0-9_:]*` and values parse as
///   floats (`+Inf`/`-Inf`/`NaN` included).
///
/// CI scrapes a live gateway and runs this; it is also unit-tested
/// against [`MetricsRegistry::render`] so renderer and validator
/// can't drift apart.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut sampled_families: BTreeSet<String> = BTreeSet::new();
    let mut series_seen: BTreeSet<String> = BTreeSet::new();

    // Resolve a sample name to its declared family, honoring the
    // histogram/summary child-sample suffixes.
    let family_of = |name: &str, types: &BTreeMap<String, String>| -> Option<String> {
        if types.contains_key(name) {
            return Some(name.to_string());
        }
        for (suffix, kinds) in [
            ("_bucket", &["histogram"][..]),
            ("_sum", &["histogram", "summary"][..]),
            ("_count", &["histogram", "summary"][..]),
        ] {
            if let Some(base) = name.strip_suffix(suffix) {
                if types.get(base).is_some_and(|k| kinds.contains(&k.as_str())) {
                    return Some(base.to_string());
                }
            }
        }
        None
    };

    for (ix, raw) in text.lines().enumerate() {
        let ln = ix + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("").trim();
            if !valid_name(name) {
                return Err(format!("line {ln}: invalid metric name {name:?}"));
            }
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("line {ln}: unknown TYPE {kind:?} for {name}"));
            }
            if sampled_families.contains(name) {
                return Err(format!("line {ln}: TYPE for {name} after its samples"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {ln}: duplicate TYPE line for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("line {ln}: invalid metric name {name:?}"));
            }
            if !helps.insert(name.to_string()) {
                return Err(format!("line {ln}: duplicate HELP line for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        // A sample: `name[{labels}] value [timestamp]`.
        let (series, rest) = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|c| open + c)
                    .ok_or_else(|| format!("line {ln}: unterminated label set"))?;
                (&line[..=close], &line[close + 1..])
            }
            None => {
                let cut = line.find(char::is_whitespace).unwrap_or(line.len());
                (&line[..cut], &line[cut..])
            }
        };
        let name = &series[..series.find('{').unwrap_or(series.len())];
        if !valid_name(name) {
            return Err(format!("line {ln}: invalid sample name {name:?}"));
        }
        let mut fields = rest.split_whitespace();
        let value = fields
            .next()
            .ok_or_else(|| format!("line {ln}: sample {name} has no value"))?;
        if !matches!(value, "+Inf" | "-Inf" | "NaN") && value.parse::<f64>().is_err() {
            return Err(format!("line {ln}: unparseable value {value:?} for {name}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {ln}: unparseable timestamp {ts:?}"));
            }
        }
        if fields.next().is_some() {
            return Err(format!("line {ln}: trailing garbage after sample"));
        }
        let family = family_of(name, &types)
            .ok_or_else(|| format!("line {ln}: sample {name} has no preceding TYPE line"))?;
        sampled_families.insert(family);
        if !series_seen.insert(series.to_string()) {
            return Err(format!("line {ln}: duplicate series {series}"));
        }
    }
    Ok(())
}

/// The process-wide registry. Binaries that expose one metrics
/// endpoint (or print one report) per process register here.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let r = MetricsRegistry::new();
        let c = r.counter("pge_test_items_total", "Items seen.");
        c.inc();
        c.add(2);
        let g = r.gauge("pge_test_resident", "Resident entries.");
        g.set(7.5);
        let text = r.render();
        assert!(
            text.contains("# TYPE pge_test_items_total counter"),
            "{text}"
        );
        assert!(text.contains("pge_test_items_total 3"));
        assert!(text.contains("# TYPE pge_test_resident gauge"));
        assert!(text.contains("pge_test_resident 7.5"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("pge_test_latency_seconds", "Latency.", vec![0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render();
        assert!(
            text.contains("pge_test_latency_seconds_bucket{le=\"0.1\"} 1"),
            "{text}"
        );
        assert!(text.contains("pge_test_latency_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("pge_test_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("pge_test_latency_seconds_count 3"));
    }

    #[test]
    fn reregistration_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("pge_x_total", "x");
        let b = r.counter("pge_x_total", "different help ignored");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn output_is_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.counter("pge_b_total", "b");
        r.counter("pge_a_total", "a");
        let text = r.render();
        let a = text.find("pge_a_total").unwrap();
        let b = text.find("pge_b_total").unwrap();
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("pge_x_total", "x");
        r.gauge("pge_x_total", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_rejected() {
        MetricsRegistry::new().counter("pge metrics with spaces", "nope");
    }

    #[test]
    fn rendered_output_passes_exposition_validation() {
        let r = MetricsRegistry::new();
        r.counter("pge_v_requests_total", "Requests.").add(3);
        r.gauge("pge_v_version", "Version.").set(2.0);
        let h = r.histogram("pge_v_latency_seconds", "Latency.", vec![0.1, 1.0]);
        h.observe(0.05);
        h.observe(5.0);
        validate_exposition(&r.render()).expect("renderer emits valid exposition");
    }

    #[test]
    fn exposition_validator_catches_malformations() {
        // A sample with no TYPE line.
        let err = validate_exposition("pge_x_total 1\n").unwrap_err();
        assert!(err.contains("no preceding TYPE"), "{err}");
        // TYPE after its samples.
        let err =
            validate_exposition("# TYPE pge_a counter\npge_a 1\npge_x 2\n# TYPE pge_x counter\n")
                .unwrap_err();
        assert!(err.contains("no preceding TYPE"), "{err}");
        // Duplicate TYPE line (non-unique name).
        let err = validate_exposition("# TYPE pge_a counter\n# TYPE pge_a gauge\n").unwrap_err();
        assert!(err.contains("duplicate TYPE"), "{err}");
        // Duplicate label set.
        let err = validate_exposition(
            "# TYPE pge_h histogram\npge_h_bucket{le=\"1\"} 1\npge_h_bucket{le=\"1\"} 2\n",
        )
        .unwrap_err();
        assert!(err.contains("duplicate series"), "{err}");
        // Unparseable value.
        let err = validate_exposition("# TYPE pge_a counter\npge_a banana\n").unwrap_err();
        assert!(err.contains("unparseable value"), "{err}");
        // Unknown kind.
        let err = validate_exposition("# TYPE pge_a widget\n").unwrap_err();
        assert!(err.contains("unknown TYPE"), "{err}");
        // Histogram child samples resolve to their base family.
        validate_exposition(
            "# TYPE pge_h histogram\npge_h_bucket{le=\"+Inf\"} 3\npge_h_sum 4.5\npge_h_count 3\n",
        )
        .expect("histogram suffixes resolve");
        // Inf/NaN values are legal exposition.
        validate_exposition("# TYPE pge_g gauge\npge_g +Inf\n").expect("+Inf is valid");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn render_exports_process_peak_rss() {
        let r = MetricsRegistry::new();
        let text = r.render();
        assert!(
            text.contains("# TYPE pge_process_peak_rss_bytes gauge"),
            "{text}"
        );
        let line = text
            .lines()
            .find(|l| l.starts_with("pge_process_peak_rss_bytes "))
            .expect("sample present");
        let v: f64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(v > 0.0, "{line}");
        validate_exposition(&text).expect("still valid exposition");
    }

    #[test]
    fn global_is_a_singleton() {
        let c = global().counter("pge_global_probe_total", "probe");
        c.inc();
        assert_eq!(global().counter("pge_global_probe_total", "probe").get(), 1);
    }
}
