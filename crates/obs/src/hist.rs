//! A lock-free histogram for concurrent latency/value recording.
//!
//! Moved here from `pge-eval` (which re-exports it) so that metrics
//! registries, span timers, and the serving stack share one
//! implementation. `observe` is two relaxed atomic adds, so it is
//! safe on a request hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram with explicit ascending bucket upper bounds that can
/// be observed from many threads without locking. Built for latency
/// tracking (Prometheus-style cumulative `le` buckets), but the value
/// domain is arbitrary.
///
/// Edge-case contract:
/// * `NaN` observations are dropped (counted nowhere) — they carry no
///   ordering information, and Prometheus clients do the same;
/// * `+Inf` (and any value beyond the last bound) lands in the
///   overflow bucket, visible via [`AtomicHistogram::overflow_count`];
/// * the running sum saturates instead of wrapping, and each
///   observation's contribution is clamped to what fits in the
///   fixed-point accumulator.
#[derive(Debug)]
pub struct AtomicHistogram {
    /// Ascending upper bounds; values above the last bound land in an
    /// implicit `+Inf` bucket.
    bounds: Vec<f64>,
    /// One counter per bound plus the `+Inf` overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observations in fixed-point microunits (value × 1e6),
    /// so the hot path needs no float CAS loop.
    sum_micro: AtomicU64,
}

impl AtomicHistogram {
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite and strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            bounds,
            counts,
            sum_micro: AtomicU64::new(0),
        }
    }

    /// Geometric bucket ladder `start, start*factor, ...` — the usual
    /// shape for latencies, where tail resolution matters at every
    /// scale.
    ///
    /// # Panics
    /// Panics unless `start > 0`, `factor > 1`, and `n >= 1`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n >= 1, "bad bucket ladder");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        AtomicHistogram::new(bounds)
    }

    /// Record one observation. Negative values count toward the first
    /// bucket (and clamp to 0 in the sum); `NaN` is dropped.
    pub fn observe(&self, x: f64) {
        if x.is_nan() {
            return;
        }
        let ix = self.bounds.partition_point(|b| *b < x);
        self.counts[ix].fetch_add(1, Ordering::Relaxed);
        // Clamp the fixed-point contribution so one huge observation
        // cannot wrap the accumulator on its own; saturate the sum so
        // long-running processes degrade to "pegged" rather than
        // wrapping to nonsense.
        let micro = (x.max(0.0) * 1e6).min(u64::MAX as f64 / 2.0) as u64;
        let _ = self
            .sum_micro
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_add(micro))
            });
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the `+Inf` bucket). A racing
    /// `observe` may or may not be included — each counter is read
    /// atomically but the vector is not a consistent snapshot.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Observations that exceeded the last bound (the `+Inf` bucket).
    pub fn overflow_count(&self) -> u64 {
        self.counts[self.counts.len() - 1].load(Ordering::Relaxed)
    }

    /// Sum of observations (microunit resolution, saturating).
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0 <= q <= 1`), i.e. a conservative estimate in bucket
    /// resolution. Quantiles that land in the overflow bucket report
    /// the last bound — the histogram cannot resolve beyond it (check
    /// [`AtomicHistogram::overflow_count`] when that matters).
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (ix, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bounds[ix.min(self.bounds.len() - 1)]);
            }
        }
        Some(self.bounds[self.bounds.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_buckets_and_overflow() {
        let h = AtomicHistogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.observe(x);
        }
        // partition_point(< x): exact bound values land in their own
        // bucket (le semantics).
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.overflow_count(), 1);
        assert!((h.sum() - 556.5).abs() < 1e-3);
    }

    #[test]
    fn atomic_quantiles() {
        let h = AtomicHistogram::exponential(1.0, 2.0, 8); // 1,2,4,...,128
        for _ in 0..90 {
            h.observe(1.5); // bucket le=2
        }
        for _ in 0..10 {
            h.observe(100.0); // bucket le=128
        }
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.99), Some(128.0));
        assert_eq!(
            AtomicHistogram::exponential(1.0, 2.0, 3).quantile(0.5),
            None
        );
    }

    #[test]
    fn atomic_observe_is_thread_safe() {
        let h = AtomicHistogram::exponential(1e-6, 4.0, 12);
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn values_beyond_last_bound_report_last_bound() {
        let h = AtomicHistogram::new(vec![1.0]);
        h.observe(99.0);
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.overflow_count(), 1);
    }

    #[test]
    fn single_bucket_saturation_stays_consistent() {
        let h = AtomicHistogram::new(vec![2.5]);
        for _ in 0..100 {
            h.observe(1.0); // in-range
        }
        for _ in 0..100 {
            h.observe(1e9); // all overflow
        }
        assert_eq!(h.count(), 200);
        assert_eq!(h.overflow_count(), 100);
        assert_eq!(h.bucket_counts(), vec![100, 100]);
        // Every resolvable quantile reports the only bound.
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(2.5));
        }
    }

    #[test]
    fn q999_on_saturated_histogram_reports_last_finite_bound() {
        // Regression: a quantile that lands in the +Inf overflow
        // bucket must clamp to the last *finite* bound — never index
        // past the bounds array and never report None/Inf.
        let h = AtomicHistogram::exponential(0.001, 2.0, 10);
        for _ in 0..10_000 {
            h.observe(1e12); // every observation overflows
        }
        assert_eq!(h.overflow_count(), 10_000);
        let last = *h.bounds().last().unwrap();
        for q in [0.5, 0.99, 0.999, 1.0] {
            let v = h.quantile(q).expect("saturated histogram has data");
            assert!(v.is_finite(), "q={q} leaked a non-finite bound");
            assert_eq!(v, last, "q={q} must clamp to the last finite bound");
        }
        // Mixed load: one in-range observation, 999 overflowing —
        // q=0.999 lands squarely in the overflow bucket.
        let h = AtomicHistogram::new(vec![1.0, 2.0, 4.0]);
        h.observe(0.5);
        for _ in 0..999 {
            h.observe(1e9);
        }
        assert_eq!(h.quantile(0.999), Some(4.0));
    }

    #[test]
    fn nan_is_dropped_and_infinity_overflows() {
        let h = AtomicHistogram::new(vec![1.0, 2.0]);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        h.observe(f64::INFINITY);
        assert_eq!((h.count(), h.overflow_count()), (1, 1));
        assert!(h.sum().is_finite());
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = AtomicHistogram::new(vec![1.0]);
        for _ in 0..4 {
            h.observe(f64::MAX);
        }
        assert_eq!(h.count(), 4);
        // Saturated, not wrapped: the sum is pegged at the max.
        assert!(h.sum() >= u64::MAX as f64 / 2.0 / 1e6);
    }

    #[test]
    #[should_panic(expected = "histogram needs at least one bound")]
    fn rejects_empty_bounds() {
        let _ = AtomicHistogram::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_bounds() {
        let _ = AtomicHistogram::new(vec![2.0, 1.0]);
    }
}
