//! A small JSON parser/serializer shared by the run-log sink, the
//! `pge report` reader, and `pge-serve`'s wire protocol (which
//! re-exports this module).
//!
//! The build environment is offline, so there is no serde; this
//! implements RFC 8259 minus two liberties we don't need to take:
//! numbers are parsed as `f64`, and `\u` escapes outside the BMP must
//! come as surrogate pairs (lone surrogates are rejected).

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Value of `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization: `Display` renders compact JSON.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so
                    // boundaries are valid by construction).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require the low half.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            Err(self.err("lone surrogate"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("lone surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"items":[{"t":"chips","n":1}, 2, "x"],"ok":true}"#).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let items = v.get("items").unwrap().as_array().unwrap();
        assert_eq!(items[0].get("t").unwrap().as_str(), Some("chips"));
        assert_eq!(items[1].as_f64(), Some(2.0));
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{1}é€😀".into());
        let rendered = original.to_string();
        assert_eq!(parse(&rendered).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00x""#).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "01x",
            "\"abc",
            "{\"a\":}",
            "[1 2]",
            "1 2",
            "{\"a\" 1}",
            "nul",
            "+1",
            "1.",
            "1e",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let s = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&s).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn float_display_round_trips_f32() {
        for &x in &[1.25f32, -0.33333334, 1e-20, 3.4e38, 0.1] {
            let j = Json::Num(x as f64).to_string();
            let back = parse(&j).unwrap().as_f64().unwrap() as f32;
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {j}");
        }
    }

    #[test]
    fn nonfinite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
