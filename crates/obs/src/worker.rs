//! Per-worker busy/idle accounting for worker-pool pipelines.
//!
//! The span machinery ([`crate::span`]) times *code paths*, but a
//! span around a worker's scoring loop silently includes the time the
//! worker spends blocked on channel handoff — which is exactly how
//! the scan pipeline's serialization bug (every worker pulling from
//! one `Mutex<Receiver>`) stayed invisible: total "score" time looked
//! healthy while workers took turns running. A [`WorkerLedger`]
//! separates the two by charging only the time a worker actively
//! processes one unit of work; everything else within the pipeline's
//! wall window is idle (waiting for work, for downstream capacity, or
//! for the pool to finish).
//!
//! Cheap enough to stay always-on: one `Instant` pair and two relaxed
//! atomic adds per chunk, on a path that processes thousands of rows
//! per chunk.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Busy-time ledger shared by the workers of one pipeline run.
#[derive(Debug)]
pub struct WorkerLedger {
    slots: Vec<Slot>,
}

#[derive(Debug, Default)]
struct Slot {
    busy_nanos: AtomicU64,
    chunks: AtomicU64,
}

/// Snapshot of one worker's accumulated activity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerStats {
    /// Time spent actively processing work units.
    pub busy: Duration,
    /// Work units completed.
    pub chunks: u64,
}

impl WorkerLedger {
    /// A ledger for `n` workers (indices `0..n`).
    pub fn new(n: usize) -> Self {
        WorkerLedger {
            slots: (0..n).map(|_| Slot::default()).collect(),
        }
    }

    /// Number of workers tracked.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Charge `busy` processing time for one completed work unit to
    /// worker `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn record(&self, idx: usize, busy: Duration) {
        let slot = &self.slots[idx];
        slot.busy_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        slot.chunks.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-worker snapshot, in worker order.
    pub fn stats(&self) -> Vec<WorkerStats> {
        self.slots
            .iter()
            .map(|s| WorkerStats {
                busy: Duration::from_nanos(s.busy_nanos.load(Ordering::Relaxed)),
                chunks: s.chunks.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total busy time across all workers.
    pub fn total_busy(&self) -> Duration {
        self.stats().iter().map(|s| s.busy).sum()
    }

    /// Effective parallelism over a wall-clock window: total busy
    /// time divided by the window. 1.0 means the pool did one core's
    /// worth of concurrent work — the signature of a serialized pool
    /// regardless of its worker count.
    pub fn effective_parallelism(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            return 0.0;
        }
        self.total_busy().as_secs_f64() / wall.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_worker() {
        let l = WorkerLedger::new(3);
        l.record(0, Duration::from_millis(5));
        l.record(0, Duration::from_millis(7));
        l.record(2, Duration::from_millis(11));
        let s = l.stats();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].chunks, 2);
        assert_eq!(s[0].busy, Duration::from_millis(12));
        assert_eq!(s[1].chunks, 0);
        assert_eq!(s[1].busy, Duration::ZERO);
        assert_eq!(s[2].chunks, 1);
        assert_eq!(l.total_busy(), Duration::from_millis(23));
    }

    #[test]
    fn effective_parallelism_ratio() {
        let l = WorkerLedger::new(4);
        for i in 0..4 {
            l.record(i, Duration::from_millis(250));
        }
        let p = l.effective_parallelism(Duration::from_millis(500));
        assert!((p - 2.0).abs() < 1e-9, "p={p}");
        assert_eq!(l.effective_parallelism(Duration::ZERO), 0.0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let l = WorkerLedger::new(8);
        std::thread::scope(|sc| {
            for w in 0..8 {
                let l = &l;
                sc.spawn(move || {
                    for _ in 0..1000 {
                        l.record(w, Duration::from_nanos(1000));
                    }
                });
            }
        });
        for s in l.stats() {
            assert_eq!(s.chunks, 1000);
            assert_eq!(s.busy, Duration::from_micros(1000));
        }
    }
}
