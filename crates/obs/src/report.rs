//! `pge report` — turn a JSONL run log into a human-readable summary:
//! loss-curve sparkline, confidence-polarization trend, eval metrics,
//! serve latency quantiles, and the hottest spans.

use crate::json::{parse, Json};
use std::fmt::Write as _;

const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render `values` as a Unicode block sparkline (empty input → "").
pub fn sparkline(values: &[f64]) -> String {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '·';
            }
            if hi <= lo {
                return TICKS[3];
            }
            let t = (v - lo) / (hi - lo);
            TICKS[((t * (TICKS.len() - 1) as f64).round() as usize).min(TICKS.len() - 1)]
        })
        .collect()
}

fn num(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

/// Summarize a whole run log. Lines that fail to parse are counted
/// and reported, not fatal — a truncated tail (crashed run) must not
/// hide the epochs that did complete.
pub fn render_report(jsonl: &str) -> Result<String, String> {
    let mut manifests: Vec<Json> = Vec::new();
    let mut epochs: Vec<Json> = Vec::new();
    let mut evals: Vec<Json> = Vec::new();
    let mut serves: Vec<Json> = Vec::new();
    let mut gateways: Vec<Json> = Vec::new();
    let mut scans: Vec<Json> = Vec::new();
    let mut checkpoints: Vec<Json> = Vec::new();
    let mut spans: Vec<Json> = Vec::new();
    let mut traces: Vec<Json> = Vec::new();
    let mut bad_lines = 0usize;
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(v) = parse(line) else {
            bad_lines += 1;
            continue;
        };
        match v.get("event").and_then(Json::as_str) {
            Some("manifest") => manifests.push(v),
            Some("epoch") => epochs.push(v),
            Some("eval") => evals.push(v),
            Some("serve") => serves.push(v),
            Some("gateway") => gateways.push(v),
            Some("scan") => scans.push(v),
            Some("checkpoint") => checkpoints.push(v),
            Some("spans") => spans.push(v),
            Some("trace") => traces.push(v),
            _ => bad_lines += 1,
        }
    }
    if manifests.is_empty()
        && epochs.is_empty()
        && evals.is_empty()
        && serves.is_empty()
        && gateways.is_empty()
        && scans.is_empty()
        && checkpoints.is_empty()
        && traces.is_empty()
    {
        return Err("no recognizable run-log events".into());
    }

    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "pge run report");
    let _ = writeln!(w, "==============");
    for m in &manifests {
        let kind = m.get("kind").and_then(Json::as_str).unwrap_or("?");
        let seed = num(m, "seed").unwrap_or(f64::NAN);
        let rev = m
            .get("git_rev")
            .and_then(Json::as_str)
            .map(|r| r.chars().take(10).collect::<String>())
            .unwrap_or_else(|| "unknown".into());
        let _ = writeln!(w, "run: {kind}  seed {seed}  git {rev}");
        if let Some(Json::Obj(pairs)) = m.get("config") {
            for (k, v) in pairs {
                if let Json::Str(s) = v {
                    let _ = writeln!(w, "  {k} = {s}");
                }
            }
        }
    }

    if !epochs.is_empty() {
        let losses: Vec<f64> = epochs.iter().filter_map(|e| num(e, "mean_loss")).collect();
        let tput: Vec<f64> = epochs
            .iter()
            .filter_map(|e| num(e, "triples_per_sec"))
            .collect();
        let _ = writeln!(w, "\ntraining: {} epochs", epochs.len());
        if let (Some(first), Some(last)) = (losses.first(), losses.last()) {
            let _ = writeln!(
                w,
                "  loss   {first:.4} -> {last:.4}   {}",
                sparkline(&losses)
            );
        }
        if !tput.is_empty() {
            let mean = tput.iter().sum::<f64>() / tput.len() as f64;
            let _ = writeln!(w, "  speed  {mean:.0} triples/s mean");
        }
        // Data-parallel runs log their thread count and per-worker
        // busy fractions; summarize the last epoch's view.
        if let Some(threads) = epochs.last().and_then(|e| num(e, "threads")) {
            if threads > 1.0 {
                let util: Vec<f64> = epochs
                    .last()
                    .and_then(|e| e.get("worker_utilization"))
                    .and_then(Json::as_array)
                    .map(|a| a.iter().filter_map(Json::as_f64).collect())
                    .unwrap_or_default();
                if util.is_empty() {
                    let _ = writeln!(w, "  workers {threads:.0}");
                } else {
                    let mean_u = util.iter().sum::<f64>() / util.len() as f64;
                    let _ = writeln!(
                        w,
                        "  workers {threads:.0}, mean utilization {:.0}%",
                        mean_u * 100.0
                    );
                }
            }
        }
        let polar: Vec<f64> = epochs
            .iter()
            .filter_map(|e| e.get("confidence").and_then(|c| num(c, "polarized_frac")))
            .collect();
        if let (Some(first), Some(last)) = (polar.first(), polar.last()) {
            let _ = writeln!(
                w,
                "  confidence polarization {first:.3} -> {last:.3}   {}",
                sparkline(&polar)
            );
        } else {
            let _ = writeln!(w, "  confidence: noise-aware mechanism off");
        }
        if let Some(md) = epochs
            .last()
            .and_then(|e| e.get("confidence").and_then(|c| num(c, "marked_down_frac")))
        {
            let _ = writeln!(w, "  marked down {:.1}% of training triples", md * 100.0);
        }
    }

    // Trainer-checkpoint provenance: where this run resumed from, and
    // how far its own checkpoints reach.
    if !checkpoints.is_empty() {
        if let Some(from) = checkpoints.iter().find_map(|c| num(c, "resumed_from")) {
            let _ = writeln!(w, "\ncheckpoint: resumed from epoch {from:.0}");
        }
        let writes: Vec<&Json> = checkpoints
            .iter()
            .filter(|c| num(c, "epoch").is_some())
            .collect();
        if let Some(last) = writes.last() {
            let _ = writeln!(
                w,
                "\ncheckpoint: {} written (through epoch {:.0}, {:.0} KiB each)",
                writes.len(),
                num(last, "epoch").unwrap_or(0.0),
                num(last, "bytes").unwrap_or(0.0) / 1024.0
            );
        }
    }

    for e in &evals {
        let _ = write!(w, "\neval: ");
        match num(e, "pr_auc") {
            Some(auc) => {
                let _ = write!(w, "PR AUC {auc:.3}  ");
            }
            None => {
                let _ = write!(w, "PR AUC n/a  ");
            }
        }
        let _ = writeln!(
            w,
            "threshold {:.3}  valid acc {:.3}  ({} test triples)",
            num(e, "threshold").unwrap_or(f64::NAN),
            num(e, "valid_accuracy").unwrap_or(f64::NAN),
            num(e, "test_triples").unwrap_or(0.0)
        );
    }

    for s in &serves {
        let _ = writeln!(
            w,
            "\nserve: {} requests, {} items, {} batches, {} rejected",
            num(s, "requests_total").unwrap_or(0.0),
            num(s, "items_total").unwrap_or(0.0),
            num(s, "batches_total").unwrap_or(0.0),
            num(s, "rejected_total").unwrap_or(0.0),
        );
        if let (Some(p50), Some(p99)) = (num(s, "latency_p50_ms"), num(s, "latency_p99_ms")) {
            let _ = writeln!(w, "  latency p50 {p50:.2} ms  p99 {p99:.2} ms");
        }
        if let (Some(h), Some(m)) = (num(s, "cache_hits"), num(s, "cache_misses")) {
            let rate = if h + m > 0.0 {
                h / (h + m) * 100.0
            } else {
                0.0
            };
            let _ = writeln!(w, "  cache hit rate {rate:.1}%  ({h} hits / {m} misses)");
        }
    }

    // Gateway events come in two flavors: one record per model
    // hot-swap (has "swap") and a shutdown snapshot with the
    // counters. Summarize the snapshot; fold the swap trail in.
    let swap_records = gateways.iter().filter(|g| num(g, "swap").is_some()).count();
    for g in gateways
        .iter()
        .filter(|g| num(g, "requests_total").is_some())
    {
        let _ = writeln!(
            w,
            "\ngateway: {} requests, {} responses, {} rejected, {} malformed",
            num(g, "requests_total").unwrap_or(0.0),
            num(g, "responses_total").unwrap_or(0.0),
            num(g, "rejected_total").unwrap_or(0.0),
            num(g, "bad_requests_total").unwrap_or(0.0),
        );
        if let (Some(p50), Some(p99)) = (num(g, "latency_p50_ms"), num(g, "latency_p99_ms")) {
            let _ = writeln!(w, "  latency p50 {p50:.2} ms  p99 {p99:.2} ms");
        }
        if let Some(skew) = num(g, "routing_skew") {
            let _ = writeln!(w, "  routing skew {skew:.2} (max/mean routed per replica)");
        }
        let swaps = num(g, "swaps_total").unwrap_or(swap_records as f64);
        if swaps > 0.0 {
            let _ = writeln!(
                w,
                "  {swaps} model hot-swaps (serving version {})",
                num(g, "model_version").unwrap_or(0.0)
            );
        }
        if let Some(conns) = num(g, "accepted_total") {
            let _ = writeln!(w, "  {conns} connections accepted");
        }
    }
    // Swap trail without a shutdown snapshot (e.g. a still-running
    // gateway's log): still worth a line.
    if swap_records > 0 && !gateways.iter().any(|g| num(g, "requests_total").is_some()) {
        let latest = gateways
            .iter()
            .filter_map(|g| num(g, "version"))
            .fold(0.0f64, f64::max);
        let _ = writeln!(
            w,
            "\ngateway: {swap_records} model hot-swaps (serving version {latest})"
        );
    }

    for s in &scans {
        let _ = writeln!(
            w,
            "\nscan: {} rows in {} shards, {} flagged, {} quarantined",
            num(s, "rows_total").unwrap_or(0.0),
            num(s, "shards_total").unwrap_or(0.0),
            num(s, "errors_total").unwrap_or(0.0),
            num(s, "quarantined_total").unwrap_or(0.0),
        );
        if let Some(rps) = num(s, "rows_per_sec") {
            let _ = writeln!(w, "  throughput {rps:.0} rows/s");
        }
        if let Some(resumed) = num(s, "resumed_rows") {
            if resumed > 0.0 {
                let _ = writeln!(w, "  resumed past {resumed} already-scanned rows");
            }
        }
        if let (Some(h), Some(m)) = (num(s, "cache_hits"), num(s, "cache_misses")) {
            let rate = if h + m > 0.0 {
                h / (h + m) * 100.0
            } else {
                0.0
            };
            let _ = writeln!(w, "  cache hit rate {rate:.1}%  ({h} hits / {m} misses)");
        }
    }

    // Memory: the largest RSS high-water mark any event recorded
    // (manifests carry the post-load value, spans events the
    // end-of-run one).
    let peak_rss = manifests
        .iter()
        .chain(spans.iter())
        .filter_map(|ev| num(ev, "peak_rss_bytes"))
        .fold(0.0f64, f64::max);
    if peak_rss > 0.0 {
        let _ = writeln!(w, "\npeak rss: {:.1} MB", peak_rss / 1e6);
    }

    // Merge every spans event: each command in a shared pipeline file
    // (train, then detect, then serve) snapshots its own process.
    let mut merged: std::collections::BTreeMap<String, (f64, f64)> =
        std::collections::BTreeMap::new();
    for ev in &spans {
        if let Some(Json::Arr(items)) = ev.get("spans") {
            for s in items {
                let (Some(path), Some(count), Some(total)) = (
                    s.get("path").and_then(Json::as_str),
                    num(s, "count"),
                    num(s, "total_secs"),
                ) else {
                    continue;
                };
                let e = merged.entry(path.to_string()).or_insert((0.0, 0.0));
                e.0 += count;
                e.1 += total;
            }
        }
    }
    if !merged.is_empty() {
        let mut rows: Vec<(String, f64, f64)> =
            merged.into_iter().map(|(p, (c, t))| (p, c, t)).collect();
        rows.sort_by(|a, b| b.2.total_cmp(&a.2));
        let _ = writeln!(w, "\nspans (by total time):");
        for (path, count, total) in rows.iter().take(10) {
            let _ = writeln!(w, "  {total:>9.3}s  x{count:<6} {path}");
        }
    }

    // Tail-sampled traces get a one-line pointer here; the full
    // per-stage waterfalls live in `pge trace` (render_traces).
    if !traces.is_empty() {
        let errors = traces
            .iter()
            .filter(|t| t.get("error").and_then(Json::as_bool) == Some(true))
            .count();
        let slowest = traces
            .iter()
            .filter_map(|t| num(t, "total_ms"))
            .fold(0.0f64, f64::max);
        let _ = writeln!(
            w,
            "\ntraces: {} retained ({errors} errored, slowest {slowest:.2} ms) — `pge trace <log>` for waterfalls",
            traces.len()
        );
    }

    if bad_lines > 0 {
        let _ = writeln!(w, "\n({bad_lines} unrecognized/corrupt lines skipped)");
    }
    Ok(out)
}

/// `pge trace` — render every tail-sampled `trace` event in a run log
/// as a per-stage waterfall: one row per recorded stage with its
/// offset, duration, and a proportional bar. Traces render newest
/// last (the order they were retained in).
pub fn render_traces(jsonl: &str) -> Result<String, String> {
    const BAR_WIDTH: f64 = 32.0;
    let mut traces: Vec<Json> = Vec::new();
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        if let Ok(v) = parse(line) {
            if v.get("event").and_then(Json::as_str) == Some("trace") {
                traces.push(v);
            }
        }
    }
    if traces.is_empty() {
        return Err("no trace events in log (nothing was slow enough to retain?)".into());
    }

    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "pge trace report — {} retained traces", traces.len());
    let _ = writeln!(w, "=====================================");
    let totals: Vec<f64> = traces.iter().filter_map(|t| num(t, "total_ms")).collect();
    if totals.len() > 1 {
        let _ = writeln!(w, "retained totals (ms): {}", sparkline(&totals));
    }
    for t in &traces {
        let id = t.get("trace_id").and_then(Json::as_str).unwrap_or("?");
        let total = num(t, "total_ms").unwrap_or(f64::NAN);
        let errored = t.get("error").and_then(Json::as_bool) == Some(true);
        let _ = writeln!(
            w,
            "\ntrace {id}  total {total:.2} ms{}",
            if errored { "  [ERROR]" } else { "" }
        );
        let stages: Vec<&Json> = t
            .get("stages")
            .and_then(Json::as_array)
            .map(|a| a.iter().collect())
            .unwrap_or_default();
        if stages.is_empty() {
            let _ = writeln!(w, "  (no stage events survived in the ring)");
            continue;
        }
        let scale = if total.is_finite() && total > 0.0 {
            total
        } else {
            1.0
        };
        for (i, s) in stages.iter().enumerate() {
            let name = s.get("stage").and_then(Json::as_str).unwrap_or("?");
            let start = num(s, "t_ms").unwrap_or(0.0);
            // Stage duration: gap to the next event; the last stage
            // runs to the end of the trace.
            let end = stages
                .get(i + 1)
                .and_then(|n| num(n, "t_ms"))
                .unwrap_or(total.max(start));
            let dur = (end - start).max(0.0);
            let arg = num(s, "arg").unwrap_or(0.0);
            let offset = ((start / scale) * BAR_WIDTH).round() as usize;
            let width = (((dur / scale) * BAR_WIDTH).round() as usize).max(1);
            let _ = writeln!(
                w,
                "  {name:<16} +{start:>8.2} ms  {dur:>8.2} ms  {}{}  (arg {arg})",
                " ".repeat(offset.min(BAR_WIDTH as usize)),
                "█".repeat(width.min(BAR_WIDTH as usize + 1)),
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runlog::{
        epoch_event, eval_event, manifest_event, serve_event, ConfidenceTelemetry, EpochTelemetry,
        EvalTelemetry,
    };

    fn sample_log() -> String {
        let mut lines = Vec::new();
        lines.push(manifest_event("train", 13, &[("epochs".into(), "3".into())]).to_string());
        for (i, loss) in [1.5, 0.9, 0.4].iter().enumerate() {
            lines.push(
                epoch_event(&EpochTelemetry {
                    epoch: i,
                    mean_loss: *loss,
                    triples: 100,
                    negatives: 300,
                    secs: 0.5,
                    triples_per_sec: 200.0,
                    threads: 4,
                    worker_utilization: vec![0.95, 0.9, 0.92, 0.88],
                    confidence: Some(ConfidenceTelemetry {
                        mean: 0.9,
                        polarized_frac: 0.5 + 0.1 * i as f32,
                        marked_down_frac: 0.05,
                        hist: vec![5, 0, 95],
                    }),
                })
                .to_string(),
            );
        }
        lines.push(
            eval_event(&EvalTelemetry {
                pr_auc: Some(0.91),
                threshold: -3.2,
                valid_accuracy: 0.95,
                test_triples: 40,
            })
            .to_string(),
        );
        lines.push(
            serve_event(&[
                ("requests_total", 120.0),
                ("items_total", 480.0),
                ("batches_total", 30.0),
                ("rejected_total", 0.0),
                ("latency_p50_ms", 2.1),
                ("latency_p99_ms", 8.4),
                ("cache_hits", 400.0),
                ("cache_misses", 80.0),
            ])
            .to_string(),
        );
        lines.join("\n") + "\n"
    }

    #[test]
    fn renders_all_sections() {
        let report = render_report(&sample_log()).unwrap();
        assert!(report.contains("pge run report"), "{report}");
        assert!(report.contains("run: train  seed 13"));
        assert!(report.contains("training: 3 epochs"));
        assert!(report.contains("loss   1.5000 -> 0.4000"));
        assert!(report.contains("confidence polarization 0.500 -> 0.700"));
        assert!(
            report.contains("workers 4, mean utilization 91%"),
            "{report}"
        );
        assert!(report.contains("PR AUC 0.910"));
        assert!(report.contains("serve: 120 requests"));
        assert!(report.contains("p99 8.40 ms"));
        assert!(report.contains("cache hit rate 83.3%"));
    }

    #[test]
    fn gateway_events_render_their_own_section() {
        let mut log = String::new();
        for v in [1.0, 2.0] {
            log.push_str(
                &crate::runlog::gateway_event(&[("swap", 1.0), ("version", v)]).to_string(),
            );
            log.push('\n');
        }
        log.push_str(
            &crate::runlog::gateway_event(&[
                ("requests_total", 50_000.0),
                ("responses_total", 50_000.0),
                ("rejected_total", 12.0),
                ("bad_requests_total", 3.0),
                ("accepted_total", 10_000.0),
                ("swaps_total", 2.0),
                ("model_version", 2.0),
                ("routing_skew", 1.08),
                ("latency_p50_ms", 1.4),
                ("latency_p99_ms", 9.7),
            ])
            .to_string(),
        );
        log.push('\n');
        let report = render_report(&log).unwrap();
        assert!(
            report.contains("gateway: 50000 requests, 50000 responses, 12 rejected, 3 malformed"),
            "{report}"
        );
        assert!(
            report.contains("latency p50 1.40 ms  p99 9.70 ms"),
            "{report}"
        );
        assert!(report.contains("routing skew 1.08"), "{report}");
        assert!(
            report.contains("2 model hot-swaps (serving version 2)"),
            "{report}"
        );
        assert!(report.contains("10000 connections accepted"), "{report}");

        // Swap trail alone (gateway still running) renders too.
        let only_swaps =
            crate::runlog::gateway_event(&[("swap", 1.0), ("version", 3.0)]).to_string();
        let report = render_report(&only_swaps).unwrap();
        assert!(
            report.contains("gateway: 1 model hot-swaps (serving version 3)"),
            "{report}"
        );
    }

    #[test]
    fn scan_events_render_their_own_section() {
        let log = crate::runlog::scan_event(&[
            ("rows_total", 1_000_000.0),
            ("shards_total", 31.0),
            ("errors_total", 52_110.0),
            ("quarantined_total", 7.0),
            ("rows_per_sec", 84_211.0),
            ("resumed_rows", 65_536.0),
            ("cache_hits", 900.0),
            ("cache_misses", 100.0),
        ])
        .to_string();
        let report = render_report(&log).unwrap();
        assert!(
            report.contains("scan: 1000000 rows in 31 shards, 52110 flagged, 7 quarantined"),
            "{report}"
        );
        assert!(report.contains("throughput 84211 rows/s"), "{report}");
        assert!(
            report.contains("resumed past 65536 already-scanned rows"),
            "{report}"
        );
        assert!(report.contains("cache hit rate 90.0%"), "{report}");
    }

    #[test]
    fn checkpoint_events_render_provenance() {
        let mut log = sample_log();
        log.push_str(&crate::runlog::checkpoint_event(&[("resumed_from", 2.0)]).to_string());
        log.push('\n');
        for epoch in [3.0, 4.0] {
            log.push_str(
                &crate::runlog::checkpoint_event(&[
                    ("epoch", epoch),
                    ("bytes", 81920.0),
                    ("write_secs", 0.004),
                ])
                .to_string(),
            );
            log.push('\n');
        }
        let report = render_report(&log).unwrap();
        assert!(
            report.contains("checkpoint: resumed from epoch 2"),
            "{report}"
        );
        assert!(
            report.contains("checkpoint: 2 written (through epoch 4, 80 KiB each)"),
            "{report}"
        );
        // A checkpoint-only log is still a recognizable run log.
        let only =
            crate::runlog::checkpoint_event(&[("epoch", 1.0), ("bytes", 1024.0)]).to_string();
        assert!(render_report(&only).is_ok());
    }

    #[test]
    fn spans_from_multiple_commands_are_merged() {
        // Two processes snapshotting into one pipeline file: the
        // report must show both, summing any shared paths.
        let log = concat!(
            r#"{"event":"manifest","ts_ms":1,"kind":"train","seed":1,"git_rev":null,"version":"0","config":{}}"#,
            "\n",
            r#"{"event":"spans","ts_ms":2,"spans":[{"path":"train.epoch","count":3,"total_secs":2.5}]}"#,
            "\n",
            r#"{"event":"spans","ts_ms":3,"spans":[{"path":"detect.score","count":2,"total_secs":0.5},{"path":"train.epoch","count":1,"total_secs":0.5}]}"#,
            "\n"
        );
        let report = render_report(log).unwrap();
        assert!(report.contains("train.epoch"), "{report}");
        assert!(report.contains("detect.score"), "{report}");
        assert!(report.contains("3.000s  x4"), "{report}");
    }

    #[test]
    fn corrupt_tail_is_skipped_not_fatal() {
        let log = sample_log() + "{\"event\":\"epoch\",\"mean_lo";
        let report = render_report(&log).unwrap();
        assert!(report.contains("1 unrecognized/corrupt lines skipped"));
        assert!(report.contains("training: 3 epochs"));
    }

    #[test]
    fn empty_log_is_an_error() {
        assert!(render_report("").is_err());
        assert!(render_report("not json\n").is_err());
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▄▄");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
        assert_eq!(sparkline(&[f64::NAN, 1.0]).chars().next(), Some('·'));
    }
}
