//! Run-manifest helpers: wall-clock stamps and the source revision,
//! resolved without shelling out to `git`.

use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn unix_time_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Peak resident set size of this process in bytes — the `VmHWM`
/// high-water mark from `/proc/self/status`. `None` off Linux or on
/// any read failure; RSS telemetry degrades, it doesn't fail. This is
/// the number the out-of-core store exists to keep flat: benches and
/// CI assert on it, `/metrics` exports it, and run manifests record
/// it.
pub fn peak_rss_bytes() -> Option<u64> {
    status_kib("VmHWM:").map(|k| k * 1024)
}

/// Current resident set size (`VmRSS`) in bytes, same source and
/// caveats as [`peak_rss_bytes`].
pub fn current_rss_bytes() -> Option<u64> {
    status_kib("VmRSS:").map(|k| k * 1024)
}

/// Read a `kB`-suffixed field from `/proc/self/status`.
fn status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let rest = status.lines().find_map(|l| l.strip_prefix(field))?;
    rest.trim()
        .strip_suffix("kB")
        .and_then(|v| v.trim().parse().ok())
}

/// The current git commit hash, read straight from `.git` (searching
/// upward from the working directory). `None` outside a repository or
/// on any read failure — manifests degrade, they don't fail.
pub fn git_rev() -> Option<String> {
    let start = std::env::current_dir().ok()?;
    git_rev_from(&start)
}

/// As [`git_rev`], searching upward from `start`.
pub fn git_rev_from(start: &Path) -> Option<String> {
    let mut dir: Option<&Path> = Some(start);
    while let Some(d) = dir {
        let git = d.join(".git");
        if git.is_dir() {
            return read_head(&git);
        }
        dir = d.parent();
    }
    None
}

fn read_head(git_dir: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        let direct = git_dir.join(refname);
        if let Ok(hash) = std::fs::read_to_string(direct) {
            return valid_hash(hash.trim()).map(str::to_string);
        }
        // Packed refs: `<hash> <refname>` lines.
        let packed = std::fs::read_to_string(git_dir.join("packed-refs")).ok()?;
        packed.lines().find_map(|l| {
            let (hash, name) = l.split_once(' ')?;
            (name == refname && valid_hash(hash).is_some()).then(|| hash.to_string())
        })
    } else {
        valid_hash(head).map(str::to_string)
    }
}

fn valid_hash(s: &str) -> Option<&str> {
    (s.len() >= 7 && s.chars().all(|c| c.is_ascii_hexdigit())).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_sane() {
        let t = unix_time_ms();
        // After 2020-01-01 and before 2100.
        assert!(t > 1_577_836_800_000 && t < 4_102_444_800_000, "{t}");
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        // The workspace is a git repository; the hash must parse.
        if let Some(rev) = git_rev() {
            assert!(rev.len() >= 7, "{rev}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn missing_repo_yields_none() {
        assert_eq!(git_rev_from(Path::new("/nonexistent/nowhere")), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_readings_are_sane() {
        let peak = peak_rss_bytes().expect("VmHWM readable on Linux");
        let cur = current_rss_bytes().expect("VmRSS readable on Linux");
        // A running test binary resides in at least a few hundred KiB
        // and the high-water mark can never undercut the current RSS.
        assert!(peak > 100 << 10, "{peak}");
        assert!(peak >= cur, "peak {peak} < current {cur}");
    }
}
