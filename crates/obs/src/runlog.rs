//! `RunLog` — a JSONL sink for structured run events.
//!
//! Every line is one self-describing JSON object with an `event` tag
//! and a wall-clock `ts_ms`. The schema (guarded by CI and the golden
//! fixture under `tests/fixtures/`):
//!
//! * `manifest` — who/what/when: command kind, seed, git revision,
//!   crate version, and the flattened config;
//! * `epoch` — per-epoch training telemetry: mean loss, throughput,
//!   negative-sampling stats, and (noise-aware runs only) the
//!   confidence-score distribution with its polarization fraction —
//!   the direct Eq. 6 diagnostic;
//! * `eval` — PR AUC, the chosen threshold, validation accuracy;
//! * `serve` — a serving snapshot: counters and latency quantiles;
//! * `scan` — a bulk-scan snapshot: rows scored, shards committed,
//!   quarantine counts, throughput;
//! * `spans` — accumulated span timings (see [`crate::span`]).
//!
//! Events append; one file can hold a whole train → eval → serve
//! pipeline and `pge report` will summarize all of it.

use crate::json::Json;
use crate::manifest::{git_rev, peak_rss_bytes, unix_time_ms};
use crate::span::span_snapshot;
use std::fs::OpenOptions;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Confidence-score distribution of one epoch (Eq. 4–6 diagnostics).
#[derive(Clone, Debug, PartialEq)]
pub struct ConfidenceTelemetry {
    pub mean: f32,
    /// Fraction of C in `[0, 0.1] ∪ [0.9, 1]` — how polarized the
    /// scores are. The noise-aware objective should drive this up.
    pub polarized_frac: f32,
    /// Fraction of C below 0.5 (triples effectively marked down).
    pub marked_down_frac: f32,
    /// Uniform-bin histogram of C over `[0, 1]`.
    pub hist: Vec<u64>,
}

/// Telemetry for one training epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochTelemetry {
    pub epoch: usize,
    pub mean_loss: f32,
    /// Training triples visited this epoch.
    pub triples: usize,
    /// Negative samples drawn this epoch.
    pub negatives: usize,
    pub secs: f64,
    pub triples_per_sec: f64,
    /// Worker threads the trainer ran with this epoch.
    pub threads: usize,
    /// Per-worker busy fraction (busy seconds / epoch seconds), one
    /// entry per worker. Empty when the trainer ran a serial path
    /// (e.g. the BERT encoder) or the epoch took no measurable time.
    pub worker_utilization: Vec<f64>,
    /// `None` when the noise-aware mechanism is off.
    pub confidence: Option<ConfidenceTelemetry>,
}

/// Telemetry for one evaluation pass.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalTelemetry {
    /// `None` when no labeled test split was scored.
    pub pr_auc: Option<f64>,
    pub threshold: f64,
    pub valid_accuracy: f64,
    pub test_triples: usize,
}

fn base(event: &str) -> Vec<(String, Json)> {
    vec![
        ("event".into(), Json::Str(event.into())),
        ("ts_ms".into(), Json::Num(unix_time_ms() as f64)),
    ]
}

/// The run manifest: stamps what ran, from which source revision,
/// with which knobs. `config` is flattened key → value.
pub fn manifest_event(kind: &str, seed: u64, config: &[(String, String)]) -> Json {
    let mut pairs = base("manifest");
    pairs.push(("kind".into(), Json::Str(kind.into())));
    pairs.push(("seed".into(), Json::Num(seed as f64)));
    pairs.push(("git_rev".into(), git_rev().map_or(Json::Null, Json::Str)));
    pairs.push((
        "version".into(),
        Json::Str(env!("CARGO_PKG_VERSION").into()),
    ));
    // RSS high-water mark at manifest time (post data load); the
    // closing spans event records the end-of-run peak.
    pairs.push((
        "peak_rss_bytes".into(),
        peak_rss_bytes().map_or(Json::Null, |b| Json::Num(b as f64)),
    ));
    pairs.push((
        "config".into(),
        Json::Obj(
            config
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        ),
    ));
    Json::Obj(pairs)
}

pub fn epoch_event(t: &EpochTelemetry) -> Json {
    let mut pairs = base("epoch");
    pairs.push(("epoch".into(), Json::Num(t.epoch as f64)));
    pairs.push(("mean_loss".into(), Json::Num(t.mean_loss as f64)));
    pairs.push(("triples".into(), Json::Num(t.triples as f64)));
    pairs.push(("negatives".into(), Json::Num(t.negatives as f64)));
    pairs.push(("secs".into(), Json::Num(t.secs)));
    pairs.push(("triples_per_sec".into(), Json::Num(t.triples_per_sec)));
    pairs.push(("threads".into(), Json::Num(t.threads as f64)));
    if !t.worker_utilization.is_empty() {
        pairs.push((
            "worker_utilization".into(),
            Json::Arr(t.worker_utilization.iter().map(|&u| Json::Num(u)).collect()),
        ));
    }
    if let Some(c) = &t.confidence {
        pairs.push((
            "confidence".into(),
            Json::Obj(vec![
                ("mean".into(), Json::Num(c.mean as f64)),
                ("polarized_frac".into(), Json::Num(c.polarized_frac as f64)),
                (
                    "marked_down_frac".into(),
                    Json::Num(c.marked_down_frac as f64),
                ),
                (
                    "hist".into(),
                    Json::Arr(c.hist.iter().map(|&n| Json::Num(n as f64)).collect()),
                ),
            ]),
        ));
    }
    Json::Obj(pairs)
}

pub fn eval_event(t: &EvalTelemetry) -> Json {
    let mut pairs = base("eval");
    pairs.push(("pr_auc".into(), t.pr_auc.map_or(Json::Null, Json::Num)));
    pairs.push(("threshold".into(), Json::Num(t.threshold)));
    pairs.push(("valid_accuracy".into(), Json::Num(t.valid_accuracy)));
    pairs.push(("test_triples".into(), Json::Num(t.test_triples as f64)));
    Json::Obj(pairs)
}

/// A serving snapshot from counter/quantile pairs, e.g.
/// `[("requests_total", 120.0), ("latency_p99_ms", 8.5)]`.
pub fn serve_event(stats: &[(&str, f64)]) -> Json {
    let mut pairs = base("serve");
    for (k, v) in stats {
        pairs.push((k.to_string(), Json::Num(*v)));
    }
    Json::Obj(pairs)
}

/// A trainer-checkpoint event: one per epoch-boundary checkpoint
/// write (`[("epoch", 3.0), ("bytes", 81920.0), ("write_secs", s)]`)
/// plus one `[("resumed_from", k)]` record at the start of a resumed
/// run, so `pge report` can show resume provenance.
pub fn checkpoint_event(stats: &[(&str, f64)]) -> Json {
    let mut pairs = base("checkpoint");
    for (k, v) in stats {
        pairs.push((k.to_string(), Json::Num(*v)));
    }
    Json::Obj(pairs)
}

/// An incremental-ingest record, one per delta window, e.g.
/// `[("window", 3.0), ("added", 120.0), ("retracted", 8.0),
/// ("mean_loss", 0.4), ("push_version", 5.0)]` (`push_version` is -1
/// when the window was not pushed to a gateway).
pub fn ingest_event(stats: &[(&str, f64)]) -> Json {
    let mut pairs = base("ingest");
    for (k, v) in stats {
        pairs.push((k.to_string(), Json::Num(*v)));
    }
    Json::Obj(pairs)
}

/// A gateway snapshot or swap record from counter pairs, e.g.
/// `[("requests_total", 5.0e4), ("routing_skew", 1.08)]` for the
/// shutdown snapshot or `[("swap", 1.0), ("version", 2.0)]` per model
/// hot-swap.
pub fn gateway_event(stats: &[(&str, f64)]) -> Json {
    let mut pairs = base("gateway");
    for (k, v) in stats {
        pairs.push((k.to_string(), Json::Num(*v)));
    }
    Json::Obj(pairs)
}

/// A bulk-scan snapshot from counter pairs, e.g.
/// `[("rows_total", 1.0e6), ("shards_total", 31.0)]`.
pub fn scan_event(stats: &[(&str, f64)]) -> Json {
    let mut pairs = base("scan");
    for (k, v) in stats {
        pairs.push((k.to_string(), Json::Num(*v)));
    }
    Json::Obj(pairs)
}

/// One tail-sampled trace (see [`crate::trace`]): the trace ID as a
/// 16-hex-digit string (u64s don't survive a JSON f64 round trip),
/// end-to-end latency, the error flag, and the per-stage event list
/// with timestamps relative to the first event. `pge trace` renders
/// these as waterfalls.
pub fn trace_event(t: &crate::trace::RetainedTrace) -> Json {
    let t0 = t.events.first().map_or(0, |e| e.t_nanos);
    let mut pairs = base("trace");
    pairs.push(("trace_id".into(), Json::Str(format!("{:016x}", t.trace_id))));
    pairs.push(("total_ms".into(), Json::Num(t.total_nanos as f64 / 1.0e6)));
    pairs.push(("error".into(), Json::Bool(t.error)));
    pairs.push((
        "stages".into(),
        Json::Arr(
            t.events
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("stage".into(), Json::Str(e.stage.name().into())),
                        ("arg".into(), Json::Num(e.arg as f64)),
                        (
                            "t_ms".into(),
                            Json::Num(e.t_nanos.saturating_sub(t0) as f64 / 1.0e6),
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(pairs)
}

/// Snapshot of all span accumulators (see [`crate::span_snapshot`]).
pub fn spans_event() -> Json {
    let mut pairs = base("spans");
    // Every command writes one spans event on exit, making this the
    // end-of-run RSS peak `pge report` surfaces.
    pairs.push((
        "peak_rss_bytes".into(),
        peak_rss_bytes().map_or(Json::Null, |b| Json::Num(b as f64)),
    ));
    pairs.push((
        "spans".into(),
        Json::Arr(
            span_snapshot()
                .into_iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("path".into(), Json::Str(s.path)),
                        ("count".into(), Json::Num(s.count as f64)),
                        ("total_secs".into(), Json::Num(s.total_secs)),
                    ])
                })
                .collect(),
        ),
    ));
    Json::Obj(pairs)
}

/// A thread-safe JSONL event sink. Writes are line-buffered and
/// flushed per event, so a crashed run keeps every completed epoch.
pub struct RunLog {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl RunLog {
    /// Open `path` for appending (created if missing) — successive
    /// commands can log into one pipeline file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<RunLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(RunLog::to_writer(BufWriter::new(file)))
    }

    /// Log into any writer (tests, in-memory buffers).
    pub fn to_writer(w: impl Write + Send + 'static) -> RunLog {
        RunLog {
            sink: Mutex::new(Box::new(w)),
        }
    }

    /// Append one event as a single JSON line. I/O errors are
    /// reported but non-fatal: telemetry must never kill a run.
    pub fn write(&self, event: &Json) {
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if writeln!(sink, "{event}")
            .and_then(|()| sink.flush())
            .is_err()
        {
            eprintln!("runlog: write failed; event dropped");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write handle into a shared buffer the test can inspect.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn contents(b: &SharedBuf) -> String {
        String::from_utf8(b.0.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn events_are_one_valid_json_line_each() {
        let buf = SharedBuf::default();
        let log = RunLog::to_writer(buf.clone());
        log.write(&manifest_event(
            "train",
            13,
            &[("epochs".into(), "6".into())],
        ));
        log.write(&epoch_event(&EpochTelemetry {
            epoch: 0,
            mean_loss: 1.5,
            triples: 100,
            negatives: 300,
            secs: 0.5,
            triples_per_sec: 200.0,
            threads: 4,
            worker_utilization: vec![0.9, 0.85, 0.88, 0.8],
            confidence: Some(ConfidenceTelemetry {
                mean: 0.875,
                polarized_frac: 0.75,
                marked_down_frac: 0.0625,
                hist: vec![1, 0, 9],
            }),
        }));
        let text = contents(&buf);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let manifest = parse(lines[0]).unwrap();
        assert_eq!(manifest.get("event").unwrap().as_str(), Some("manifest"));
        assert_eq!(manifest.get("seed").unwrap().as_f64(), Some(13.0));
        assert_eq!(
            manifest
                .get("config")
                .unwrap()
                .get("epochs")
                .unwrap()
                .as_str(),
            Some("6")
        );
        let epoch = parse(lines[1]).unwrap();
        assert_eq!(epoch.get("mean_loss").unwrap().as_f64(), Some(1.5));
        let conf = epoch.get("confidence").unwrap();
        assert_eq!(conf.get("polarized_frac").unwrap().as_f64(), Some(0.75));
    }

    #[test]
    fn hostile_config_strings_stay_single_line() {
        let buf = SharedBuf::default();
        let log = RunLog::to_writer(buf.clone());
        let nasty = "line1\nline2\t\"quoted\\\" — naïve 😀";
        log.write(&manifest_event(
            "train",
            1,
            &[("data".into(), nasty.into())],
        ));
        let text = contents(&buf);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "newlines must be escaped: {text:?}");
        let back = parse(lines[0]).unwrap();
        assert_eq!(
            back.get("config").unwrap().get("data").unwrap().as_str(),
            Some(nasty)
        );
    }

    #[test]
    fn confidence_absent_when_noise_aware_off() {
        let buf = SharedBuf::default();
        let log = RunLog::to_writer(buf.clone());
        log.write(&epoch_event(&EpochTelemetry {
            epoch: 0,
            mean_loss: 1.0,
            triples: 10,
            negatives: 30,
            secs: 0.1,
            triples_per_sec: 100.0,
            threads: 1,
            worker_utilization: Vec::new(),
            confidence: None,
        }));
        let line = contents(&buf);
        assert!(!line.contains("confidence"), "{line}");
        assert!(parse(line.trim()).unwrap().get("confidence").is_none());
    }

    #[test]
    fn eval_and_serve_events_round_trip() {
        let buf = SharedBuf::default();
        let log = RunLog::to_writer(buf.clone());
        log.write(&eval_event(&EvalTelemetry {
            pr_auc: Some(0.91),
            threshold: -3.25,
            valid_accuracy: 0.95,
            test_triples: 40,
        }));
        log.write(&serve_event(&[("requests_total", 12.0), ("p99_ms", 8.5)]));
        let text = contents(&buf);
        let lines: Vec<&str> = text.lines().collect();
        let eval = parse(lines[0]).unwrap();
        assert_eq!(eval.get("pr_auc").unwrap().as_f64(), Some(0.91));
        assert_eq!(eval.get("threshold").unwrap().as_f64(), Some(-3.25));
        let serve = parse(lines[1]).unwrap();
        assert_eq!(serve.get("event").unwrap().as_str(), Some("serve"));
        assert_eq!(serve.get("p99_ms").unwrap().as_f64(), Some(8.5));
    }
}
