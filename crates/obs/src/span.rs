//! Lightweight hierarchical span timers.
//!
//! ```no_run
//! pge_obs::set_spans_enabled(true);
//! {
//!     let _outer = pge_obs::span("train.epoch");
//!     let _inner = pge_obs::span("negatives"); // records as train.epoch.negatives
//! }
//! for s in pge_obs::span_snapshot() {
//!     println!("{} x{} {:.3}s", s.path, s.count, s.total_secs);
//! }
//! ```
//!
//! Spans are **disabled by default**: [`span`] then costs one relaxed
//! atomic load and returns an inert guard — no clock read, no
//! thread-local access, no allocation — so instrumentation can stay in
//! hot paths permanently. When enabled (the CLI flips the switch when
//! `--runlog` is given), each guard reads the clock twice and folds
//! its duration into a global per-path accumulator; nesting is tracked
//! per thread, so worker pools produce sensible hierarchies.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span recording on or off process-wide.
pub fn set_spans_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// Names of the spans currently open on this thread.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
struct SpanStat {
    count: AtomicU64,
    total_nanos: AtomicU64,
}

fn stats() -> &'static RwLock<HashMap<String, Arc<SpanStat>>> {
    static STATS: OnceLock<RwLock<HashMap<String, Arc<SpanStat>>>> = OnceLock::new();
    STATS.get_or_init(Default::default)
}

/// One accumulated span path in a [`span_snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Dotted hierarchical path, e.g. `train.epoch.negatives`.
    pub path: String,
    pub count: u64,
    pub total_secs: f64,
}

impl SpanRecord {
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }
}

/// Accumulated totals for every span path seen so far, sorted by
/// path.
pub fn span_snapshot() -> Vec<SpanRecord> {
    let map = stats().read().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<SpanRecord> = map
        .iter()
        .map(|(path, s)| SpanRecord {
            path: path.clone(),
            count: s.count.load(Ordering::Relaxed),
            total_secs: s.total_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        })
        .collect();
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

/// Drop all accumulated span stats (test isolation, run boundaries).
pub fn reset_spans() {
    stats().write().unwrap_or_else(|e| e.into_inner()).clear();
}

fn record(path: String, nanos: u64) {
    let map = stats().read().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = map.get(&path) {
        s.count.fetch_add(1, Ordering::Relaxed);
        s.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        return;
    }
    drop(map);
    let mut map = stats().write().unwrap_or_else(|e| e.into_inner());
    let s = map.entry(path).or_default();
    s.count.fetch_add(1, Ordering::Relaxed);
    s.total_nanos.fetch_add(nanos, Ordering::Relaxed);
}

/// Guard returned by [`span`]; records on drop.
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Open a span named `name`. The recorded path is the dotted chain of
/// the spans open on this thread, so `span("epoch")` inside
/// `span("train")` records as `train.epoch`.
pub fn span(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join(".");
            stack.pop();
            path
        });
        record(path, nanos);
    }
}

/// `span!("train.epoch")` — sugar for [`span`] that binds the guard to
/// a hidden local so the span covers the rest of the enclosing block.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        let _pge_obs_span_guard = $crate::span($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Span state is process-global; serialize the tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_spans();
        set_spans_enabled(false);
        {
            let _g = span("never");
        }
        assert!(span_snapshot().is_empty());
    }

    #[test]
    fn nested_spans_build_dotted_paths() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_spans();
        set_spans_enabled(true);
        {
            let _a = span("train");
            {
                let _b = span("epoch");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _b = span("epoch");
            }
        }
        set_spans_enabled(false);
        let snap = span_snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["train", "train.epoch"]);
        let epoch = &snap[1];
        assert_eq!(epoch.count, 2);
        assert!(epoch.total_secs >= 0.002, "{}", epoch.total_secs);
        assert!(snap[0].total_secs >= epoch.total_secs);
        assert!(epoch.mean_secs() > 0.0);
    }

    #[test]
    fn threads_keep_independent_stacks() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_spans();
        set_spans_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = span("worker");
                    let _h = span("step");
                });
            }
        });
        set_spans_enabled(false);
        let snap = span_snapshot();
        let get = |p: &str| snap.iter().find(|r| r.path == p).map(|r| r.count);
        assert_eq!(get("worker"), Some(4));
        assert_eq!(get("worker.step"), Some(4));
    }

    #[test]
    fn macro_scopes_to_enclosing_block() {
        let _l = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_spans();
        set_spans_enabled(true);
        {
            crate::span!("outer");
            crate::span!("inner");
        }
        set_spans_enabled(false);
        let snap = span_snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer.inner"]);
    }
}
