//! `trace` — an always-on flight recorder with tail-based sampling.
//!
//! Aggregate histograms (see [`crate::registry`]) answer "how slow is
//! the p99"; they cannot answer "*why* was request `7f3a…` slow".
//! This module records a typed event per pipeline stage into a
//! lock-free, fixed-capacity ring buffer — cheap enough to leave on
//! in production — and promotes just the interesting traces (slower
//! than a threshold, or errored) into a bounded retained set that
//! `GET /debug/trace` and `pge trace` can replay as per-stage
//! waterfalls.
//!
//! Design:
//!
//! * **Ring buffer** ([`FlightRecorder`]) — `capacity` pre-allocated
//!   slots (rounded up to a power of two) of four `AtomicU64`s each.
//!   A writer claims a slot with one `fetch_add` on the write cursor
//!   and publishes through a per-slot seqlock whose version is
//!   derived from the ticket, so readers detect both torn writes and
//!   wraparound overwrites. No allocation, no locks, no syscalls on
//!   the hot path.
//! * **Trace IDs** ([`TraceIdGen`]) — a splitmix64 stream over an
//!   atomic counter: unique per request, deterministic under a fixed
//!   seed, and cheap (one `fetch_add` + 5 ALU ops).
//! * **Tail sampling** ([`Tracer::finish`]) — completion is the only
//!   point where end-to-end latency is known, so that is where the
//!   keep/drop decision happens. Kept traces are reassembled from the
//!   ring (an O(capacity) scan, paid only for slow requests) into
//!   [`RetainedTrace`]s in a bounded FIFO.
//!
//! The same recorder covers the gateway's request path, `pge-serve`,
//! the scan chunk pipeline, and the trainer's epoch phases — one
//! mechanism for online, batch, and training workloads.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Monotonic nanoseconds since the first call in this process.
/// Shared by every recorder so events from different subsystems
/// order consistently within one process.
pub fn clock_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// splitmix64 finalizer — the standard 64-bit bit mixer.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A lock-free generator of unique 64-bit trace IDs: a splitmix64
/// stream over an atomic counter. Under a fixed seed the sequence of
/// IDs is deterministic; ID 0 is reserved as "no trace" and never
/// produced.
pub struct TraceIdGen {
    state: AtomicU64,
}

impl TraceIdGen {
    pub fn new(seed: u64) -> TraceIdGen {
        TraceIdGen {
            state: AtomicU64::new(seed),
        }
    }

    /// The next trace ID — unique for the first 2^64 draws.
    pub fn next_id(&self) -> u64 {
        loop {
            let s = self
                .state
                .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
            let id = splitmix64(s.wrapping_add(0x9e37_79b9_7f4a_7c15));
            if id != 0 {
                return id;
            }
        }
    }
}

/// One pipeline stage a trace event can mark. The discriminant is
/// packed into the ring slot, so variants are explicitly numbered and
/// must never be reused for a different meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    // Online request path (gateway + serve).
    Accept = 1,
    Route = 2,
    QueueAdmit = 3,
    Dequeue = 4,
    BatchAssemble = 5,
    CacheHit = 6,
    CacheMiss = 7,
    Encode = 8,
    Score = 9,
    WriteBack = 10,
    // Bulk-scan chunk pipeline.
    ChunkRead = 11,
    ChunkScore = 12,
    ChunkCommit = 13,
    // Trainer epoch phases.
    EpochStart = 14,
    EpochShuffle = 15,
    EpochBatches = 16,
    EpochCheckpoint = 17,
    // Terminal error marker (arg = subsystem-specific code).
    Error = 18,
}

impl Stage {
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Route => "route",
            Stage::QueueAdmit => "queue_admit",
            Stage::Dequeue => "dequeue",
            Stage::BatchAssemble => "batch_assemble",
            Stage::CacheHit => "cache_hit",
            Stage::CacheMiss => "cache_miss",
            Stage::Encode => "encode",
            Stage::Score => "score",
            Stage::WriteBack => "write_back",
            Stage::ChunkRead => "chunk_read",
            Stage::ChunkScore => "chunk_score",
            Stage::ChunkCommit => "chunk_commit",
            Stage::EpochStart => "epoch_start",
            Stage::EpochShuffle => "epoch_shuffle",
            Stage::EpochBatches => "epoch_batches",
            Stage::EpochCheckpoint => "epoch_checkpoint",
            Stage::Error => "error",
        }
    }

    pub fn from_u8(v: u8) -> Option<Stage> {
        Some(match v {
            1 => Stage::Accept,
            2 => Stage::Route,
            3 => Stage::QueueAdmit,
            4 => Stage::Dequeue,
            5 => Stage::BatchAssemble,
            6 => Stage::CacheHit,
            7 => Stage::CacheMiss,
            8 => Stage::Encode,
            9 => Stage::Score,
            10 => Stage::WriteBack,
            11 => Stage::ChunkRead,
            12 => Stage::ChunkScore,
            13 => Stage::ChunkCommit,
            14 => Stage::EpochStart,
            15 => Stage::EpochShuffle,
            16 => Stage::EpochBatches,
            17 => Stage::EpochCheckpoint,
            18 => Stage::Error,
            _ => return None,
        })
    }

    /// Parse the wire name back (inverse of [`Stage::name`]).
    pub fn from_name(name: &str) -> Option<Stage> {
        (1u8..=18)
            .map(|v| Stage::from_u8(v).unwrap())
            .find(|s| s.name() == name)
    }
}

/// One recorded event, as read back out of the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub trace_id: u64,
    pub stage: Stage,
    /// Stage-specific argument: replica index for `route`/`dequeue`,
    /// batch size for `batch_assemble`, cache-hit count for
    /// `cache_hit`, row count for the chunk stages, epoch number for
    /// the trainer phases.
    pub arg: u64,
    /// [`clock_nanos`] timestamp.
    pub t_nanos: u64,
}

/// One ring slot: a seqlock version plus the packed event.
///
/// `version` encodes the claiming ticket (`2*ticket+1` while the
/// write is in flight, `2*ticket+2` once published; `0` = never
/// written). Because tickets are globally ordered by the write
/// cursor, two writers that land on the same slot across a
/// wraparound resolve deterministically: the later ticket wins and
/// the earlier writer drops its (by then overwritten anyway) event.
struct Slot {
    version: AtomicU64,
    trace_id: AtomicU64,
    /// `stage as u64` in the top byte, `arg` in the low 56 bits.
    meta: AtomicU64,
    t_nanos: AtomicU64,
}

const ARG_MASK: u64 = (1 << 56) - 1;

/// The lock-free, fixed-capacity event ring. See the module docs.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    mask: usize,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2). All memory is allocated here; the
    /// hot path never allocates.
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                version: AtomicU64::new(0),
                trace_id: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                t_nanos: AtomicU64::new(0),
            })
            .collect();
        FlightRecorder {
            slots,
            mask: cap - 1,
            cursor: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free: one `fetch_add` to claim a slot,
    /// four relaxed stores to fill it, one release store to publish.
    /// The spin below only triggers when the ring wraps around onto a
    /// slot whose previous write is still in flight — impossible in
    /// steady state when `capacity >> writer count`.
    pub fn record(&self, trace_id: u64, stage: Stage, arg: u64) {
        self.record_at(trace_id, stage, arg, clock_nanos());
    }

    /// [`FlightRecorder::record`] with an explicit timestamp (tests).
    pub fn record_at(&self, trace_id: u64, stage: Stage, arg: u64, t_nanos: u64) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & self.mask];
        let writing = ticket.wrapping_mul(2).wrapping_add(1);
        let published = writing.wrapping_add(1);
        // Claim the slot's seqlock. A version at or past `published`
        // means a wrapped-around later ticket already owns this slot:
        // our event is the oldest in the ring, so dropping it is
        // exactly the ring's eviction policy.
        loop {
            let v = slot.version.load(Ordering::Acquire);
            if v >= published {
                return;
            }
            if v & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            if slot
                .version
                .compare_exchange_weak(v, writing, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.meta
            .store(((stage as u64) << 56) | (arg & ARG_MASK), Ordering::Relaxed);
        slot.t_nanos.store(t_nanos, Ordering::Relaxed);
        slot.version.store(published, Ordering::Release);
    }

    /// Read every stable event currently in the ring, oldest first.
    /// Slots mid-write or torn by a concurrent overwrite are skipped,
    /// never misread — the seqlock version is checked on both sides
    /// of the field reads.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 & 1 == 1 {
                continue;
            }
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let t_nanos = slot.t_nanos.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != v1 {
                continue; // overwritten while reading
            }
            let Some(stage) = Stage::from_u8((meta >> 56) as u8) else {
                continue;
            };
            out.push(TraceEvent {
                trace_id,
                stage,
                arg: meta & ARG_MASK,
                t_nanos,
            });
        }
        out.sort_by_key(|e| e.t_nanos);
        out
    }

    /// All stable events carrying `trace_id`, oldest first.
    pub fn events_for(&self, trace_id: u64) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self
            .snapshot()
            .into_iter()
            .filter(|e| e.trace_id == trace_id)
            .collect();
        out.sort_by_key(|e| e.t_nanos);
        out
    }
}

/// A completed trace promoted out of the ring by tail sampling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetainedTrace {
    pub trace_id: u64,
    /// End-to-end latency as reported by the caller at completion.
    pub total_nanos: u64,
    pub error: bool,
    /// The trace's events as recovered from the ring, oldest first.
    /// May be truncated if the ring wrapped past part of the trace.
    pub events: Vec<TraceEvent>,
}

impl RetainedTrace {
    /// Per-stage wall time: the gap from each event to the next
    /// (the last stage gets the remainder of `total_nanos`, clamped
    /// at zero). This is what the waterfall renders.
    pub fn stage_durations(&self) -> Vec<(Stage, u64)> {
        let mut out = Vec::with_capacity(self.events.len());
        for (i, e) in self.events.iter().enumerate() {
            let next = self.events.get(i + 1).map(|n| n.t_nanos);
            let end = next.unwrap_or_else(|| {
                self.events
                    .first()
                    .map(|f| f.t_nanos.saturating_add(self.total_nanos))
                    .unwrap_or(e.t_nanos)
            });
            out.push((e.stage, end.saturating_sub(e.t_nanos)));
        }
        out
    }
}

/// The full tracing bundle one server (or one scan/train run) owns:
/// ID generator + flight recorder + the tail-sampled retained set.
pub struct Tracer {
    ids: TraceIdGen,
    recorder: FlightRecorder,
    threshold_nanos: AtomicU64,
    retained: Mutex<std::collections::VecDeque<RetainedTrace>>,
    retain_cap: usize,
    retained_total: AtomicU64,
}

/// Default slow-trace threshold when none is configured.
pub const DEFAULT_SLOW_MS: u64 = 25;
/// Default retained-set bound.
pub const DEFAULT_RETAIN_CAP: usize = 64;
/// Default ring capacity (slots).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

impl Default for Tracer {
    /// A tracer with the default ring capacity, seed 0, the default
    /// slow threshold, and the default retained-set bound.
    fn default() -> Tracer {
        Tracer::new(
            DEFAULT_RING_CAPACITY,
            0,
            Duration::from_millis(DEFAULT_SLOW_MS),
            DEFAULT_RETAIN_CAP,
        )
    }
}

impl Tracer {
    /// `capacity` ring slots, IDs seeded with `seed`, retaining up to
    /// `retain_cap` traces slower than `threshold` (or errored).
    pub fn new(capacity: usize, seed: u64, threshold: Duration, retain_cap: usize) -> Tracer {
        Tracer {
            ids: TraceIdGen::new(seed),
            recorder: FlightRecorder::new(capacity),
            threshold_nanos: AtomicU64::new(threshold.as_nanos() as u64),
            retained: Mutex::new(std::collections::VecDeque::new()),
            retain_cap: retain_cap.max(1),
            retained_total: AtomicU64::new(0),
        }
    }

    /// Start a new trace: returns its ID (no event is recorded — the
    /// caller marks the first stage, usually [`Stage::Accept`]).
    pub fn begin(&self) -> u64 {
        self.ids.next_id()
    }

    /// Record one stage event. Hot-path cost: see
    /// [`FlightRecorder::record`].
    #[inline]
    pub fn record(&self, trace_id: u64, stage: Stage, arg: u64) {
        self.recorder.record(trace_id, stage, arg);
    }

    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    pub fn set_threshold(&self, threshold: Duration) {
        self.threshold_nanos
            .store(threshold.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn threshold(&self) -> Duration {
        Duration::from_nanos(self.threshold_nanos.load(Ordering::Relaxed))
    }

    /// Traces promoted into the retained set over the tracer's life
    /// (some may have since been evicted by the FIFO bound).
    pub fn retained_total(&self) -> u64 {
        self.retained_total.load(Ordering::Relaxed)
    }

    /// Complete a trace. If it was slow (>= threshold) or errored,
    /// reassemble its events from the ring and retain it; otherwise
    /// its ring slots just age out. Returns whether it was retained.
    pub fn finish(&self, trace_id: u64, total: Duration, error: bool) -> bool {
        let total_nanos = total.as_nanos() as u64;
        if !error && total_nanos < self.threshold_nanos.load(Ordering::Relaxed) {
            return false;
        }
        let events = self.recorder.events_for(trace_id);
        let trace = RetainedTrace {
            trace_id,
            total_nanos,
            error,
            events,
        };
        let mut q = self.retained.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() == self.retain_cap {
            q.pop_front();
        }
        q.push_back(trace);
        self.retained_total.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The most recent `n` retained traces, newest first.
    pub fn retained(&self, n: usize) -> Vec<RetainedTrace> {
        let q = self.retained.lock().unwrap_or_else(|e| e.into_inner());
        q.iter().rev().take(n).cloned().collect()
    }
}

/// The process-wide tracer, for code with no natural place to hang an
/// instance (the trainer's epoch phases, one-shot CLI paths). Servers
/// construct their own [`Tracer`] instead so tests can isolate them.
pub fn global_tracer() -> &'static Tracer {
    static GLOBAL: std::sync::OnceLock<Tracer> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Tracer::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn trace_ids_are_unique_and_deterministic() {
        let g = TraceIdGen::new(42);
        let ids: Vec<u64> = (0..100_000).map(|_| g.next_id()).collect();
        let set: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len(), "duplicate trace IDs");
        assert!(!set.contains(&0), "0 is reserved");
        // Deterministic under the same seed, distinct under another.
        let g2 = TraceIdGen::new(42);
        assert!(ids.iter().all(|&id| id == g2.next_id()));
        assert_ne!(TraceIdGen::new(43).next_id(), ids[0]);
    }

    #[test]
    fn trace_ids_unique_across_threads() {
        let g = Arc::new(TraceIdGen::new(7));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || (0..10_000).map(|_| g.next_id()).collect::<Vec<u64>>())
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id:#x} across threads");
            }
        }
        assert_eq!(all.len(), 80_000);
    }

    #[test]
    fn ring_records_and_reads_back() {
        let r = FlightRecorder::new(8);
        r.record_at(11, Stage::Accept, 0, 100);
        r.record_at(11, Stage::Route, 2, 200);
        r.record_at(12, Stage::Accept, 0, 150);
        let events = r.events_for(11);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, Stage::Accept);
        assert_eq!(events[1].stage, Stage::Route);
        assert_eq!(events[1].arg, 2);
        assert_eq!(r.events_for(12).len(), 1);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record_at(100 + i, Stage::Score, i, i);
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4, "ring holds exactly capacity events");
        let args: Vec<u64> = snap.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![6, 7, 8, 9], "oldest evicted first");
    }

    #[test]
    fn ring_wraparound_correct_under_concurrent_writers() {
        // 8 writers hammer a deliberately tiny ring so wraparound is
        // constant; every stable snapshot entry must be internally
        // consistent (trace_id, stage, arg, timestamp all from the
        // same logical write).
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 20_000;
        let r = Arc::new(FlightRecorder::new(64));
        let stop = Arc::new(AtomicU64::new(0));

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let r = r.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut checked = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        for e in r.snapshot() {
                            // Writer w encodes: trace_id = (w<<32)|i,
                            // arg = i, t_nanos = (w<<32)|i. A torn
                            // read mixes fields from two writes and
                            // breaks the invariants.
                            let w = e.trace_id >> 32;
                            let i = e.trace_id & 0xffff_ffff;
                            assert!(w < WRITERS, "torn trace_id {:#x}", e.trace_id);
                            assert!(i < PER_WRITER);
                            assert_eq!(e.arg, i, "arg torn from trace_id");
                            assert_eq!(e.t_nanos, e.trace_id, "timestamp torn");
                            assert_eq!(e.stage, Stage::Score);
                            checked += 1;
                        }
                    }
                    checked
                })
            })
            .collect();

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        let id = (w << 32) | i;
                        r.record_at(id, Stage::Score, i, id);
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        let checked: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(checked > 0, "readers validated no events");

        // Quiescent ring: exactly `capacity` stable slots remain and
        // the cursor saw every write.
        assert_eq!(r.recorded(), WRITERS * PER_WRITER);
        assert_eq!(r.snapshot().len(), r.capacity());
    }

    #[test]
    fn tail_sampling_retains_slow_and_errored_only() {
        let t = Tracer::new(256, 1, Duration::from_millis(10), 4);
        // Fast + clean: dropped.
        let fast = t.begin();
        t.record(fast, Stage::Accept, 0);
        assert!(!t.finish(fast, Duration::from_millis(1), false));
        // Slow: retained with its events.
        let slow = t.begin();
        t.record(slow, Stage::Accept, 0);
        t.record(slow, Stage::Score, 3);
        assert!(t.finish(slow, Duration::from_millis(50), false));
        // Errored but fast: retained.
        let err = t.begin();
        t.record(err, Stage::Error, 7);
        assert!(t.finish(err, Duration::from_millis(1), true));

        let kept = t.retained(10);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].trace_id, err, "newest first");
        assert!(kept[0].error);
        assert_eq!(kept[1].trace_id, slow);
        assert_eq!(kept[1].events.len(), 2);
        assert_eq!(kept[1].events[1].stage, Stage::Score);
        assert_eq!(t.retained_total(), 2);
    }

    #[test]
    fn retained_set_is_bounded_fifo() {
        let t = Tracer::new(64, 9, Duration::from_nanos(0), 3);
        let ids: Vec<u64> = (0..5)
            .map(|_| {
                let id = t.begin();
                t.record(id, Stage::Accept, 0);
                t.finish(id, Duration::from_millis(1), false);
                id
            })
            .collect();
        let kept = t.retained(10);
        assert_eq!(kept.len(), 3, "bounded at retain_cap");
        let kept_ids: Vec<u64> = kept.iter().map(|k| k.trace_id).collect();
        assert_eq!(kept_ids, vec![ids[4], ids[3], ids[2]], "oldest evicted");
        assert_eq!(t.retained_total(), 5);
    }

    #[test]
    fn stage_durations_attribute_gaps() {
        let tr = RetainedTrace {
            trace_id: 1,
            total_nanos: 1_000,
            error: false,
            events: vec![
                TraceEvent {
                    trace_id: 1,
                    stage: Stage::Accept,
                    arg: 0,
                    t_nanos: 100,
                },
                TraceEvent {
                    trace_id: 1,
                    stage: Stage::Score,
                    arg: 0,
                    t_nanos: 400,
                },
            ],
        };
        let d = tr.stage_durations();
        assert_eq!(d[0], (Stage::Accept, 300));
        // Last stage gets the remainder up to start + total.
        assert_eq!(d[1], (Stage::Score, 700));
    }

    #[test]
    fn stage_names_round_trip() {
        for v in 1u8..=18 {
            let s = Stage::from_u8(v).unwrap();
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_u8(0), None);
        assert_eq!(Stage::from_u8(19), None);
        assert_eq!(Stage::from_name("bogus"), None);
    }
}
