//! `pge-obs` — unified observability for the PGE stack.
//!
//! Zero-dependency building blocks shared by training, evaluation,
//! serving, and benchmarking:
//!
//! * [`registry`] — a [`MetricsRegistry`] of named counters, gauges,
//!   and histograms with a Prometheus text renderer;
//! * [`hist`] — the lock-free [`AtomicHistogram`] (moved here from
//!   `pge-eval`, which re-exports it);
//! * [`span`] — hierarchical [`span`](span()) timers with near-zero
//!   cost while disabled;
//! * [`trace`] — the always-on per-request flight recorder
//!   ([`Tracer`]): a lock-free event ring plus tail-based sampling of
//!   slow/errored traces, rendered by `pge trace`;
//! * [`runlog`] — the [`RunLog`] JSONL event sink and the typed
//!   events it records (run manifest, per-epoch training telemetry
//!   with the Eq. 6 confidence-polarization diagnostic, eval results,
//!   serve snapshots, span totals);
//! * [`report`] — the `pge report` renderer over a run log;
//! * [`json`] — the shared JSON parser/serializer (re-exported by
//!   `pge-serve` for its wire protocol);
//! * [`manifest`] — wall-clock and git-revision stamps.
//!
//! Metric naming convention: `pge_<subsystem>_<name>{_unit}` — see
//! DESIGN.md §11 for the full schema.

pub mod hist;
pub mod json;
pub mod manifest;
pub mod registry;
pub mod report;
pub mod runlog;
pub mod span;
pub mod trace;
pub mod worker;

pub use hist::AtomicHistogram;
pub use manifest::{current_rss_bytes, git_rev, peak_rss_bytes, unix_time_ms};
pub use registry::{global, validate_exposition, Counter, Gauge, MetricsRegistry};
pub use report::{render_report, render_traces, sparkline};
pub use runlog::{
    checkpoint_event, epoch_event, eval_event, gateway_event, ingest_event, manifest_event,
    scan_event, serve_event, spans_event, trace_event, ConfidenceTelemetry, EpochTelemetry,
    EvalTelemetry, RunLog,
};
pub use span::{
    reset_spans, set_spans_enabled, span, span_snapshot, spans_enabled, SpanGuard, SpanRecord,
};
pub use trace::{
    global_tracer, FlightRecorder, RetainedTrace, Stage, TraceEvent, TraceIdGen, Tracer,
};
pub use worker::{WorkerLedger, WorkerStats};
