//! Property-based tests for the shared observability primitives.

use pge_obs::{sparkline, AtomicHistogram, MetricsRegistry};
use proptest::prelude::*;

fn arb_bounds() -> impl Strategy<Value = Vec<f64>> {
    // Strictly ascending positive bounds.
    prop::collection::vec(0.001f64..1000.0, 1..12).prop_map(|mut v| {
        v.sort_by(f64::total_cmp);
        v.dedup();
        v
    })
}

proptest! {
    #[test]
    fn count_conserves_observations(bounds in arb_bounds(),
                                    xs in prop::collection::vec(-10.0f64..1e6, 0..200)) {
        let h = AtomicHistogram::new(bounds);
        for &x in &xs {
            h.observe(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), xs.len() as u64);
    }

    #[test]
    fn quantile_is_none_iff_empty(bounds in arb_bounds(),
                                  xs in prop::collection::vec(0.0f64..100.0, 0..50)) {
        let h = AtomicHistogram::new(bounds);
        for &x in &xs {
            h.observe(x);
        }
        prop_assert_eq!(h.quantile(0.5).is_none(), xs.is_empty());
    }

    #[test]
    fn quantile_is_monotone_and_within_bounds(bounds in arb_bounds(),
                                              xs in prop::collection::vec(0.0f64..2000.0, 1..100)) {
        let h = AtomicHistogram::new(bounds.clone());
        for &x in &xs {
            h.observe(x);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prop_assert!(bounds.contains(&v));
            prev = v;
        }
    }

    #[test]
    fn quantile_upper_bounds_the_true_value(bounds in arb_bounds(),
                                            xs in prop::collection::vec(0.0f64..100.0, 1..100)) {
        // For values that fall inside the bounded range, the reported
        // bucket bound is >= the true quantile value.
        let h = AtomicHistogram::new(bounds.clone());
        let last = *bounds.last().unwrap();
        let inside: Vec<f64> = xs.into_iter().filter(|&x| x <= last).collect();
        prop_assume!(!inside.is_empty());
        for &x in &inside {
            h.observe(x);
        }
        let mut sorted = inside.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9] {
            let true_q = sorted[((sorted.len() - 1) as f64 * q) as usize];
            prop_assert!(h.quantile(q).unwrap() >= true_q);
        }
    }

    #[test]
    fn overflow_accounting_matches(bounds in arb_bounds(),
                                   xs in prop::collection::vec(0.0f64..2000.0, 0..100)) {
        let h = AtomicHistogram::new(bounds.clone());
        let last = *bounds.last().unwrap();
        for &x in &xs {
            h.observe(x);
        }
        let expected = xs.iter().filter(|&&x| x > last).count() as u64;
        prop_assert_eq!(h.overflow_count(), expected);
    }

    #[test]
    fn sum_tracks_clamped_total(xs in prop::collection::vec(-5.0f64..100.0, 0..100)) {
        let h = AtomicHistogram::new(vec![1.0]);
        for &x in &xs {
            h.observe(x);
        }
        let expected: f64 = xs.iter().map(|&x| x.max(0.0)).sum();
        prop_assert!((h.sum() - expected).abs() < 1e-3 * (1.0 + expected));
    }

    #[test]
    fn nan_observations_change_nothing(xs in prop::collection::vec(0.0f64..10.0, 0..50),
                                       nans in 0usize..5) {
        let h = AtomicHistogram::new(vec![1.0, 5.0]);
        for &x in &xs {
            h.observe(x);
        }
        let before = h.bucket_counts();
        for _ in 0..nans {
            h.observe(f64::NAN);
        }
        prop_assert_eq!(h.bucket_counts(), before);
    }

    #[test]
    fn rendered_histogram_counts_are_cumulative(xs in prop::collection::vec(0.0f64..20.0, 0..50)) {
        let r = MetricsRegistry::new();
        let h = r.histogram("pge_prop_seconds", "prop", vec![1.0, 5.0, 10.0]);
        for &x in &xs {
            h.observe(x);
        }
        let text = r.render();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(v >= last, "{text}");
            last = v;
            bucket_lines += 1;
        }
        prop_assert_eq!(bucket_lines, 4); // 3 bounds + +Inf
        prop_assert_eq!(last, xs.len() as u64);
    }

    #[test]
    fn sparkline_len_matches_input(xs in prop::collection::vec(-100.0f64..100.0, 0..50)) {
        prop_assert_eq!(sparkline(&xs).chars().count(), xs.len());
    }
}
