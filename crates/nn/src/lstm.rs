//! Single-layer LSTM sequence encoder (the paper's "LSTM" NLP
//! baseline encodes the triple text and classifies from the final
//! hidden state).

use crate::adam::AdamHparams;
use crate::embedding::Embedding;
use crate::gradcheck::HasParams;
use crate::param::Param;
use pge_tensor::{init, ops};
use rand::Rng;

/// LSTM over embedded tokens; the encoding of a sequence is the final
/// hidden state `h_T`.
///
/// Gate weights are packed as `W: 4h × (d + h)` with row blocks
/// `[input; forget; cell; output]`, biases `b: 1 × 4h`. The forget
/// bias is initialized to 1 (standard trick to keep early memory).
#[derive(Clone, Debug)]
pub struct Lstm {
    words: Embedding,
    w: Param,
    b: Param,
    hidden: usize,
    max_len: usize,
}

/// Per-timestep values needed by backpropagation through time.
#[derive(Clone, Debug)]
struct StepCache {
    /// Concatenated `[x_t ; h_{t-1}]`.
    xh: Vec<f32>,
    /// Activated gates `i, f, g, o` (each `hidden` long).
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    /// tanh of the cell state after the step.
    tanh_c: Vec<f32>,
    /// Cell state before the step.
    c_prev: Vec<f32>,
}

/// Backward cache of one [`Lstm::forward`] call.
#[derive(Clone, Debug)]
pub struct LstmCache {
    padded: Vec<u32>,
    steps: Vec<StepCache>,
}

impl Lstm {
    pub fn new<R: Rng>(
        rng: &mut R,
        vocab: usize,
        word_dim: usize,
        hidden: usize,
        max_len: usize,
    ) -> Self {
        let words = Embedding::new(rng, vocab, word_dim);
        let w = Param::new(init::xavier_uniform(rng, 4 * hidden, word_dim + hidden));
        let mut b = Param::zeros(1, 4 * hidden);
        // Forget-gate bias block starts at `hidden`.
        for x in &mut b.value.as_mut_slice()[hidden..2 * hidden] {
            *x = 1.0;
        }
        Lstm {
            words,
            w,
            b,
            hidden,
            max_len,
        }
    }

    /// Build on pre-trained word embeddings.
    pub fn with_embeddings<R: Rng>(
        rng: &mut R,
        words: Embedding,
        hidden: usize,
        max_len: usize,
    ) -> Self {
        let word_dim = words.dim();
        let w = Param::new(init::xavier_uniform(rng, 4 * hidden, word_dim + hidden));
        let mut b = Param::zeros(1, 4 * hidden);
        for x in &mut b.value.as_mut_slice()[hidden..2 * hidden] {
            *x = 1.0;
        }
        Lstm {
            words,
            w,
            b,
            hidden,
            max_len,
        }
    }

    #[inline]
    pub fn out_dim(&self) -> usize {
        self.hidden
    }

    fn pad(&self, tokens: &[u32]) -> Vec<u32> {
        crate::pad_tokens(tokens, 1, self.max_len, 0)
    }

    /// One LSTM cell step; returns `(h_t, step_cache)` if caching.
    fn step(
        &self,
        x: &[f32],
        h_prev: &[f32],
        c_prev: &[f32],
        want_cache: bool,
    ) -> (Vec<f32>, Vec<f32>, Option<StepCache>) {
        let h = self.hidden;
        let mut xh = Vec::with_capacity(x.len() + h);
        xh.extend_from_slice(x);
        xh.extend_from_slice(h_prev);
        // z = W · xh + b, gate blocks [i f g o].
        let mut z = self.b.value.as_slice().to_vec();
        for (r, zr) in z.iter_mut().enumerate() {
            *zr += ops::dot(self.w.value.row(r), &xh);
        }
        let (mut i, mut f, mut g, mut o) = (vec![0.0; h], vec![0.0; h], vec![0.0; h], vec![0.0; h]);
        for k in 0..h {
            i[k] = ops::sigmoid(z[k]);
            f[k] = ops::sigmoid(z[h + k]);
            g[k] = z[2 * h + k].tanh();
            o[k] = ops::sigmoid(z[3 * h + k]);
        }
        let mut c = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        let mut h_t = vec![0.0; h];
        for k in 0..h {
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            tanh_c[k] = c[k].tanh();
            h_t[k] = o[k] * tanh_c[k];
        }
        let cache = want_cache.then(|| StepCache {
            xh,
            i,
            f,
            g,
            o,
            tanh_c: tanh_c.clone(),
            c_prev: c_prev.to_vec(),
        });
        (h_t, c, cache)
    }

    /// Inference-only encoding of a token sequence.
    pub fn infer(&self, tokens: &[u32]) -> Vec<f32> {
        let padded = self.pad(tokens);
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        for &id in &padded {
            let x = self.words.row(id).to_vec();
            let (nh, nc, _) = self.step(&x, &h, &c, false);
            h = nh;
            c = nc;
        }
        h
    }

    /// Training forward: final hidden state + BPTT cache.
    pub fn forward(&self, tokens: &[u32]) -> (Vec<f32>, LstmCache) {
        let padded = self.pad(tokens);
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut steps = Vec::with_capacity(padded.len());
        for &id in &padded {
            let x = self.words.row(id).to_vec();
            let (nh, nc, cache) = self.step(&x, &h, &c, true);
            steps.push(cache.expect("cache requested"));
            h = nh;
            c = nc;
        }
        (h, LstmCache { padded, steps })
    }

    /// Backpropagation through time from dL/dh_T.
    pub fn backward(&mut self, cache: &LstmCache, grad_h_last: &[f32]) {
        let h = self.hidden;
        let d = self.words.dim();
        let mut dh = grad_h_last.to_vec();
        let mut dc = vec![0.0; h];
        for (t, step) in cache.steps.iter().enumerate().rev() {
            // h_t = o · tanh(c_t)
            let mut dz = vec![0.0; 4 * h];
            for k in 0..h {
                let do_ = dh[k] * step.tanh_c[k];
                dc[k] += dh[k] * step.o[k] * ops::tanh_deriv_from_output(step.tanh_c[k]);
                let di = dc[k] * step.g[k];
                let df = dc[k] * step.c_prev[k];
                let dg = dc[k] * step.i[k];
                dz[k] = di * step.i[k] * (1.0 - step.i[k]);
                dz[h + k] = df * step.f[k] * (1.0 - step.f[k]);
                dz[2 * h + k] = dg * ops::tanh_deriv_from_output(step.g[k]);
                dz[3 * h + k] = do_ * step.o[k] * (1.0 - step.o[k]);
            }
            // dW += dz ⊗ xh ; db += dz ; dxh = Wᵀ dz
            ops::axpy(1.0, &dz, self.b.grad.as_mut_slice());
            let mut dxh = vec![0.0; d + h];
            for (r, &dzr) in dz.iter().enumerate() {
                if dzr == 0.0 {
                    continue;
                }
                ops::axpy(dzr, &step.xh, self.w.grad.row_mut(r));
                ops::axpy(dzr, self.w.value.row(r), &mut dxh);
            }
            // Split dxh into dx_t (to word embedding) and dh_{t-1}.
            self.words.accumulate_grad(cache.padded[t], &dxh[..d]);
            dh[..h].copy_from_slice(&dxh[d..d + h]);
            for (dck, fk) in dc.iter_mut().zip(&step.f) {
                *dck *= fk;
            }
        }
    }

    pub fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        self.words.adam_step(hp, t);
        self.w.adam_step(hp, t);
        self.b.adam_step(hp, t);
    }

    /// Approximate multiply–accumulates for encoding `len` tokens.
    pub fn flops(&self, len: usize) -> u64 {
        let len = len.clamp(1, self.max_len) as u64;
        len * (4 * self.hidden * (self.words.dim() + self.hidden)) as u64
    }
}

impl HasParams for Lstm {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![self.words.param_mut(), &mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Lstm {
        let mut rng = StdRng::seed_from_u64(1);
        Lstm::new(&mut rng, 10, 3, 4, 6)
    }

    #[test]
    fn infer_matches_forward_and_is_deterministic() {
        let l = tiny();
        let tokens = [2u32, 5, 7];
        let (h, _) = l.forward(&tokens);
        assert_eq!(h, l.infer(&tokens));
        assert_eq!(h.len(), 4);
        assert_eq!(l.infer(&tokens), l.infer(&tokens));
    }

    #[test]
    fn different_sequences_encode_differently() {
        let l = tiny();
        assert_ne!(l.infer(&[1, 2, 3]), l.infer(&[3, 2, 1]));
    }

    #[test]
    fn empty_input_is_padded_not_panicking() {
        let l = tiny();
        let h = l.infer(&[]);
        assert!(h.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn truncates_beyond_max_len() {
        let l = tiny();
        let long: Vec<u32> = (0..20).map(|i| (i % 10) as u32).collect();
        let h_long = l.infer(&long);
        let h_trunc = l.infer(&long[..6]);
        assert_eq!(h_long, h_trunc);
    }

    #[test]
    fn gradcheck_bptt() {
        let mut l = tiny();
        let tokens = [2u32, 5, 7, 1];
        let weights = [1.0f32, -0.5, 0.25, 2.0];
        let loss = |l: &Lstm| -> f32 {
            l.infer(&tokens)
                .iter()
                .zip(&weights)
                .map(|(h, w)| h * w)
                .sum()
        };
        let (_, cache) = l.forward(&tokens);
        l.backward(&cache, &weights);
        gradcheck::check_param_grads(&mut l, loss, 3e-2, "Lstm");
    }

    #[test]
    fn training_reduces_loss() {
        let mut l = tiny();
        let tokens = [3u32, 4, 5];
        let hp = AdamHparams::with_lr(0.05);
        let before = -l.infer(&tokens)[0];
        for t in 1..=40 {
            let (h, cache) = l.forward(&tokens);
            let mut g = vec![0.0; h.len()];
            g[0] = -1.0;
            l.backward(&cache, &g);
            l.adam_step(&hp, t);
        }
        let after = -l.infer(&tokens)[0];
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn flops_scale_with_len() {
        let l = tiny();
        assert_eq!(l.flops(4), 2 * l.flops(2));
    }
}
