//! Adam hyper-parameters (Kingma & Ba, 2014), used by the paper for
//! all training runs.

/// Hyper-parameters for the Adam optimizer.
///
/// The state (first/second moments) lives inside each
/// [`crate::Param`]; this struct is just the shared knobs plus the
/// bias-correction helper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdamHparams {
    /// Learning rate. The paper sweeps {1e-4, 2e-4, 5e-4}; our rescaled
    /// datasets train well at 1e-2..1e-3, set per-experiment.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
}

impl Default for AdamHparams {
    fn default() -> Self {
        AdamHparams {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

impl AdamHparams {
    /// Convenience constructor fixing everything but the learning rate.
    pub fn with_lr(lr: f32) -> Self {
        AdamHparams {
            lr,
            ..Self::default()
        }
    }

    /// `(1 - β1^t, 1 - β2^t)` bias-correction denominators for step `t`
    /// (1-based).
    #[inline]
    pub fn bias_corrections(&self, t: u64) -> (f32, f32) {
        let t = t.max(1) as i32;
        (1.0 - self.beta1.powi(t), 1.0 - self.beta2.powi(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_corrections_grow_toward_one() {
        let hp = AdamHparams::default();
        let (a1, b1) = hp.bias_corrections(1);
        let (a2, b2) = hp.bias_corrections(1000);
        assert!((a1 - 0.1).abs() < 1e-6);
        assert!((b1 - 0.001).abs() < 1e-6);
        assert!(a2 > 0.99999 && a2 <= 1.0);
        assert!(b2 > 0.6); // β2=0.999 ⇒ 1-0.999^1000 ≈ 0.632
    }

    #[test]
    fn step_zero_treated_as_one() {
        let hp = AdamHparams::default();
        assert_eq!(hp.bias_corrections(0), hp.bias_corrections(1));
    }
}
