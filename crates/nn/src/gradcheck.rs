//! Central-finite-difference gradient verification.
//!
//! Every layer and every scoring function in this workspace is
//! verified against numeric differentiation. The helpers here are used
//! from `#[cfg(test)]` code across crates, so they live in the library
//! proper rather than a test module.

use crate::param::Param;

/// Anything that can expose its learnable parameters for checking.
pub trait HasParams {
    /// Mutable references to all parameters, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;
}

/// Perturbation size for central differences. With `f32` arithmetic,
/// ~5e-3 balances truncation error (∝ eps²) against rounding error
/// (∝ 1/eps).
pub const EPS: f32 = 5e-3;

/// Numeric gradient of `loss` with respect to an input slice.
pub fn numeric_input_grad(x: &[f32], mut loss: impl FnMut(&[f32]) -> f32) -> Vec<f32> {
    let mut xp = x.to_vec();
    let mut out = vec![0.0; x.len()];
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + EPS;
        let fp = loss(&xp);
        xp[i] = orig - EPS;
        let fm = loss(&xp);
        xp[i] = orig;
        out[i] = (fp - fm) / (2.0 * EPS);
    }
    out
}

/// Compare two gradients with a mixed absolute/relative criterion.
///
/// # Panics
/// Panics (with `label` and the offending index) when any element
/// differs by more than `tol · max(1, |a|, |n|)`.
pub fn assert_close(analytic: &[f32], numeric: &[f32], tol: f32, label: &str) {
    assert_eq!(
        analytic.len(),
        numeric.len(),
        "{label}: gradient length mismatch"
    );
    for (i, (&a, &n)) in analytic.iter().zip(numeric).enumerate() {
        let scale = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() <= tol * scale,
            "{label}: grad mismatch at {i}: analytic={a} numeric={n} (tol={tol})"
        );
    }
}

/// Verify the *accumulated* parameter gradients of `obj` against
/// numeric differentiation of `loss`.
///
/// The caller must have already run its forward + backward pass so
/// that `obj`'s parameter `.grad` fields hold the analytic gradient of
/// exactly the same scalar that `loss` recomputes (via inference-only
/// paths, so no caches are disturbed).
///
/// # Panics
/// Panics on any mismatch beyond `tol` (see [`assert_close`]).
pub fn check_param_grads<T: HasParams>(
    obj: &mut T,
    mut loss: impl FnMut(&T) -> f32,
    tol: f32,
    label: &str,
) {
    let n_params = obj.params_mut().len();
    for pi in 0..n_params {
        let n = obj.params_mut()[pi].value.len();
        let analytic = obj.params_mut()[pi].grad.as_slice().to_vec();
        let mut numeric = vec![0.0; n];
        for i in 0..n {
            let orig = {
                let mut ps = obj.params_mut();
                let v = ps[pi].value.as_mut_slice();
                let o = v[i];
                v[i] = o + EPS;
                o
            };
            let fp = loss(obj);
            {
                let mut ps = obj.params_mut();
                ps[pi].value.as_mut_slice()[i] = orig - EPS;
            }
            let fm = loss(obj);
            {
                let mut ps = obj.params_mut();
                ps[pi].value.as_mut_slice()[i] = orig;
            }
            numeric[i] = (fp - fm) / (2.0 * EPS);
        }
        assert_close(&analytic, &numeric, tol, &format!("{label} (param {pi})"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pge_tensor::Matrix;

    struct Quad {
        p: Param,
    }

    impl HasParams for Quad {
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.p]
        }
    }

    impl Quad {
        // loss = Σ (x_i - i)²  ⇒  dL/dx_i = 2(x_i - i)
        fn loss(&self) -> f32 {
            self.p
                .value
                .as_slice()
                .iter()
                .enumerate()
                .map(|(i, &x)| (x - i as f32) * (x - i as f32))
                .sum()
        }
        fn backward(&mut self) {
            let vals = self.p.value.as_slice().to_vec();
            for (i, g) in self.p.grad.as_mut_slice().iter_mut().enumerate() {
                *g = 2.0 * (vals[i] - i as f32);
            }
        }
    }

    #[test]
    fn quadratic_passes() {
        let mut q = Quad {
            p: Param::new(Matrix::from_rows(&[vec![0.5, -0.25, 2.0]])),
        };
        q.backward();
        check_param_grads(&mut q, |q| q.loss(), 1e-2, "quad");
    }

    #[test]
    #[should_panic(expected = "grad mismatch")]
    fn wrong_gradient_fails() {
        let mut q = Quad {
            p: Param::new(Matrix::from_rows(&[vec![0.5, -0.25, 2.0]])),
        };
        q.backward();
        q.p.grad.as_mut_slice()[1] += 1.0; // corrupt
        check_param_grads(&mut q, |q| q.loss(), 1e-2, "quad");
    }

    #[test]
    fn numeric_input_grad_linear_fn() {
        let x = [1.0, 2.0, 3.0];
        let g = numeric_input_grad(&x, |x| 2.0 * x[0] - x[1] + 0.5 * x[2]);
        assert_close(&g, &[2.0, -1.0, 0.5], 1e-2, "linear fn");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assert_close_checks_len() {
        assert_close(&[1.0], &[1.0, 2.0], 1e-2, "len");
    }
}
