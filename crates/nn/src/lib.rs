//! From-scratch neural-network substrate for the PGE reproduction.
//!
//! No deep-learning framework exists in the permitted dependency set,
//! so this crate implements everything the paper's models need:
//!
//! * [`param::Param`] — a tensor bundled with its gradient and Adam
//!   moment estimates, plus dense and sparse (row-wise) update steps;
//! * [`embedding::Embedding`] — lookup tables with sparse gradients;
//! * [`linear::Linear`] — fully-connected layers with optional
//!   activations;
//! * [`conv::Conv1d`] / [`conv::TextCnnEncoder`] — the paper's text
//!   encoder: parallel 1-d convolutions with different filter widths,
//!   max-over-time pooling, concatenation and a projection layer
//!   (Fig. 4 of the paper);
//! * [`lstm::Lstm`] — the LSTM used by the NLP baseline;
//! * [`transformer::TransformerEncoder`] — the Transformer baseline
//!   and the "BERT-style" deep text encoder of the scalability study;
//! * [`grad::SparseRowGrads`] / [`conv::CnnGrads`] — detached gradient
//!   buffers that let data-parallel workers run backward passes
//!   against a shared network and reduce in a fixed order;
//! * [`gradcheck`] — central-finite-difference gradient verification,
//!   used pervasively by this crate's test-suite.
//!
//! Layers follow one convention: `forward` borrows `&self` and returns
//! the output together with an explicit cache object; `backward`
//! borrows `&mut self`, consumes the cache, and *accumulates* into the
//! parameter gradients. Inference-only paths (`infer`) never allocate
//! caches, take `&self`, and are therefore trivially shareable across
//! threads.

pub mod adam;
pub mod conv;
pub mod embedding;
pub mod grad;
pub mod gradcheck;
pub mod linear;
pub mod lstm;
pub mod param;
pub mod transformer;

pub use adam::AdamHparams;
pub use conv::{CnnConfig, CnnGrads, TextCnnEncoder};
pub use embedding::Embedding;
pub use grad::SparseRowGrads;
pub use linear::{Activation, Linear};
pub use lstm::Lstm;
pub use param::Param;
pub use transformer::{TransformerConfig, TransformerEncoder};

/// Pad/truncate a token sequence to `min_len..=max_len` using `pad_id`.
///
/// Every sequence encoder in this crate requires at least one token
/// (convolutions additionally require `min_len >= widest filter`).
pub fn pad_tokens(tokens: &[u32], min_len: usize, max_len: usize, pad_id: u32) -> Vec<u32> {
    let mut out: Vec<u32> = tokens.iter().copied().take(max_len).collect();
    while out.len() < min_len {
        out.push(pad_id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_tokens_pads_and_truncates() {
        assert_eq!(pad_tokens(&[1, 2], 4, 8, 0), vec![1, 2, 0, 0]);
        assert_eq!(pad_tokens(&[1, 2, 3, 4, 5], 2, 3, 0), vec![1, 2, 3]);
        assert_eq!(pad_tokens(&[], 2, 3, 9), vec![9, 9]);
        assert_eq!(pad_tokens(&[7, 8, 9], 3, 3, 0), vec![7, 8, 9]);
    }
}
