//! 1-d convolutional text encoder (Fig. 4 of the paper).
//!
//! The encoder embeds a token sequence, runs several shallow 1-d
//! convolutions with *different filter widths* in parallel (capturing
//! local semantics of different spans), max-pools each feature map
//! over time, concatenates the pooled features, and projects the
//! result through a fully-connected tanh layer into the final
//! text-based representation.

use crate::adam::AdamHparams;
use crate::embedding::Embedding;
use crate::gradcheck::HasParams;
use crate::linear::{Activation, Linear};
use crate::param::Param;
use pge_tensor::{init, kernels, ops, Matrix};
use rand::Rng;

/// One 1-d convolution of width `k` over a `L × in_dim` sequence,
/// with tanh activation and max-over-time pooling fused in.
#[derive(Clone, Debug)]
pub struct Conv1d {
    /// `filters × (k·in_dim)` weights; each row is one flattened filter.
    w: Param,
    /// `1 × filters` bias.
    b: Param,
    width: usize,
    in_dim: usize,
}

/// Backward cache for one [`Conv1d`] application: per filter, the
/// position of the temporal max and the activated value there.
#[derive(Clone, Debug)]
pub struct ConvCache {
    max_pos: Vec<usize>,
    max_act: Vec<f32>,
}

impl Conv1d {
    pub fn new<R: Rng>(rng: &mut R, width: usize, in_dim: usize, filters: usize) -> Self {
        assert!(width >= 1 && in_dim >= 1 && filters >= 1);
        Conv1d {
            w: Param::new(init::xavier_uniform(rng, filters, width * in_dim)),
            b: Param::zeros(1, filters),
            width,
            in_dim,
        }
    }

    #[inline]
    pub fn filters(&self) -> usize {
        self.w.rows()
    }

    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Max-over-time pooled feature map for sequence `x` (`L × in_dim`,
    /// `L ≥ width`). Writes the pooled vector into `out`.
    pub fn infer_into(&self, x: &Matrix, out: &mut [f32]) {
        self.apply(x, out, None);
    }

    /// Training forward: pooled features plus cache.
    pub fn forward(&self, x: &Matrix) -> (Vec<f32>, ConvCache) {
        let f = self.filters();
        let mut out = vec![0.0; f];
        let mut cache = ConvCache {
            max_pos: vec![0; f],
            max_act: vec![0.0; f],
        };
        self.apply(x, &mut out, Some(&mut cache));
        (out, cache)
    }

    fn apply(&self, x: &Matrix, out: &mut [f32], mut cache: Option<&mut ConvCache>) {
        debug_assert_eq!(x.cols(), self.in_dim);
        assert!(
            x.rows() >= self.width,
            "sequence length {} shorter than filter width {}",
            x.rows(),
            self.width
        );
        let positions = x.rows() - self.width + 1;
        let window = self.width * self.in_dim;
        let xs = x.as_slice();
        let bias = self.b.value.as_slice();
        let nf = out.len();
        // tanh is strictly increasing, so max-over-time of tanh(pre)
        // is tanh(max-over-time pre): compare raw pre-activations and
        // activate once per filter instead of once per position. The
        // loop is position-major so one kernel-dispatched gemv scores
        // every filter against a window, loading the window once per
        // tile of filters instead of once per filter; each filter's
        // pre-activation sequence (and hence its bits) is unchanged
        // from the filter-major dot formulation.
        //
        // Edge cases vs activating inside the loop: when rounding
        // maps two distinct pre-activations to the same tanh, the
        // argmax recorded for backward is now the larger *pre* (the
        // output value is identical); an all-NaN feature map now
        // pools to tanh(-inf) = -1.0 rather than -inf. Both kernels
        // share this path, so determinism is unaffected.
        let mut pre = vec![0.0f32; nf];
        let mut best_pre = vec![f32::NEG_INFINITY; nf];
        let mut best_pos = vec![0usize; nf];
        for i in 0..positions {
            // Rows are contiguous, so a width-k window starting at
            // row i is one contiguous slice of length k·in_dim.
            let win = &xs[i * self.in_dim..i * self.in_dim + window];
            kernels::gemv(self.w.value.as_slice(), win, &mut pre);
            for f in 0..nf {
                let p = pre[f] + bias[f];
                if p > best_pre[f] {
                    best_pre[f] = p;
                    best_pos[f] = i;
                }
            }
        }
        for (f, of) in out.iter_mut().enumerate() {
            let best = best_pre[f].tanh();
            *of = best;
            if let Some(c) = cache.as_deref_mut() {
                c.max_pos[f] = best_pos[f];
                c.max_act[f] = best;
            }
        }
    }

    /// Accumulate parameter grads and add the input gradient into
    /// `dx` (same shape as the forward input).
    pub fn backward(&mut self, x: &Matrix, cache: &ConvCache, grad_out: &[f32], dx: &mut Matrix) {
        let Conv1d {
            w,
            b,
            width,
            in_dim,
        } = self;
        conv_backward_impl(
            &w.value,
            *width,
            *in_dim,
            x,
            cache,
            grad_out,
            &mut w.grad,
            b.grad.as_mut_slice(),
            dx,
        );
    }

    /// [`Conv1d::backward`] with `&self`, accumulating into external
    /// buffers `dw` (`filters × k·in_dim`) and `db` (`filters`) —
    /// the data-parallel variant.
    pub fn backward_into(
        &self,
        x: &Matrix,
        cache: &ConvCache,
        grad_out: &[f32],
        dw: &mut Matrix,
        db: &mut [f32],
        dx: &mut Matrix,
    ) {
        conv_backward_impl(
            &self.w.value,
            self.width,
            self.in_dim,
            x,
            cache,
            grad_out,
            dw,
            db,
            dx,
        );
    }

    /// Fold external gradient buffers into the inline parameter
    /// gradients, clearing the buffers.
    pub fn apply_grads(&mut self, dw: &mut Matrix, db: &mut Matrix) {
        self.w.accumulate_matrix(dw);
        self.b.accumulate_matrix(db);
        dw.fill_zero();
        db.fill_zero();
    }

    /// Zeroed gradient buffers shaped for [`Conv1d::backward_into`].
    pub fn grad_buffer(&self) -> (Matrix, Matrix) {
        (
            Matrix::zeros(self.w.rows(), self.w.cols()),
            Matrix::zeros(self.b.rows(), self.b.cols()),
        )
    }

    pub fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        self.w.adam_step(hp, t);
        self.b.adam_step(hp, t);
    }

    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Shared backward kernel for [`Conv1d`]: reads the weight value and
/// accumulates into whichever gradient storage the caller supplies
/// (inline `Param.grad` or an external per-worker buffer).
#[allow(clippy::too_many_arguments)]
fn conv_backward_impl(
    w_value: &Matrix,
    width: usize,
    in_dim: usize,
    x: &Matrix,
    cache: &ConvCache,
    grad_out: &[f32],
    dw: &mut Matrix,
    db: &mut [f32],
    dx: &mut Matrix,
) {
    debug_assert_eq!(grad_out.len(), w_value.rows());
    debug_assert_eq!((dx.rows(), dx.cols()), (x.rows(), x.cols()));
    let window = width * in_dim;
    for (f, &g_out) in grad_out.iter().enumerate() {
        if g_out == 0.0 {
            continue;
        }
        let t = cache.max_act[f];
        let g = g_out * ops::tanh_deriv_from_output(t);
        let i = cache.max_pos[f];
        db[f] += g;
        let lo = i * in_dim;
        let xwin = &x.as_slice()[lo..lo + window];
        ops::axpy(g, xwin, dw.row_mut(f));
        ops::axpy(g, w_value.row(f), &mut dx.as_mut_slice()[lo..lo + window]);
    }
}

/// Configuration of the CNN text encoder.
#[derive(Clone, Debug)]
pub struct CnnConfig {
    /// Vocabulary size (id 0 is the padding token by convention).
    pub vocab: usize,
    /// Word-embedding dimension.
    pub word_dim: usize,
    /// Filter widths of the parallel convolutions. The paper sweeps
    /// widths in {1,2,3,4} across three CNNs; we default to [1,2,3].
    pub widths: Vec<usize>,
    /// Feature maps per convolution.
    pub filters_per_width: usize,
    /// Output (entity-embedding) dimension after the FC projection.
    pub out_dim: usize,
    /// Token sequences are truncated to this length.
    pub max_len: usize,
}

impl CnnConfig {
    /// Small defaults suitable for the rescaled experiments.
    pub fn small(vocab: usize, out_dim: usize) -> Self {
        CnnConfig {
            vocab,
            word_dim: 32,
            widths: vec![1, 2, 3],
            filters_per_width: 16,
            out_dim,
            max_len: 24,
        }
    }
}

/// A detached gradient buffer covering every parameter of a
/// [`TextCnnEncoder`]: sparse word-embedding rows, per-convolution
/// weight/bias pairs, and the projection layer. One buffer per worker
/// lets backward passes run concurrently against a shared `&self`
/// encoder; [`TextCnnEncoder::apply_grads`] folds buffers back in a
/// caller-chosen (fixed, hence deterministic) order.
#[derive(Debug)]
pub struct CnnGrads {
    /// Sparse word-embedding row gradients, in first-touch order.
    pub words: crate::grad::SparseRowGrads,
    /// `(dW, db)` per convolution, in convolution order.
    pub convs: Vec<(Matrix, Matrix)>,
    /// `(dW, db)` of the projection layer.
    pub proj: (Matrix, Matrix),
}

/// Backward cache of one [`TextCnnEncoder::forward`] call.
#[derive(Clone, Debug)]
pub struct CnnEncCache {
    padded: Vec<u32>,
    x: Matrix,
    conv: Vec<(Vec<f32>, ConvCache)>,
    proj: crate::linear::LinearCache,
}

/// The paper's text encoder: word embeddings → parallel Conv1d +
/// max-over-time → concat → FC(tanh).
#[derive(Clone, Debug)]
pub struct TextCnnEncoder {
    words: Embedding,
    convs: Vec<Conv1d>,
    proj: Linear,
    cfg: CnnConfig,
}

impl TextCnnEncoder {
    /// Build with randomly-initialized word embeddings.
    pub fn new<R: Rng>(rng: &mut R, cfg: CnnConfig) -> Self {
        let words = Embedding::new(rng, cfg.vocab, cfg.word_dim);
        Self::with_embeddings(rng, cfg, words)
    }

    /// Build on top of pre-trained word embeddings (word2vec init, as
    /// in the paper). The table is fine-tuned end to end.
    pub fn with_embeddings<R: Rng>(rng: &mut R, cfg: CnnConfig, words: Embedding) -> Self {
        assert_eq!(words.len(), cfg.vocab, "embedding table size != cfg.vocab");
        assert_eq!(words.dim(), cfg.word_dim, "embedding dim != cfg.word_dim");
        assert!(!cfg.widths.is_empty(), "need at least one filter width");
        let convs: Vec<Conv1d> = cfg
            .widths
            .iter()
            .map(|&w| Conv1d::new(rng, w, cfg.word_dim, cfg.filters_per_width))
            .collect();
        let concat = cfg.widths.len() * cfg.filters_per_width;
        let proj = Linear::new(rng, concat, cfg.out_dim, Activation::Tanh);
        TextCnnEncoder {
            words,
            convs,
            proj,
            cfg,
        }
    }

    #[inline]
    pub fn out_dim(&self) -> usize {
        self.cfg.out_dim
    }

    #[inline]
    pub fn config(&self) -> &CnnConfig {
        &self.cfg
    }

    fn min_len(&self) -> usize {
        self.cfg.widths.iter().copied().max().unwrap_or(1)
    }

    fn pad(&self, tokens: &[u32]) -> Vec<u32> {
        crate::pad_tokens(
            tokens,
            self.min_len(),
            self.cfg.max_len.max(self.min_len()),
            0,
        )
    }

    /// Inference-only encoding (`&self`, no caches) — safe to call from
    /// many threads concurrently.
    pub fn infer(&self, tokens: &[u32]) -> Vec<f32> {
        let padded = self.pad(tokens);
        let x = self.words.gather(&padded);
        let f = self.cfg.filters_per_width;
        let mut h = vec![0.0; self.convs.len() * f];
        for (ci, conv) in self.convs.iter().enumerate() {
            conv.infer_into(&x, &mut h[ci * f..(ci + 1) * f]);
        }
        self.proj.infer(&h)
    }

    /// Training forward: final embedding plus backward cache.
    pub fn forward(&self, tokens: &[u32]) -> (Vec<f32>, CnnEncCache) {
        let padded = self.pad(tokens);
        let x = self.words.gather(&padded);
        let f = self.cfg.filters_per_width;
        let mut h = vec![0.0; self.convs.len() * f];
        let mut conv_caches = Vec::with_capacity(self.convs.len());
        for (ci, conv) in self.convs.iter().enumerate() {
            let (out, cache) = conv.forward(&x);
            h[ci * f..(ci + 1) * f].copy_from_slice(&out);
            conv_caches.push((out, cache));
        }
        let (e, proj_cache) = self.proj.forward(&h);
        (
            e,
            CnnEncCache {
                padded,
                x,
                conv: conv_caches,
                proj: proj_cache,
            },
        )
    }

    /// Backward from dL/d(embedding); accumulates into all parameter
    /// grads including the word-embedding rows used by this sequence.
    pub fn backward(&mut self, cache: &CnnEncCache, grad_out: &[f32]) {
        let dh = self.proj.backward(&cache.proj, grad_out);
        let f = self.cfg.filters_per_width;
        let mut dx = Matrix::zeros(cache.x.rows(), cache.x.cols());
        for (ci, conv) in self.convs.iter_mut().enumerate() {
            let (_, conv_cache) = &cache.conv[ci];
            conv.backward(&cache.x, conv_cache, &dh[ci * f..(ci + 1) * f], &mut dx);
        }
        self.words.accumulate_seq_grad(&cache.padded, &dx);
    }

    /// A zeroed [`CnnGrads`] buffer shaped for this encoder.
    pub fn grad_buffer(&self) -> CnnGrads {
        CnnGrads {
            words: crate::grad::SparseRowGrads::new(self.cfg.word_dim),
            convs: self.convs.iter().map(Conv1d::grad_buffer).collect(),
            proj: self.proj.grad_buffer(),
        }
    }

    /// [`TextCnnEncoder::backward`] with `&self`, accumulating into an
    /// external [`CnnGrads`] buffer instead of the inline parameter
    /// gradients — the data-parallel training path.
    pub fn backward_into(&self, cache: &CnnEncCache, grad_out: &[f32], g: &mut CnnGrads) {
        let dh = self
            .proj
            .backward_into(&cache.proj, grad_out, &mut g.proj.0, &mut g.proj.1);
        let f = self.cfg.filters_per_width;
        let mut dx = Matrix::zeros(cache.x.rows(), cache.x.cols());
        for (ci, conv) in self.convs.iter().enumerate() {
            let (_, conv_cache) = &cache.conv[ci];
            let (dw, db) = &mut g.convs[ci];
            conv.backward_into(
                &cache.x,
                conv_cache,
                &dh[ci * f..(ci + 1) * f],
                dw,
                db.as_mut_slice(),
                &mut dx,
            );
        }
        g.words.add_seq(&cache.padded, &dx);
    }

    /// Fold one gradient buffer into the inline parameter gradients
    /// and clear it for reuse. Call once per buffer, in a fixed order,
    /// before the optimizer step.
    pub fn apply_grads(&mut self, g: &mut CnnGrads) {
        for (row, grad) in g.words.iter() {
            self.words.accumulate_grad(row as u32, grad);
        }
        g.words.clear();
        for (conv, (dw, db)) in self.convs.iter_mut().zip(&mut g.convs) {
            conv.apply_grads(dw, db);
        }
        self.proj.apply_grads(&mut g.proj.0, &mut g.proj.1);
    }

    /// Optimizer step over all parameters (sparse for the word table).
    pub fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        self.words.adam_step(hp, t);
        for c in &mut self.convs {
            c.adam_step(hp, t);
        }
        self.proj.adam_step(hp, t);
    }

    /// Approximate multiply–accumulate count for encoding one sequence
    /// of `len` tokens (used by the scalability study).
    pub fn flops(&self, len: usize) -> u64 {
        let len = len.clamp(self.min_len(), self.cfg.max_len.max(self.min_len()));
        let mut total = 0u64;
        for c in &self.convs {
            let positions = (len - c.width + 1) as u64;
            total += positions * (c.width * self.cfg.word_dim) as u64 * c.filters() as u64;
        }
        total += (self.proj.input_dim() * self.proj.output_dim()) as u64;
        total
    }

    /// Borrow the word-embedding table (tests / analysis).
    pub fn word_embeddings(&self) -> &Embedding {
        &self.words
    }
}

impl HasParams for TextCnnEncoder {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = vec![self.words.param_mut()];
        for c in &mut self.convs {
            ps.extend(c.params_mut());
        }
        ps.extend(self.proj.params_mut());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg() -> CnnConfig {
        CnnConfig {
            vocab: 12,
            word_dim: 4,
            widths: vec![1, 2],
            filters_per_width: 3,
            out_dim: 5,
            max_len: 6,
        }
    }

    #[test]
    fn conv_known_value_single_filter() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv1d::new(&mut rng, 1, 1, 1);
        let mut ps = conv.params_mut();
        ps[0].value = Matrix::from_rows(&[vec![1.0]]);
        ps[1].value = Matrix::zeros(1, 1);
        drop(ps);
        // width-1, identity filter: output = max(tanh(x_i))
        let x = Matrix::from_rows(&[vec![-0.5], vec![0.8], vec![0.2]]);
        let mut out = [0.0];
        conv.infer_into(&x, &mut out);
        assert!((out[0] - 0.8f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn conv_cache_records_argmax() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv1d::new(&mut rng, 1, 1, 1);
        let mut ps = conv.params_mut();
        ps[0].value = Matrix::from_rows(&[vec![1.0]]);
        ps[1].value = Matrix::zeros(1, 1);
        drop(ps);
        let x = Matrix::from_rows(&[vec![0.1], vec![0.9], vec![0.3]]);
        let (_, cache) = conv.forward(&x);
        assert_eq!(cache.max_pos, vec![1]);
    }

    #[test]
    #[should_panic(expected = "shorter than filter width")]
    fn conv_rejects_short_sequences() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv1d::new(&mut rng, 3, 2, 1);
        let x = Matrix::zeros(2, 2);
        let mut out = [0.0];
        conv.infer_into(&x, &mut out);
    }

    #[test]
    fn encoder_infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TextCnnEncoder::new(&mut rng, tiny_cfg());
        let tokens = [3u32, 5, 7, 1];
        let (e, _) = enc.forward(&tokens);
        assert_eq!(e, enc.infer(&tokens));
        assert_eq!(e.len(), 5);
    }

    #[test]
    fn encoder_handles_empty_and_long_input() {
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TextCnnEncoder::new(&mut rng, tiny_cfg());
        let short = enc.infer(&[]);
        assert_eq!(short.len(), 5);
        assert!(short.iter().all(|x| x.is_finite()));
        let long: Vec<u32> = (0..50).map(|i| (i % 12) as u32).collect();
        let e = enc.infer(&long);
        assert!(e.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn similar_token_sequences_produce_similar_embeddings() {
        let mut rng = StdRng::seed_from_u64(6);
        let enc = TextCnnEncoder::new(&mut rng, tiny_cfg());
        let a = enc.infer(&[2, 3, 4, 5]);
        let b = enc.infer(&[2, 3, 4, 5]);
        let c = enc.infer(&[9, 10, 11, 8]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gradcheck_full_encoder() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut enc = TextCnnEncoder::new(&mut rng, tiny_cfg());
        // Spread the word embeddings out: with the default tiny init
        // the max-pooling pre-activations are nearly tied across
        // positions and finite differences flip the argmax.
        enc.words.param_mut().value.scale(8.0);
        let tokens = [3u32, 5, 7, 1, 2];
        let weights: Vec<f32> = (0..5).map(|i| 0.5 - 0.3 * i as f32).collect();
        let loss = |enc: &TextCnnEncoder| -> f32 {
            enc.infer(&tokens)
                .iter()
                .zip(&weights)
                .map(|(e, w)| e * w)
                .sum()
        };
        let (_, cache) = enc.forward(&tokens);
        enc.backward(&cache, &weights);
        // NOTE: max-over-time pooling makes the loss only piecewise
        // smooth; with a tiny net and small eps the argmax is stable,
        // so finite differences remain valid.
        gradcheck::check_param_grads(&mut enc, loss, 3e-2, "TextCnnEncoder");
    }

    #[test]
    fn backward_into_plus_apply_matches_inline_backward() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut a = TextCnnEncoder::new(&mut rng, tiny_cfg());
        let mut b = a.clone();
        let tokens = [3u32, 5, 7, 1, 2];
        let grad_out = [0.5f32, -1.0, 0.25, 2.0, -0.75];

        let (_, cache_a) = a.forward(&tokens);
        a.backward(&cache_a, &grad_out);

        let (_, cache_b) = b.forward(&tokens);
        let mut buf = b.grad_buffer();
        b.backward_into(&cache_b, &grad_out, &mut buf);
        b.apply_grads(&mut buf);

        // Bit-identical gradients on every parameter, and the buffer
        // comes back cleared for reuse.
        let ga: Vec<Vec<f32>> = a
            .params_mut()
            .iter()
            .map(|p| p.grad.as_slice().to_vec())
            .collect();
        let gb: Vec<Vec<f32>> = b
            .params_mut()
            .iter()
            .map(|p| p.grad.as_slice().to_vec())
            .collect();
        assert_eq!(ga, gb);
        assert!(buf.words.is_empty());
        assert!(buf
            .convs
            .iter()
            .all(|(dw, db)| dw.as_slice().iter().all(|&x| x == 0.0)
                && db.as_slice().iter().all(|&x| x == 0.0)));
        assert!(buf.proj.0.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn adam_step_reduces_simple_loss() {
        // Train the encoder to push one embedding coordinate up: loss
        // should fall monotonically-ish over a few steps.
        let mut rng = StdRng::seed_from_u64(8);
        let mut enc = TextCnnEncoder::new(&mut rng, tiny_cfg());
        let tokens = [1u32, 2, 3];
        let hp = AdamHparams::with_lr(0.05);
        let loss_of = |e: &TextCnnEncoder| -e.infer(&tokens)[0];
        let before = loss_of(&enc);
        for t in 1..=30 {
            let (e, cache) = enc.forward(&tokens);
            let mut g = vec![0.0; e.len()];
            g[0] = -1.0; // d(-e0)/de
            enc.backward(&cache, &g);
            enc.adam_step(&hp, t);
        }
        let after = loss_of(&enc);
        assert!(
            after < before,
            "training did not reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn flops_monotone_in_length() {
        let mut rng = StdRng::seed_from_u64(9);
        let enc = TextCnnEncoder::new(&mut rng, tiny_cfg());
        assert!(enc.flops(6) >= enc.flops(3));
        assert!(enc.flops(3) > 0);
    }
}
