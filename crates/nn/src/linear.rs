//! Fully-connected layer `y = act(W·x + b)`.

use crate::adam::AdamHparams;
use crate::param::Param;
use pge_tensor::{init, ops, Matrix};
use rand::Rng;

/// Pointwise nonlinearity applied after the affine transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// Hyperbolic tangent — the paper's choice for the projection from
    /// text representation to final entity embedding.
    Tanh,
    /// Rectified linear unit — used inside transformer FFN blocks.
    Relu,
}

impl Activation {
    #[inline]
    fn apply(self, y: &mut [f32]) {
        match self {
            Activation::None => {}
            Activation::Tanh => ops::tanh_inplace(y),
            Activation::Relu => ops::relu_inplace(y),
        }
    }

    /// Multiply `grad` by the activation derivative, expressed in
    /// terms of the *activated output* `y`.
    #[inline]
    fn backprop(self, y: &[f32], grad: &mut [f32]) {
        match self {
            Activation::None => {}
            Activation::Tanh => {
                for (g, &o) in grad.iter_mut().zip(y) {
                    *g *= ops::tanh_deriv_from_output(o);
                }
            }
            Activation::Relu => {
                for (g, &o) in grad.iter_mut().zip(y) {
                    if o <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
        }
    }
}

/// Cache produced by [`Linear::forward`]: the input and the activated
/// output, both needed by the backward pass.
#[derive(Clone, Debug)]
pub struct LinearCache {
    x: Vec<f32>,
    y: Vec<f32>,
}

/// A dense layer with weight `W: out×in`, bias `b: out`, and an
/// optional activation.
#[derive(Clone, Debug)]
pub struct Linear {
    w: Param,
    b: Param,
    act: Activation,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new<R: Rng>(rng: &mut R, input: usize, output: usize, act: Activation) -> Self {
        Linear {
            w: Param::new(init::xavier_uniform(rng, output, input)),
            b: Param::zeros(1, output),
            act,
        }
    }

    #[inline]
    pub fn input_dim(&self) -> usize {
        self.w.cols()
    }

    #[inline]
    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Inference-only forward pass: no cache, `&self`.
    pub fn infer(&self, x: &[f32]) -> Vec<f32> {
        let mut y = self.affine(x);
        self.act.apply(&mut y);
        y
    }

    fn affine(&self, x: &[f32]) -> Vec<f32> {
        debug_assert_eq!(x.len(), self.input_dim());
        // One gemv over all output rows; `b[o] + dot(row_o, x)` is
        // bit-identical to the previous per-row `y[o] += dot(...)`.
        let mut y = vec![0.0f32; self.output_dim()];
        pge_tensor::kernels::gemv(self.w.value.as_slice(), x, &mut y);
        for (yo, &bo) in y.iter_mut().zip(self.b.value.as_slice()) {
            // `bo + dot` keeps the historical operand order; only the
            // NaN-payload carve-out distinguishes it from `+=`.
            #[allow(clippy::assign_op_pattern)]
            {
                *yo = bo + *yo;
            }
        }
        y
    }

    /// Training forward pass returning the output and a backward cache.
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, LinearCache) {
        let y = self.infer(x);
        (y.clone(), LinearCache { x: x.to_vec(), y })
    }

    /// Accumulate parameter gradients and return the input gradient.
    ///
    /// `grad_out` is dL/dy (post-activation).
    pub fn backward(&mut self, cache: &LinearCache, grad_out: &[f32]) -> Vec<f32> {
        let Linear { w, b, act } = self;
        backward_impl(&w.value, *act, cache, grad_out, &mut w.grad, &mut b.grad)
    }

    /// [`Linear::backward`] with `&self`, accumulating into external
    /// buffers `dw`/`db` (same shapes as the weight and bias) instead
    /// of the inline parameter gradients — lets several workers run
    /// backward passes concurrently against one shared layer.
    pub fn backward_into(
        &self,
        cache: &LinearCache,
        grad_out: &[f32],
        dw: &mut Matrix,
        db: &mut Matrix,
    ) -> Vec<f32> {
        backward_impl(&self.w.value, self.act, cache, grad_out, dw, db)
    }

    /// Fold external gradient buffers (from [`Linear::backward_into`])
    /// into the inline parameter gradients, clearing the buffers.
    pub fn apply_grads(&mut self, dw: &mut Matrix, db: &mut Matrix) {
        self.w.accumulate_matrix(dw);
        self.b.accumulate_matrix(db);
        dw.fill_zero();
        db.fill_zero();
    }

    /// Zeroed gradient buffers shaped for [`Linear::backward_into`].
    pub fn grad_buffer(&self) -> (Matrix, Matrix) {
        (
            Matrix::zeros(self.w.rows(), self.w.cols()),
            Matrix::zeros(self.b.rows(), self.b.cols()),
        )
    }

    /// Dense Adam step for both parameters.
    pub fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        self.w.adam_step(hp, t);
        self.b.adam_step(hp, t);
    }

    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }

    /// Raw parameter access (weight then bias).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Shared backward kernel: reads the weight value, accumulates into
/// whichever gradient storage the caller supplies (inline `Param.grad`
/// or an external per-worker buffer), and returns dL/dx.
fn backward_impl(
    w_value: &Matrix,
    act: Activation,
    cache: &LinearCache,
    grad_out: &[f32],
    dw: &mut Matrix,
    db: &mut Matrix,
) -> Vec<f32> {
    debug_assert_eq!(grad_out.len(), w_value.rows());
    let mut g = grad_out.to_vec();
    act.backprop(&cache.y, &mut g);
    // db += g ; dW[o] += g[o] * x ; dx += Σ_o g[o] * W[o]
    ops::axpy(1.0, &g, db.as_mut_slice());
    let mut dx = vec![0.0; w_value.cols()];
    for (o, &go) in g.iter().enumerate() {
        if go == 0.0 {
            continue;
        }
        ops::axpy(go, &cache.x, dw.row_mut(o));
        ops::axpy(go, w_value.row(o), &mut dx);
    }
    dx
}

impl crate::gradcheck::HasParams for Linear {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Linear::params_mut(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_activation_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(&mut rng, 2, 2, Activation::None);
        // Overwrite with known weights.
        let mut ps = l.params_mut();
        ps[0].value = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        ps[1].value = Matrix::from_rows(&[vec![0.5, -0.5]]);
        drop(ps);
        let y = l.infer(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new(&mut rng, 5, 3, Activation::Tanh);
        let x = [0.1, -0.2, 0.3, 0.0, 0.5];
        let (y, _) = l.forward(&x);
        assert_eq!(y, l.infer(&x));
    }

    #[test]
    fn relu_kills_negative_grads() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(&mut rng, 1, 1, Activation::Relu);
        let mut ps = l.params_mut();
        ps[0].value = Matrix::from_rows(&[vec![-1.0]]);
        ps[1].value = Matrix::zeros(1, 1);
        drop(ps);
        let (y, cache) = l.forward(&[1.0]);
        assert_eq!(y, vec![0.0]); // relu(-1) = 0
        let dx = l.backward(&cache, &[1.0]);
        assert_eq!(dx, vec![0.0]); // gradient blocked
    }

    #[test]
    fn backward_into_matches_inline_backward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = Linear::new(&mut rng, 4, 3, Activation::Tanh);
        let x = [0.3, -0.7, 0.2, 0.9];
        let g_out = [1.0f32, -2.0, 0.5];
        let (_, cache) = l.forward(&x);
        let (mut dw, mut db) = l.grad_buffer();
        let dx_ext = l.backward_into(&cache, &g_out, &mut dw, &mut db);
        let dx_inline = l.backward(&cache, &g_out);
        assert_eq!(dx_ext, dx_inline);
        let ps = l.params_mut();
        assert_eq!(ps[0].grad.as_slice(), dw.as_slice());
        assert_eq!(ps[1].grad.as_slice(), db.as_slice());
    }

    #[test]
    fn apply_grads_folds_and_clears_buffers() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut l = Linear::new(&mut rng, 2, 2, Activation::None);
        let (_, cache) = l.forward(&[1.0, -1.0]);
        let (mut dw, mut db) = l.grad_buffer();
        l.backward_into(&cache, &[1.0, 1.0], &mut dw, &mut db);
        let expect_w = dw.as_slice().to_vec();
        l.apply_grads(&mut dw, &mut db);
        assert!(dw.as_slice().iter().all(|&x| x == 0.0));
        assert!(db.as_slice().iter().all(|&x| x == 0.0));
        let ps = l.params_mut();
        assert_eq!(ps[0].grad.as_slice(), &expect_w[..]);
    }

    #[test]
    fn gradcheck_all_activations() {
        for act in [Activation::None, Activation::Tanh, Activation::Relu] {
            let mut rng = StdRng::seed_from_u64(42);
            let mut l = Linear::new(&mut rng, 4, 3, act);
            let x = [0.3, -0.7, 0.2, 0.9];
            // Scalar loss: weighted sum of outputs to break symmetry.
            let weights = [1.0f32, -2.0, 0.5];
            let loss =
                |l: &Linear| -> f32 { l.infer(&x).iter().zip(&weights).map(|(y, w)| y * w).sum() };

            l.zero_grad();
            let (_, cache) = l.forward(&x);
            let dx = l.backward(&cache, &weights);

            gradcheck::check_param_grads(&mut l, loss, 2e-2, &format!("{act:?}"));

            let numeric_dx = gradcheck::numeric_input_grad(&x, |x| {
                l.infer(x).iter().zip(&weights).map(|(y, w)| y * w).sum()
            });
            gradcheck::assert_close(&dx, &numeric_dx, 2e-2, &format!("{act:?} input"));
        }
    }
}
