//! Lookup-table embeddings with sparse gradients.

use crate::adam::AdamHparams;
use crate::param::Param;
use pge_tensor::{init, ops, Matrix};
use rand::Rng;

/// An embedding table mapping ids `0..n` to `dim`-vectors.
///
/// Gradients are accumulated into a dense shadow matrix but only the
/// rows touched since the last optimizer step are tracked, so both the
/// backward pass and the Adam step cost O(batch · dim), not
/// O(vocab · dim).
#[derive(Clone, Debug)]
pub struct Embedding {
    table: Param,
    touched: Vec<usize>,
    /// Dedup bitmap aligned with rows; avoids `touched` growing with
    /// duplicate ids within a batch.
    touched_mark: Vec<bool>,
}

impl Embedding {
    /// New table with word2vec-style uniform init.
    pub fn new<R: Rng>(rng: &mut R, n: usize, dim: usize) -> Self {
        Embedding::from_matrix(init::embedding(rng, n, dim))
    }

    /// New table with Xavier init (used for relation embeddings where
    /// larger initial magnitudes train faster).
    pub fn new_xavier<R: Rng>(rng: &mut R, n: usize, dim: usize) -> Self {
        Embedding::from_matrix(init::xavier_uniform(rng, n, dim))
    }

    /// New table with uniform phases in `[-π, π]` (RotatE relations).
    pub fn new_phases<R: Rng>(rng: &mut R, n: usize, dim: usize) -> Self {
        Embedding::from_matrix(init::phases(rng, n, dim))
    }

    /// Wrap a pre-trained matrix (e.g. word2vec vectors).
    pub fn from_matrix(table: Matrix) -> Self {
        let n = table.rows();
        Embedding {
            table: Param::new(table),
            touched: Vec::new(),
            touched_mark: vec![false; n],
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.table.rows()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Borrow the row for `id`.
    #[inline]
    pub fn row(&self, id: u32) -> &[f32] {
        self.table.value.row(id as usize)
    }

    /// Mutable row access (pre-training / tests).
    #[inline]
    pub fn row_mut(&mut self, id: u32) -> &mut [f32] {
        self.table.value.row_mut(id as usize)
    }

    /// Gather rows for a token sequence into an `L × dim` matrix.
    pub fn gather(&self, ids: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.dim());
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(id));
        }
        out
    }

    /// Accumulate `grad` into the row for `id`, tracking it for the
    /// next sparse optimizer step.
    pub fn accumulate_grad(&mut self, id: u32, grad: &[f32]) {
        let r = id as usize;
        ops::axpy(1.0, grad, self.table.grad.row_mut(r));
        if !self.touched_mark[r] {
            self.touched_mark[r] = true;
            self.touched.push(r);
        }
    }

    /// Scatter a sequence-gradient matrix back onto its source rows.
    pub fn accumulate_seq_grad(&mut self, ids: &[u32], grad: &Matrix) {
        debug_assert_eq!(ids.len(), grad.rows());
        debug_assert_eq!(self.dim(), grad.cols());
        for (r, &id) in ids.iter().enumerate() {
            self.accumulate_grad(id, grad.row(r));
        }
    }

    /// Fold a detached sparse gradient buffer (from data-parallel
    /// workers) into the inline row gradients, clearing the buffer.
    /// Rows are folded in the buffer's first-touch order, so repeated
    /// reductions over a fixed buffer sequence are deterministic.
    pub fn apply_sparse_grads(&mut self, g: &mut crate::grad::SparseRowGrads) {
        debug_assert_eq!(g.dim(), self.dim());
        for (row, grad) in g.iter() {
            self.accumulate_grad(row as u32, grad);
        }
        g.clear();
    }

    /// Sparse Adam step over the touched rows; clears the touch set.
    pub fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        self.table.adam_step_rows(&self.touched, hp, t);
        for &r in &self.touched {
            self.touched_mark[r] = false;
        }
        self.touched.clear();
    }

    /// Rows currently touched (for tests/diagnostics).
    pub fn touched_rows(&self) -> &[usize] {
        &self.touched
    }

    /// Read-only access to the full table.
    pub fn table(&self) -> &Matrix {
        &self.table.value
    }

    /// Raw parameter access for gradient checking.
    pub fn param_mut(&mut self) -> &mut Param {
        &mut self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gather_returns_rows_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Embedding::new(&mut rng, 5, 3);
        let g = e.gather(&[2, 0, 2]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), e.row(2));
        assert_eq!(g.row(1), e.row(0));
        assert_eq!(g.row(2), e.row(2));
    }

    #[test]
    fn touched_rows_deduplicated() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = Embedding::new(&mut rng, 4, 2);
        e.accumulate_grad(1, &[1.0, 1.0]);
        e.accumulate_grad(1, &[1.0, 1.0]);
        e.accumulate_grad(3, &[1.0, 1.0]);
        assert_eq!(e.touched_rows(), &[1, 3]);
        // Grad accumulated twice on row 1.
        assert_eq!(e.param_mut().grad.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn adam_step_updates_touched_only_and_clears() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = Embedding::new(&mut rng, 3, 2);
        let before0 = e.row(0).to_vec();
        let before1 = e.row(1).to_vec();
        e.accumulate_grad(1, &[1.0, -1.0]);
        e.adam_step(&AdamHparams::with_lr(0.05), 1);
        assert_eq!(e.row(0), &before0[..]);
        assert_ne!(e.row(1), &before1[..]);
        assert!(e.touched_rows().is_empty());
        // A second step with no grads is a no-op for row 0.
        e.adam_step(&AdamHparams::with_lr(0.05), 2);
        assert_eq!(e.row(0), &before0[..]);
    }

    #[test]
    fn seq_grad_scatters() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut e = Embedding::new(&mut rng, 4, 2);
        let grad = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        e.accumulate_seq_grad(&[2, 2], &grad);
        assert_eq!(e.param_mut().grad.row(2), &[1.0, 1.0]);
    }
}
