//! Transformer encoder with [CLS] pooling.
//!
//! Serves two roles in the reproduction: the "Transformer" NLP
//! baseline (1–2 shallow layers) and the "BERT-style" deep text
//! encoder of the scalability study (more layers, wider FFN). The
//! architecture is pre-LN: each sublayer is `x + Sublayer(LN(x))`,
//! which trains stably without warmup at our scales.

// Attention/LN loops index several parallel matrices by row; iterator
// adaptors would obscure the math without changing codegen.
#![allow(clippy::needless_range_loop)]

use crate::adam::AdamHparams;
use crate::embedding::Embedding;
use crate::gradcheck::HasParams;
use crate::param::Param;
use pge_tensor::{init, ops, Matrix};
use rand::Rng;

/// Shape of a Transformer encoder.
#[derive(Clone, Debug)]
pub struct TransformerConfig {
    pub vocab: usize,
    /// Model width; must be divisible by `heads`.
    pub dim: usize,
    pub heads: usize,
    pub layers: usize,
    /// Hidden width of the position-wise FFN.
    pub ffn_dim: usize,
    pub max_len: usize,
}

impl TransformerConfig {
    /// The shallow baseline configuration.
    pub fn baseline(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            dim: 32,
            heads: 4,
            layers: 1,
            ffn_dim: 64,
            max_len: 24,
        }
    }

    /// The deep "BERT-style" configuration used for Table 5: several
    /// times the layers and FFN width of the baseline, mirroring the
    /// paper's CNN-vs-BERT cost gap.
    pub fn bert_style(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            dim: 64,
            heads: 8,
            layers: 4,
            ffn_dim: 256,
            max_len: 32,
        }
    }
}

/// Layer normalization over the last axis with learnable gain/bias.
#[derive(Clone, Debug)]
struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
}

/// Per-row statistics cached for LN backward: normalized input and
/// 1/σ.
#[derive(Clone, Debug)]
struct LnCache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Matrix::full(1, dim, 1.0)),
            beta: Param::zeros(1, dim),
            eps: 1e-5,
        }
    }

    fn forward(&self, x: &Matrix) -> (Matrix, LnCache) {
        let d = x.cols();
        let mut y = Matrix::zeros(x.rows(), d);
        let mut xhat = Matrix::zeros(x.rows(), d);
        let mut inv_std = vec![0.0; x.rows()];
        let g = self.gamma.value.as_slice();
        let b = self.beta.value.as_slice();
        for r in 0..x.rows() {
            let row = x.row(r);
            let mu = ops::mean(row);
            let var = ops::variance(row);
            let inv = 1.0 / (var + self.eps).sqrt();
            inv_std[r] = inv;
            let xh = xhat.row_mut(r);
            let yr = y.row_mut(r);
            for c in 0..d {
                xh[c] = (row[c] - mu) * inv;
                yr[c] = xh[c] * g[c] + b[c];
            }
        }
        (y, LnCache { xhat, inv_std })
    }

    fn infer(&self, x: &Matrix) -> Matrix {
        self.forward(x).0
    }

    /// Returns dL/dx given dL/dy; accumulates γ/β grads.
    fn backward(&mut self, cache: &LnCache, dy: &Matrix) -> Matrix {
        let d = dy.cols();
        let n = d as f32;
        let mut dx = Matrix::zeros(dy.rows(), d);
        let g = self.gamma.value.as_slice().to_vec();
        for r in 0..dy.rows() {
            let dyr = dy.row(r);
            let xh = cache.xhat.row(r);
            // Accumulate parameter grads.
            {
                let dg = self.gamma.grad.as_mut_slice();
                let db = self.beta.grad.as_mut_slice();
                for c in 0..d {
                    dg[c] += dyr[c] * xh[c];
                    db[c] += dyr[c];
                }
            }
            // dxhat = dy * gamma; dx via the standard LN backward.
            let mut sum_dxhat = 0.0;
            let mut sum_dxhat_xhat = 0.0;
            for c in 0..d {
                let dxh = dyr[c] * g[c];
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xh[c];
            }
            let inv = cache.inv_std[r];
            let dxr = dx.row_mut(r);
            for c in 0..d {
                let dxh = dyr[c] * g[c];
                dxr[c] = inv * (dxh - sum_dxhat / n - xh[c] * sum_dxhat_xhat / n);
            }
        }
        dx
    }
}

/// Dense projection applied row-wise to a sequence matrix:
/// `Y = X Wᵀ + b`.
#[derive(Clone, Debug)]
struct SeqLinear {
    /// `out × in`.
    w: Param,
    b: Param,
}

impl SeqLinear {
    fn new<R: Rng>(rng: &mut R, input: usize, output: usize) -> Self {
        SeqLinear {
            w: Param::new(init::xavier_uniform(rng, output, input)),
            b: Param::zeros(1, output),
        }
    }

    fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul_transposed(&self.w.value);
        let b = self.b.value.as_slice();
        for r in 0..y.rows() {
            ops::axpy(1.0, b, y.row_mut(r));
        }
        y
    }

    /// Accumulates grads; returns dL/dX. `x` is the forward input.
    fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        // dW += dYᵀ X ; db += Σ rows dY ; dX = dY W
        let dw = dy.transposed().matmul(x);
        self.w.grad.add_assign(&dw);
        for r in 0..dy.rows() {
            ops::axpy(1.0, dy.row(r), self.b.grad.as_mut_slice());
        }
        dy.matmul(&self.w.value)
    }
}

/// One pre-LN encoder block.
#[derive(Clone, Debug)]
struct Block {
    ln1: LayerNorm,
    wq: SeqLinear,
    wk: SeqLinear,
    wv: SeqLinear,
    wo: SeqLinear,
    ln2: LayerNorm,
    ff1: SeqLinear,
    ff2: SeqLinear,
    heads: usize,
}

/// Forward cache of one block.
#[derive(Clone, Debug)]
struct BlockCache {
    x_in: Matrix,
    ln1: LnCache,
    a: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head attention probabilities, each `L × L`.
    probs: Vec<Matrix>,
    concat: Matrix,
    ln2: LnCache,
    b_norm: Matrix,
    ff_hidden_pre_relu: Matrix,
    ff_hidden: Matrix,
}

impl Block {
    fn new<R: Rng>(rng: &mut R, dim: usize, heads: usize, ffn: usize) -> Self {
        Block {
            ln1: LayerNorm::new(dim),
            wq: SeqLinear::new(rng, dim, dim),
            wk: SeqLinear::new(rng, dim, dim),
            wv: SeqLinear::new(rng, dim, dim),
            wo: SeqLinear::new(rng, dim, dim),
            ln2: LayerNorm::new(dim),
            ff1: SeqLinear::new(rng, dim, ffn),
            ff2: SeqLinear::new(rng, ffn, dim),
            heads,
        }
    }

    /// Multi-head self-attention on normalized input `a`; returns the
    /// concatenated head outputs plus (q, k, v, per-head probs).
    fn attention(&self, a: &Matrix) -> (Matrix, Matrix, Matrix, Matrix, Vec<Matrix>) {
        let l = a.rows();
        let d = a.cols();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.forward(a);
        let k = self.wk.forward(a);
        let v = self.wv.forward(a);
        let mut concat = Matrix::zeros(l, d);
        let mut probs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * dh;
            let mut p = Matrix::zeros(l, l);
            for i in 0..l {
                let qi = &q.row(i)[off..off + dh];
                let pr = p.row_mut(i);
                for j in 0..l {
                    pr[j] = ops::dot(qi, &k.row(j)[off..off + dh]) * scale;
                }
                ops::softmax_inplace(pr);
            }
            for i in 0..l {
                let out = &mut concat.row_mut(i)[off..off + dh];
                for j in 0..l {
                    let pij = p[(i, j)];
                    if pij != 0.0 {
                        ops::axpy(pij, &v.row(j)[off..off + dh], out);
                    }
                }
            }
            probs.push(p);
        }
        (concat, q, k, v, probs)
    }

    fn forward(&self, x: &Matrix, want_cache: bool) -> (Matrix, Option<BlockCache>) {
        // Attention sublayer.
        let (a, ln1_cache) = self.ln1.forward(x);
        let (concat, q, k, v, probs) = self.attention(&a);
        let attn_out = self.wo.forward(&concat);
        let mut x_mid = x.clone();
        x_mid.add_assign(&attn_out);
        // FFN sublayer.
        let (b_norm, ln2_cache) = self.ln2.forward(&x_mid);
        let hidden_pre = self.ff1.forward(&b_norm);
        let mut hidden = hidden_pre.clone();
        ops::relu_inplace(hidden.as_mut_slice());
        let ff_out = self.ff2.forward(&hidden);
        let mut out = x_mid.clone();
        out.add_assign(&ff_out);
        let cache = want_cache.then(|| BlockCache {
            x_in: x.clone(),
            ln1: ln1_cache,
            a,
            q,
            k,
            v,
            probs,
            concat,
            ln2: ln2_cache,
            b_norm,
            ff_hidden_pre_relu: hidden_pre,
            ff_hidden: hidden,
        });
        (out, cache)
    }

    /// Returns dL/dx_in.
    fn backward(&mut self, cache: &BlockCache, dout: &Matrix) -> Matrix {
        let l = cache.x_in.rows();
        let d = cache.x_in.cols();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        // FFN sublayer: out = x_mid + ff2(relu(ff1(ln2(x_mid)))).
        let mut d_hidden = self.ff2.backward(&cache.ff_hidden, dout);
        for (g, &pre) in d_hidden
            .as_mut_slice()
            .iter_mut()
            .zip(cache.ff_hidden_pre_relu.as_slice())
        {
            if pre <= 0.0 {
                *g = 0.0;
            }
        }
        let d_bnorm = self.ff1.backward(&cache.b_norm, &d_hidden);
        let mut d_xmid = self.ln2.backward(&cache.ln2, &d_bnorm);
        d_xmid.add_assign(dout); // residual path

        // Attention sublayer: x_mid = x_in + wo(attn(ln1(x_in))).
        let d_concat = self.wo.backward(&cache.concat, &d_xmid);
        let mut dq = Matrix::zeros(l, d);
        let mut dk = Matrix::zeros(l, d);
        let mut dv = Matrix::zeros(l, d);
        for h in 0..self.heads {
            let off = h * dh;
            let p = &cache.probs[h];
            for i in 0..l {
                let doi = &d_concat.row(i)[off..off + dh];
                // dV_j += P_ij · dO_i ; dP_ij = dO_i · V_j
                let mut dp = vec![0.0; l];
                for j in 0..l {
                    let pij = p[(i, j)];
                    if pij != 0.0 {
                        ops::axpy(pij, doi, &mut dv.row_mut(j)[off..off + dh]);
                    }
                    dp[j] = ops::dot(doi, &cache.v.row(j)[off..off + dh]);
                }
                // Softmax backward: dS_ij = P_ij (dP_ij − Σ_k dP_ik P_ik).
                let dot_pp = ops::dot(&dp, p.row(i));
                for j in 0..l {
                    let ds = p[(i, j)] * (dp[j] - dot_pp) * scale;
                    if ds != 0.0 {
                        ops::axpy(
                            ds,
                            &cache.k.row(j)[off..off + dh],
                            &mut dq.row_mut(i)[off..off + dh],
                        );
                        let qi = cache.q.row(i)[off..off + dh].to_vec();
                        ops::axpy(ds, &qi, &mut dk.row_mut(j)[off..off + dh]);
                    }
                }
            }
        }
        let mut d_a = self.wq.backward(&cache.a, &dq);
        d_a.add_assign(&self.wk.backward(&cache.a, &dk));
        d_a.add_assign(&self.wv.backward(&cache.a, &dv));
        let mut d_x = self.ln1.backward(&cache.ln1, &d_a);
        d_x.add_assign(&d_xmid); // residual path
        d_x
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.ln1.gamma,
            &mut self.ln1.beta,
            &mut self.wq.w,
            &mut self.wq.b,
            &mut self.wk.w,
            &mut self.wk.b,
            &mut self.wv.w,
            &mut self.wv.b,
            &mut self.wo.w,
            &mut self.wo.b,
            &mut self.ln2.gamma,
            &mut self.ln2.beta,
            &mut self.ff1.w,
            &mut self.ff1.b,
            &mut self.ff2.w,
            &mut self.ff2.b,
        ]
    }
}

/// Backward cache of one [`TransformerEncoder::forward`] call.
#[derive(Clone, Debug)]
pub struct TransformerCache {
    padded: Vec<u32>,
    blocks: Vec<BlockCache>,
    ln_f: LnCache,
}

/// Transformer encoder; the sequence encoding is the final-LN output
/// at position 0, so callers should place a [CLS]-style token first
/// (see [`TransformerEncoder::CLS`]).
#[derive(Clone, Debug)]
pub struct TransformerEncoder {
    words: Embedding,
    pos: Param,
    blocks: Vec<Block>,
    ln_f: LayerNorm,
    cfg: TransformerConfig,
}

impl TransformerEncoder {
    /// Conventional id of the [CLS] token. Generators reserve ids 0
    /// (pad) and 1 (cls) in every vocabulary.
    pub const CLS: u32 = 1;

    pub fn new<R: Rng>(rng: &mut R, cfg: TransformerConfig) -> Self {
        assert!(
            cfg.dim.is_multiple_of(cfg.heads),
            "dim must divide into heads"
        );
        let words = Embedding::new(rng, cfg.vocab, cfg.dim);
        let pos = Param::new(init::uniform(rng, cfg.max_len, cfg.dim, 0.02));
        let blocks = (0..cfg.layers)
            .map(|_| Block::new(rng, cfg.dim, cfg.heads, cfg.ffn_dim))
            .collect();
        let ln_f = LayerNorm::new(cfg.dim);
        TransformerEncoder {
            words,
            pos,
            blocks,
            ln_f,
            cfg,
        }
    }

    #[inline]
    pub fn out_dim(&self) -> usize {
        self.cfg.dim
    }

    #[inline]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// `[CLS]` + tokens, padded/truncated to the model's max length.
    fn pad(&self, tokens: &[u32]) -> Vec<u32> {
        let mut seq = Vec::with_capacity(self.cfg.max_len);
        seq.push(Self::CLS);
        seq.extend(tokens.iter().copied().take(self.cfg.max_len - 1));
        if seq.len() < 2 {
            seq.push(0);
        }
        seq
    }

    fn embed(&self, padded: &[u32]) -> Matrix {
        let mut x = self.words.gather(padded);
        for (r, _) in padded.iter().enumerate() {
            ops::axpy(1.0, self.pos.value.row(r), x.row_mut(r));
        }
        x
    }

    /// Inference-only [CLS] encoding.
    pub fn infer(&self, tokens: &[u32]) -> Vec<f32> {
        let padded = self.pad(tokens);
        let mut x = self.embed(&padded);
        for b in &self.blocks {
            x = b.forward(&x, false).0;
        }
        self.ln_f.infer(&x).row(0).to_vec()
    }

    /// Training forward: [CLS] encoding plus cache.
    pub fn forward(&self, tokens: &[u32]) -> (Vec<f32>, TransformerCache) {
        let padded = self.pad(tokens);
        let mut x = self.embed(&padded);
        let mut caches = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            let (nx, c) = b.forward(&x, true);
            caches.push(c.expect("cache requested"));
            x = nx;
        }
        let (y, ln_f_cache) = self.ln_f.forward(&x);
        (
            y.row(0).to_vec(),
            TransformerCache {
                padded,
                blocks: caches,
                ln_f: ln_f_cache,
            },
        )
    }

    /// Backward from dL/d(cls encoding).
    pub fn backward(&mut self, cache: &TransformerCache, grad_out: &[f32]) {
        let l = cache.padded.len();
        let d = self.cfg.dim;
        let mut dy = Matrix::zeros(l, d);
        dy.row_mut(0).copy_from_slice(grad_out);
        let mut dx = self.ln_f.backward(&cache.ln_f, &dy);
        for (b, c) in self.blocks.iter_mut().zip(&cache.blocks).rev() {
            dx = b.backward(c, &dx);
        }
        // Into token + positional embeddings.
        for (r, &id) in cache.padded.iter().enumerate() {
            self.words.accumulate_grad(id, dx.row(r));
            ops::axpy(1.0, dx.row(r), self.pos.grad.row_mut(r));
        }
    }

    pub fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        self.words.adam_step(hp, t);
        self.pos.adam_step(hp, t);
        for b in &mut self.blocks {
            for p in b.params_mut() {
                p.adam_step(hp, t);
            }
        }
        self.ln_f.gamma.adam_step(hp, t);
        self.ln_f.beta.adam_step(hp, t);
    }

    /// Approximate multiply–accumulates for encoding `len` tokens —
    /// quadratic in sequence length via attention, linear in layers.
    pub fn flops(&self, len: usize) -> u64 {
        let l = (len + 1).min(self.cfg.max_len) as u64;
        let d = self.cfg.dim as u64;
        let f = self.cfg.ffn_dim as u64;
        let per_layer = 4 * l * d * d // q,k,v,o projections
            + 2 * l * l * d          // scores + weighted sum
            + 2 * l * d * f; // ffn
        per_layer * self.cfg.layers as u64
    }
}

impl HasParams for TransformerEncoder {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = vec![self.words.param_mut()];
        ps.push(&mut self.pos);
        for b in &mut self.blocks {
            ps.extend(b.params_mut());
        }
        ps.push(&mut self.ln_f.gamma);
        ps.push(&mut self.ln_f.beta);
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TransformerEncoder {
        let mut rng = StdRng::seed_from_u64(1);
        TransformerEncoder::new(
            &mut rng,
            TransformerConfig {
                vocab: 12,
                dim: 8,
                heads: 2,
                layers: 2,
                ffn_dim: 12,
                max_len: 6,
            },
        )
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 10.0, 10.0, 10.0]]);
        let (y, _) = ln.forward(&x);
        // Row 0: zero mean, unit variance under γ=1, β=0.
        assert!(ops::mean(y.row(0)).abs() < 1e-5);
        assert!((ops::variance(y.row(0)) - 1.0).abs() < 1e-3);
        // Constant row maps to ~0 (variance ≈ 0 guarded by eps).
        assert!(y.row(1).iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn infer_matches_forward() {
        let t = tiny();
        let tokens = [3u32, 5, 7];
        let (e, _) = t.forward(&tokens);
        assert_eq!(e, t.infer(&tokens));
        assert_eq!(e.len(), 8);
    }

    #[test]
    fn order_sensitivity_via_positions() {
        let t = tiny();
        assert_ne!(t.infer(&[2, 3]), t.infer(&[3, 2]));
    }

    #[test]
    fn empty_input_ok() {
        let t = tiny();
        let e = t.infer(&[]);
        assert!(e.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn gradcheck_transformer() {
        let mut rng = StdRng::seed_from_u64(3);
        // Single layer keeps finite-difference noise manageable.
        let mut t = TransformerEncoder::new(
            &mut rng,
            TransformerConfig {
                vocab: 10,
                dim: 4,
                heads: 2,
                layers: 1,
                ffn_dim: 6,
                max_len: 5,
            },
        );
        let tokens = [2u32, 4, 6];
        let weights = [1.0f32, -0.5, 0.25, 0.75];
        let loss = |t: &TransformerEncoder| -> f32 {
            t.infer(&tokens)
                .iter()
                .zip(&weights)
                .map(|(e, w)| e * w)
                .sum()
        };
        let (_, cache) = t.forward(&tokens);
        t.backward(&cache, &weights);
        gradcheck::check_param_grads(&mut t, loss, 5e-2, "Transformer");
    }

    #[test]
    fn training_reduces_loss() {
        let mut t = tiny();
        let tokens = [3u32, 4, 5];
        let hp = AdamHparams::with_lr(0.02);
        let before = -t.infer(&tokens)[0];
        for step in 1..=40 {
            let (e, cache) = t.forward(&tokens);
            let mut g = vec![0.0; e.len()];
            g[0] = -1.0;
            t.backward(&cache, &g);
            t.adam_step(&hp, step);
        }
        let after = -t.infer(&tokens)[0];
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn bert_style_is_much_more_expensive_than_baseline() {
        let base = TransformerConfig::baseline(100);
        let bert = TransformerConfig::bert_style(100);
        let mut rng = StdRng::seed_from_u64(4);
        let tb = TransformerEncoder::new(&mut rng, base);
        let td = TransformerEncoder::new(&mut rng, bert);
        assert!(td.flops(20) > 5 * tb.flops(20));
    }
}
