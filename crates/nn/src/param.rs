//! A learnable tensor with its gradient and Adam moment estimates.

use crate::adam::AdamHparams;
use pge_tensor::Matrix;

/// A parameter tensor plus everything training needs alongside it.
///
/// Keeping the gradient and the Adam first/second moments inline (at a
/// 4× memory cost that is irrelevant at this workspace's scales) means
/// the optimizer is a pair of methods rather than an external registry
/// keyed by parameter identity, and sparse row-wise updates for
/// embedding tables fall out naturally.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Adam first-moment estimate.
    m: Matrix,
    /// Adam second-moment estimate.
    v: Matrix,
}

impl Param {
    /// Wrap an initialized value tensor.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = (value.rows(), value.cols());
        Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    /// Zero-initialized parameter (used for biases).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Param::new(Matrix::zeros(rows, cols))
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.value.rows()
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.value.cols()
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Fold an externally-accumulated gradient buffer (same shape as
    /// `value`) into this parameter's gradient. Used by data-parallel
    /// training, where each worker accumulates into its own buffer and
    /// the buffers are reduced here in a fixed order.
    pub fn accumulate_matrix(&mut self, g: &Matrix) {
        self.grad.add_assign(g);
    }

    /// Dense Adam step over the whole tensor, then clears the gradient.
    ///
    /// `t` is the 1-based global step count used for bias correction.
    pub fn adam_step(&mut self, hp: &AdamHparams, t: u64) {
        let (bc1, bc2) = hp.bias_corrections(t);
        let value = self.value.as_mut_slice();
        let grad = self.grad.as_mut_slice();
        let m = self.m.as_mut_slice();
        let v = self.v.as_mut_slice();
        for i in 0..value.len() {
            let g = grad[i];
            m[i] = hp.beta1 * m[i] + (1.0 - hp.beta1) * g;
            v[i] = hp.beta2 * v[i] + (1.0 - hp.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            value[i] -= hp.lr * m_hat / (v_hat.sqrt() + hp.eps);
            grad[i] = 0.0;
        }
    }

    /// Sparse ("lazy") Adam step over the listed rows only.
    ///
    /// Embedding tables touch a tiny fraction of their rows per batch;
    /// updating (and zeroing) just those rows keeps the step cost
    /// proportional to the batch, not the vocabulary. Rows may repeat;
    /// a repeated row is stepped once per occurrence, which is the
    /// standard lazy-Adam behaviour and harmless because its gradient
    /// is cleared by the first step.
    pub fn adam_step_rows(&mut self, rows: &[usize], hp: &AdamHparams, t: u64) {
        let (bc1, bc2) = hp.bias_corrections(t);
        let cols = self.value.cols();
        let value = self.value.as_mut_slice();
        let grad = self.grad.as_mut_slice();
        let m = self.m.as_mut_slice();
        let v = self.v.as_mut_slice();
        for &r in rows {
            let lo = r * cols;
            for i in lo..lo + cols {
                let g = grad[i];
                if g == 0.0 && m[i] == 0.0 && v[i] == 0.0 {
                    continue;
                }
                m[i] = hp.beta1 * m[i] + (1.0 - hp.beta1) * g;
                v[i] = hp.beta2 * v[i] + (1.0 - hp.beta2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                value[i] -= hp.lr * m_hat / (v_hat.sqrt() + hp.eps);
                grad[i] = 0.0;
            }
        }
    }

    /// Plain SGD step (used by word2vec pre-training where Adam's
    /// memory per vocabulary row is not worth it), then clears grads.
    pub fn sgd_step(&mut self, lr: f32) {
        let value = self.value.as_mut_slice();
        let grad = self.grad.as_mut_slice();
        for i in 0..value.len() {
            value[i] -= lr * grad[i];
            grad[i] = 0.0;
        }
    }

    /// L2 norm of the accumulated gradient (diagnostics, tests).
    pub fn grad_norm(&self) -> f32 {
        self.grad.frobenius_norm()
    }

    /// Borrow the Adam `(first, second)` moment estimates — read by
    /// trainer checkpointing, which must persist the full optimizer
    /// state for a resumed run to be bit-identical to an
    /// uninterrupted one.
    pub fn adam_state(&self) -> (&Matrix, &Matrix) {
        (&self.m, &self.v)
    }

    /// Mutable Adam `(first, second)` moments — written when restoring
    /// a trainer checkpoint.
    pub fn adam_state_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.m, &mut self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp(lr: f32) -> AdamHparams {
        AdamHparams {
            lr,
            ..AdamHparams::default()
        }
    }

    #[test]
    fn adam_moves_against_gradient() {
        let mut p = Param::new(Matrix::full(1, 2, 1.0));
        p.grad.as_mut_slice()[0] = 1.0; // positive grad → value decreases
        p.grad.as_mut_slice()[1] = -1.0; // negative grad → value increases
        p.adam_step(&hp(0.1), 1);
        assert!(p.value.as_slice()[0] < 1.0);
        assert!(p.value.as_slice()[1] > 1.0);
        // Gradient cleared after the step.
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the very first Adam step has magnitude
        // ≈ lr regardless of gradient scale.
        for &g in &[1e-3f32, 1.0, 1e3] {
            let mut p = Param::new(Matrix::zeros(1, 1));
            p.grad.as_mut_slice()[0] = g;
            p.adam_step(&hp(0.01), 1);
            let step = p.value.as_slice()[0].abs();
            assert!((step - 0.01).abs() < 1e-3, "g={g} step={step}");
        }
    }

    #[test]
    fn sparse_step_touches_only_listed_rows() {
        let mut p = Param::new(Matrix::full(3, 2, 1.0));
        for x in p.grad.as_mut_slice() {
            *x = 1.0;
        }
        p.adam_step_rows(&[1], &hp(0.1), 1);
        assert_eq!(p.value.row(0), &[1.0, 1.0]);
        assert!(p.value.row(1)[0] < 1.0);
        assert_eq!(p.value.row(2), &[1.0, 1.0]);
        // Row 1's grad cleared, others kept.
        assert_eq!(p.grad.row(1), &[0.0, 0.0]);
        assert_eq!(p.grad.row(0), &[1.0, 1.0]);
    }

    #[test]
    fn sparse_step_handles_repeated_rows() {
        let mut p = Param::new(Matrix::full(2, 2, 1.0));
        for x in p.grad.as_mut_slice() {
            *x = 1.0;
        }
        let before = p.value.row(0).to_vec();
        p.adam_step_rows(&[0, 0], &hp(0.1), 1);
        // Second visit sees zero grad + nonzero moments; it still decays
        // the moments but must not blow up.
        assert!(p.value.row(0)[0] < before[0]);
        assert!(p.value.row(0)[0].is_finite());
    }

    #[test]
    fn sgd_step_basic() {
        let mut p = Param::new(Matrix::full(1, 1, 2.0));
        p.grad.as_mut_slice()[0] = 0.5;
        p.sgd_step(1.0);
        assert_eq!(p.value.as_slice()[0], 1.5);
        assert_eq!(p.grad.as_slice()[0], 0.0);
    }

    #[test]
    fn adam_state_transplant_resumes_bit_identically() {
        // Copying value + moments into a fresh Param and continuing
        // training must match the original bit for bit — the invariant
        // trainer checkpoint/resume is built on.
        let h = hp(0.05);
        let mut a = Param::new(Matrix::full(1, 2, 1.0));
        a.grad.as_mut_slice().copy_from_slice(&[0.7, -1.3]);
        a.adam_step(&h, 1);
        let (m, v) = a.adam_state();
        assert!(m.as_slice().iter().any(|&x| x != 0.0));
        let mut b = Param::new(a.value.clone());
        {
            let (bm, bv) = b.adam_state_mut();
            *bm = m.clone();
            *bv = v.clone();
        }
        for t in 2..5 {
            a.grad.as_mut_slice().copy_from_slice(&[0.2, 0.4]);
            b.grad.as_mut_slice().copy_from_slice(&[0.2, 0.4]);
            a.adam_step(&h, t);
            b.adam_step(&h, t);
        }
        let bits =
            |p: &Param| -> Vec<u32> { p.value.as_slice().iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x-3)², a smoke test that the update rule is
        // actually Adam and not something sign-flipped.
        let mut p = Param::new(Matrix::zeros(1, 1));
        let h = hp(0.1);
        for t in 1..=500 {
            let x = p.value.as_slice()[0];
            p.grad.as_mut_slice()[0] = 2.0 * (x - 3.0);
            p.adam_step(&h, t);
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 0.05);
    }
}
