//! Detached gradient buffers for data-parallel training.
//!
//! The classic convention in this crate keeps each parameter's
//! gradient inline (`Param.grad`), which forces `backward` to take
//! `&mut self` and serializes training. The types here decouple
//! gradient *storage* from the parameters so several workers can run
//! backward passes concurrently against a shared `&self` network, each
//! into its own buffer, and the buffers can then be reduced into the
//! real parameter gradients in a fixed order — the foundation of the
//! deterministic data-parallel trainer (and of any future sharded or
//! distributed setup).
//!
//! Determinism contract: every buffer replays its accumulation in
//! insertion order, so "accumulate per worker, reduce in fixed worker
//! order" produces bit-identical floats regardless of how many OS
//! threads actually ran the workers.

use pge_tensor::{ops, Matrix};
use std::collections::HashMap;

/// A sparse row-wise gradient buffer for an embedding table.
///
/// Rows are tracked in first-touch (insertion) order and replayed in
/// that order by [`SparseRowGrads::iter`], which keeps reductions
/// deterministic. Cleared buffers keep their row allocations, so a
/// per-batch accumulate → reduce → clear cycle stops allocating after
/// warm-up.
#[derive(Debug, Default)]
pub struct SparseRowGrads {
    dim: usize,
    /// row id → slot in `rows`/`grads`.
    index: HashMap<usize, usize>,
    /// Row ids in first-touch order.
    rows: Vec<usize>,
    /// Gradient storage; slots `0..rows.len()` are active, the rest
    /// are a reuse pool from earlier cycles.
    grads: Vec<Vec<f32>>,
}

impl SparseRowGrads {
    /// An empty buffer for `dim`-wide rows.
    pub fn new(dim: usize) -> Self {
        SparseRowGrads {
            dim,
            ..Default::default()
        }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct rows touched since the last [`clear`](Self::clear).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Accumulate `grad` into the buffer row for table row `row`.
    pub fn add_row(&mut self, row: usize, grad: &[f32]) {
        debug_assert_eq!(grad.len(), self.dim);
        let slot = match self.index.get(&row) {
            Some(&s) => s,
            None => {
                let s = self.rows.len();
                if s == self.grads.len() {
                    self.grads.push(vec![0.0; self.dim]);
                } else {
                    self.grads[s].iter_mut().for_each(|x| *x = 0.0);
                }
                self.index.insert(row, s);
                self.rows.push(row);
                s
            }
        };
        ops::axpy(1.0, grad, &mut self.grads[slot]);
    }

    /// Scatter a sequence-gradient matrix (one row per token) back
    /// onto its source rows.
    pub fn add_seq(&mut self, ids: &[u32], grad: &Matrix) {
        debug_assert_eq!(ids.len(), grad.rows());
        debug_assert_eq!(self.dim, grad.cols());
        for (r, &id) in ids.iter().enumerate() {
            self.add_row(id as usize, grad.row(r));
        }
    }

    /// Touched rows with their gradients, in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f32])> {
        self.rows
            .iter()
            .zip(&self.grads)
            .map(|(&r, g)| (r, g.as_slice()))
    }

    /// Forget all touched rows, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.index.clear();
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_row_in_insertion_order() {
        let mut g = SparseRowGrads::new(2);
        g.add_row(7, &[1.0, 0.0]);
        g.add_row(3, &[0.0, 1.0]);
        g.add_row(7, &[1.0, 1.0]);
        let got: Vec<(usize, Vec<f32>)> = g.iter().map(|(r, v)| (r, v.to_vec())).collect();
        assert_eq!(got, vec![(7, vec![2.0, 1.0]), (3, vec![0.0, 1.0])]);
    }

    #[test]
    fn clear_resets_rows_but_reuses_slots() {
        let mut g = SparseRowGrads::new(1);
        g.add_row(0, &[5.0]);
        g.add_row(1, &[6.0]);
        g.clear();
        assert!(g.is_empty());
        // Reused slot must not leak the old accumulation.
        g.add_row(9, &[1.0]);
        let got: Vec<(usize, Vec<f32>)> = g.iter().map(|(r, v)| (r, v.to_vec())).collect();
        assert_eq!(got, vec![(9, vec![1.0])]);
    }

    #[test]
    fn add_seq_scatters_by_token() {
        let mut g = SparseRowGrads::new(2);
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![1.0, 1.0]]);
        g.add_seq(&[4, 4, 2], &m);
        let got: Vec<(usize, Vec<f32>)> = g.iter().map(|(r, v)| (r, v.to_vec())).collect();
        assert_eq!(got, vec![(4, vec![1.0, 2.0]), (2, vec![1.0, 1.0])]);
    }
}
