//! Property-based gradient checks over randomized layer shapes.

use pge_nn::gradcheck;
use pge_nn::{Activation, CnnConfig, Linear, Lstm, TextCnnEncoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn linear_gradcheck_random_shapes(
        input in 1usize..6,
        output in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut l = Linear::new(&mut rng, input, output, Activation::Tanh);
        let x: Vec<f32> = (0..input).map(|i| (i as f32 * 0.37 + seed as f32 * 0.01).sin()).collect();
        let w: Vec<f32> = (0..output).map(|i| 1.0 - 0.4 * i as f32).collect();
        let loss = |l: &Linear| -> f32 {
            l.infer(&x).iter().zip(&w).map(|(y, c)| y * c).sum()
        };
        let (_, cache) = l.forward(&x);
        let _ = l.backward(&cache, &w);
        gradcheck::check_param_grads(&mut l, loss, 5e-2, "prop Linear");
    }

    #[test]
    fn lstm_gradcheck_random_sequences(
        len in 1usize..5,
        hidden in 2usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut l = Lstm::new(&mut rng, 12, 3, hidden, 8);
        let tokens: Vec<u32> = (0..len).map(|i| ((i as u64 + seed) % 12) as u32).collect();
        let w: Vec<f32> = (0..hidden).map(|i| 0.8 - 0.3 * i as f32).collect();
        let loss = |l: &Lstm| -> f32 {
            l.infer(&tokens).iter().zip(&w).map(|(h, c)| h * c).sum()
        };
        let (_, cache) = l.forward(&tokens);
        l.backward(&cache, &w);
        gradcheck::check_param_grads(&mut l, loss, 5e-2, "prop Lstm");
    }

    #[test]
    fn cnn_output_always_finite_and_sized(
        len in 0usize..30,
        out_dim in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = TextCnnEncoder::new(
            &mut rng,
            CnnConfig {
                vocab: 20,
                word_dim: 6,
                widths: vec![1, 2, 3],
                filters_per_width: 4,
                out_dim,
                max_len: 12,
            },
        );
        let tokens: Vec<u32> = (0..len).map(|i| ((i as u64 * 7 + seed) % 20) as u32).collect();
        let e = enc.infer(&tokens);
        prop_assert_eq!(e.len(), out_dim);
        prop_assert!(e.iter().all(|x| x.is_finite()));
        // tanh projection keeps outputs bounded.
        prop_assert!(e.iter().all(|x| x.abs() <= 1.0));
    }

    #[test]
    fn adam_keeps_parameters_finite(seed in 0u64..1000, steps in 1u64..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut l = Linear::new(&mut rng, 4, 3, Activation::None);
        let hp = pge_nn::AdamHparams::with_lr(0.05);
        let x = [0.5f32, -0.5, 1.0, -1.0];
        for t in 1..=steps {
            let (y, cache) = l.forward(&x);
            let g: Vec<f32> = y.iter().map(|v| v - 1.0).collect();
            let _ = l.backward(&cache, &g);
            l.adam_step(&hp, t);
        }
        for p in l.params_mut() {
            prop_assert!(p.value.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn pad_tokens_contract(
        tokens in prop::collection::vec(0u32..50, 0..40),
        min_len in 1usize..6,
        extra in 0usize..20,
    ) {
        let max_len = min_len + extra;
        let padded = pge_nn::pad_tokens(&tokens, min_len, max_len, 0);
        prop_assert!(padded.len() >= min_len);
        prop_assert!(padded.len() <= max_len);
        // Original prefix preserved.
        for (a, b) in padded.iter().zip(&tokens) {
            prop_assert_eq!(a, b);
        }
    }
}
