//! End-to-end kernel invariance of the CNN text encoder: the full
//! embed → conv(+tanh-hoisted max pool) → project pipeline must give
//! bit-identical outputs whether the scalar-reference or AVX2 kernels
//! run underneath. This is the layer-level complement of the per-op
//! proofs in `pge-tensor/tests/kernel_parity.rs`, and what the scan
//! shard-CRC and training-resume guarantees actually rest on.
//!
//! Kept as one `#[test]` so the global kernel override is never
//! flipped concurrently by sibling tests in this binary.

use pge_nn::conv::{CnnConfig, TextCnnEncoder};
use pge_tensor::{kernels, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn encoder_bits_invariant_under_kernel_switch() {
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = CnnConfig {
        vocab: 64,
        word_dim: 19, // deliberately not a multiple of 8: ragged tails
        widths: vec![1, 2, 3],
        filters_per_width: 7,
        out_dim: 13,
        max_len: 21,
    };
    let enc = TextCnnEncoder::new(&mut rng, cfg);

    let mut sequences: Vec<Vec<u32>> = vec![vec![], vec![5], (0..40).map(|i| i % 64).collect()];
    for _ in 0..25 {
        let len = rng.gen_range(1..30);
        sequences.push((0..len).map(|_| rng.gen_range(0..64)).collect());
    }

    for tokens in &sequences {
        kernels::set_kernel(Some(kernels::Kernel::Scalar));
        let scalar = enc.infer(tokens);
        kernels::set_kernel(Some(kernels::Kernel::Simd));
        let simd = enc.infer(tokens);
        kernels::set_kernel(None);
        let sb: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
        let vb: Vec<u32> = simd.iter().map(|x| x.to_bits()).collect();
        assert_eq!(sb, vb, "encoder output bits diverged for {tokens:?}");
    }

    // Matrix products too (backward path / other layers): matmul's
    // broadcast-axpy and matmul_transposed's dot both dispatch.
    let a = Matrix::from_vec(
        9,
        23,
        (0..9 * 23)
            .map(|i| ((i * 37) % 101) as f32 * 0.13)
            .collect(),
    );
    let b = Matrix::from_vec(
        23,
        11,
        (0..23 * 11)
            .map(|i| ((i * 53) % 97) as f32 * -0.07)
            .collect(),
    );
    let bt = b.transposed();
    kernels::set_kernel(Some(kernels::Kernel::Scalar));
    let (p_s, q_s) = (a.matmul(&b), a.matmul_transposed(&bt));
    kernels::set_kernel(Some(kernels::Kernel::Simd));
    let (p_v, q_v) = (a.matmul(&b), a.matmul_transposed(&bt));
    kernels::set_kernel(None);
    assert_eq!(p_s, p_v, "matmul bits diverged across kernels");
    assert_eq!(q_s, q_v, "matmul_transposed bits diverged across kernels");
}
