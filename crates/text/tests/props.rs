//! Property-based tests for tokenization and vocabulary.

use pge_text::{tokenize, Vocab};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenize_output_is_lowercase_alphanumeric(s in ".{0,60}") {
        for tok in tokenize(&s) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            // Lowercasing must be a fixed point. (Not `!is_uppercase()`:
            // characters like '𝓐' are uppercase-category with no
            // lowercase mapping, and survive tokenization unchanged.)
            prop_assert_eq!(tok.to_lowercase(), tok);
        }
    }

    #[test]
    fn tokenize_is_idempotent(s in "[a-zA-Z0-9 ,.-]{0,60}") {
        let once = tokenize(&s);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn vocab_add_then_get_round_trips(words in prop::collection::vec("[a-z]{1,10}", 1..20)) {
        let mut v = Vocab::new();
        let ids: Vec<u32> = words.iter().map(|w| v.add(w)).collect();
        for (w, &id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.get(w), Some(id));
            prop_assert_eq!(v.word(id), w.as_str());
        }
    }

    #[test]
    fn encode_never_panics_and_uses_unk(words in prop::collection::vec("[a-z]{1,10}", 0..20)) {
        let v = Vocab::new(); // knows only reserved tokens
        let ids = v.encode(&words);
        prop_assert_eq!(ids.len(), words.len());
        prop_assert!(ids.iter().all(|&id| id == Vocab::UNK));
    }

    #[test]
    fn counts_accumulate(word in "[a-z]{1,8}", n in 1usize..20) {
        let mut v = Vocab::new();
        let mut id = 0;
        for _ in 0..n {
            id = v.add(&word);
        }
        prop_assert_eq!(v.count(id), n as u64);
    }

    #[test]
    fn vocab_len_is_unique_words_plus_reserved(
        words in prop::collection::vec("[a-z]{1,6}", 0..30),
    ) {
        let mut v = Vocab::new();
        for w in &words {
            v.add(w);
        }
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        prop_assert_eq!(v.len(), distinct.len() + 3);
    }
}
