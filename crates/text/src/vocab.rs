//! Word vocabulary with reserved special tokens.

use pge_tensor::FxHashMap;

/// Interned word vocabulary.
///
/// Ids 0..=2 are reserved: 0 = `<pad>` (also what convolution padding
/// gathers), 1 = `<cls>` (Transformer pooling token), 2 = `<unk>`
/// (words never seen during vocabulary construction — the inductive
/// setting guarantees these appear).
#[derive(Clone, Debug)]
pub struct Vocab {
    word_to_id: FxHashMap<String, u32>,
    id_to_word: Vec<String>,
    /// Token counts observed through [`Vocab::add`] (index-aligned
    /// with ids); used to build word2vec negative-sampling tables.
    counts: Vec<u64>,
}

impl Vocab {
    pub const PAD: u32 = 0;
    pub const CLS: u32 = 1;
    pub const UNK: u32 = 2;

    /// New vocabulary containing only the reserved tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            word_to_id: FxHashMap::default(),
            id_to_word: Vec::new(),
            counts: Vec::new(),
        };
        for w in ["<pad>", "<cls>", "<unk>"] {
            let id = v.id_to_word.len() as u32;
            v.word_to_id.insert(w.to_string(), id);
            v.id_to_word.push(w.to_string());
            v.counts.push(0);
        }
        v
    }

    /// Number of distinct tokens including the reserved ones.
    pub fn len(&self) -> usize {
        self.id_to_word.len()
    }

    pub fn is_empty(&self) -> bool {
        false // reserved tokens always present
    }

    /// Intern `word`, bumping its count; returns its id.
    pub fn add(&mut self, word: &str) -> u32 {
        if let Some(&id) = self.word_to_id.get(word) {
            self.counts[id as usize] += 1;
            return id;
        }
        let id = self.id_to_word.len() as u32;
        self.word_to_id.insert(word.to_string(), id);
        self.id_to_word.push(word.to_string());
        self.counts.push(1);
        id
    }

    /// Id of `word` if known.
    pub fn get(&self, word: &str) -> Option<u32> {
        self.word_to_id.get(word).copied()
    }

    /// Id of `word`, or `UNK`.
    pub fn get_or_unk(&self, word: &str) -> u32 {
        self.get(word).unwrap_or(Self::UNK)
    }

    /// The word behind an id.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn word(&self, id: u32) -> &str {
        &self.id_to_word[id as usize]
    }

    /// Observed count for an id.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// Intern every token of `tokens` (corpus building).
    pub fn add_all(&mut self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().map(|t| self.add(t)).collect()
    }

    /// Encode tokens with `UNK` fallback (inference / test data).
    pub fn encode(&self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().map(|t| self.get_or_unk(t)).collect()
    }

    /// Tokenize then encode a raw string.
    pub fn encode_text(&self, text: &str) -> Vec<u32> {
        self.encode(&crate::tokenize(text))
    }

    /// Words in id order, including the reserved tokens.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.id_to_word.iter().map(String::as_str)
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_tokens_present() {
        let v = Vocab::new();
        assert_eq!(v.len(), 3);
        assert_eq!(v.word(Vocab::PAD), "<pad>");
        assert_eq!(v.word(Vocab::CLS), "<cls>");
        assert_eq!(v.word(Vocab::UNK), "<unk>");
    }

    #[test]
    fn add_is_idempotent_on_id_and_counts() {
        let mut v = Vocab::new();
        let a = v.add("pepper");
        let b = v.add("pepper");
        assert_eq!(a, b);
        assert_eq!(v.count(a), 2);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let mut v = Vocab::new();
        v.add("spicy");
        assert_eq!(v.get("never-seen"), None);
        assert_eq!(v.get_or_unk("never-seen"), Vocab::UNK);
        assert_eq!(
            v.encode(&["spicy".into(), "mystery".into()]),
            vec![3, Vocab::UNK]
        );
    }

    #[test]
    fn encode_text_round_trip() {
        let mut v = Vocab::new();
        for t in crate::tokenize("Spicy Queso Chips") {
            v.add(&t);
        }
        let ids = v.encode_text("spicy chips");
        assert_eq!(ids.len(), 2);
        assert_eq!(v.word(ids[0]), "spicy");
        assert_eq!(v.word(ids[1]), "chips");
    }
}
