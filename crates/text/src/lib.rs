//! Text processing for the PGE reproduction: tokenization, vocabulary
//! interning, and word2vec (skip-gram with negative sampling)
//! pre-training.
//!
//! The paper initializes its CNN text encoder with 300-d GoogleNews
//! word2vec vectors. Those are unavailable offline, so [`word2vec`]
//! trains skip-gram vectors on the *generated* corpus (titles +
//! attribute values), which provides the property the paper actually
//! relies on — semantically related words start close together.

pub mod token;
pub mod vocab;
pub mod word2vec;

pub use token::{tokenize, tokenize_each};
pub use vocab::Vocab;
pub use word2vec::{train_word2vec, Word2VecConfig};
