//! Tokenization: lowercase, alphanumeric word splitting, stop-word
//! removal (the paper's preprocessing removes stop words from raw
//! texts).

/// English stop words removed during preprocessing. Small on purpose:
/// product text is short, and aggressive lists would delete signal
/// like "free" ("gluten free").
const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "into", "is", "it", "of",
    "on", "or", "that", "the", "to", "with",
];

fn is_stop_word(w: &str) -> bool {
    STOP_WORDS.contains(&w)
}

/// Lowercase a string and split it into alphanumeric word tokens,
/// dropping punctuation and stop words.
///
/// `"Brand A Tortilla Chips Spicy Queso, 6 - 2 oz bags"` →
/// `["brand", "tortilla", "chips", "spicy", "queso", "6", "2", "oz",
/// "bags"]` ("a" is a stop word).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            if !is_stop_word(&cur) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !cur.is_empty() && !is_stop_word(&cur) {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits_punctuation() {
        assert_eq!(
            tokenize("Spicy Queso, 6 - 2 oz bags"),
            vec!["spicy", "queso", "6", "2", "oz", "bags"]
        );
    }

    #[test]
    fn removes_stop_words() {
        assert_eq!(tokenize("the flavor of the chips"), vec!["flavor", "chips"]);
    }

    #[test]
    fn keeps_meaningful_short_words() {
        assert_eq!(tokenize("gluten free"), vec!["gluten", "free"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ,,, !!!").is_empty());
        assert!(tokenize("the and of").is_empty());
    }

    #[test]
    fn idempotent_on_own_output() {
        let once = tokenize("Pure Mint Shampoo (10 oz)");
        let joined = once.join(" ");
        assert_eq!(tokenize(&joined), once);
    }

    #[test]
    fn unicode_is_handled() {
        assert_eq!(tokenize("Café Olé"), vec!["café", "olé"]);
    }
}
