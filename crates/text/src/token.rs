//! Tokenization: lowercase, alphanumeric word splitting, stop-word
//! removal (the paper's preprocessing removes stop words from raw
//! texts).

/// English stop-word membership. The list is small on purpose:
/// product text is short, and aggressive lists would delete signal
/// like "free" ("gluten free").
fn is_stop_word(w: &str) -> bool {
    // A `match` compiles to length-then-prefix dispatch; the naive
    // `STOP_WORDS.contains` was 21 string compares for the common
    // case (a non-stop word) and showed up in the tokenizer profile.
    // `debug_assert` in the tests keeps the two in sync.
    matches!(
        w,
        "a" | "an"
            | "and"
            | "are"
            | "as"
            | "at"
            | "be"
            | "by"
            | "for"
            | "from"
            | "in"
            | "into"
            | "is"
            | "it"
            | "of"
            | "on"
            | "or"
            | "that"
            | "the"
            | "to"
            | "with"
    )
}

/// Lowercase a string and split it into alphanumeric word tokens,
/// dropping punctuation and stop words.
///
/// `"Brand A Tortilla Chips Spicy Queso, 6 - 2 oz bags"` →
/// `["brand", "tortilla", "chips", "spicy", "queso", "6", "2", "oz",
/// "bags"]` ("a" is a stop word).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    tokenize_each(text, |tok| out.push(tok.to_string()));
    out
}

/// Streaming [`tokenize`]: `f` is called once per token (same tokens,
/// same order) with a borrowed `&str` that lives in one reused buffer.
/// The encoder's cache-miss path tokenizes and encodes in one pass
/// without materializing a `Vec<String>` — a dozen allocations per
/// scored row on catalog-scale scans.
pub fn tokenize_each(text: &str, mut f: impl FnMut(&str)) {
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_ascii() {
            // ASCII fast path — product text is overwhelmingly ASCII,
            // and the general `char::to_lowercase` (a multi-char
            // iterator walking Unicode tables) dominated tokenization
            // time. Identical output: for ASCII, `to_lowercase` and
            // `to_ascii_lowercase` agree, and ASCII alphanumerics are
            // exactly `is_ascii_alphanumeric`.
            if ch.is_ascii_alphanumeric() {
                cur.push(ch.to_ascii_lowercase());
                continue;
            }
        } else if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
            continue;
        }
        if !cur.is_empty() {
            if !is_stop_word(&cur) {
                f(&cur);
            }
            cur.clear();
        }
    }
    if !cur.is_empty() && !is_stop_word(&cur) {
        f(&cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The list the match arm in [`is_stop_word`] must stay in sync
    /// with.
    const STOP_WORDS: &[&str] = &[
        "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "into", "is", "it",
        "of", "on", "or", "that", "the", "to", "with",
    ];

    #[test]
    fn stop_word_match_covers_exactly_the_list() {
        for w in STOP_WORDS {
            assert!(is_stop_word(w), "{w} missing from the match arm");
        }
        for w in ["free", "chips", "", "thee", "ana", "i"] {
            assert!(!is_stop_word(w), "{w} wrongly matched as a stop word");
        }
    }

    #[test]
    fn lowercases_and_splits_punctuation() {
        assert_eq!(
            tokenize("Spicy Queso, 6 - 2 oz bags"),
            vec!["spicy", "queso", "6", "2", "oz", "bags"]
        );
    }

    #[test]
    fn removes_stop_words() {
        assert_eq!(tokenize("the flavor of the chips"), vec!["flavor", "chips"]);
    }

    #[test]
    fn keeps_meaningful_short_words() {
        assert_eq!(tokenize("gluten free"), vec!["gluten", "free"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ,,, !!!").is_empty());
        assert!(tokenize("the and of").is_empty());
    }

    #[test]
    fn idempotent_on_own_output() {
        let once = tokenize("Pure Mint Shampoo (10 oz)");
        let joined = once.join(" ");
        assert_eq!(tokenize(&joined), once);
    }

    #[test]
    fn unicode_is_handled() {
        assert_eq!(tokenize("Café Olé"), vec!["café", "olé"]);
    }
}
