//! Skip-gram with negative sampling (Mikolov et al., 2013).
//!
//! Produces the word2vec initialization for the CNN text encoder. Only
//! the properties the PGE paper relies on matter here: words that
//! co-occur ("chipotle", "pepper", "spicy") end up with high cosine
//! similarity, and the vectors are a reasonable starting point for
//! fine-tuning.

use crate::vocab::Vocab;
use pge_tensor::{init, ops, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Skip-gram training knobs.
#[derive(Clone, Debug)]
pub struct Word2VecConfig {
    /// Vector dimension.
    pub dim: usize,
    /// Symmetric context window size.
    pub window: usize,
    /// Negative samples per (center, context) pair.
    pub negatives: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial SGD learning rate (linearly decayed to 10%).
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dim: 32,
            window: 3,
            negatives: 5,
            epochs: 3,
            lr: 0.05,
            seed: 17,
        }
    }
}

/// Unigram^0.75 sampling table over non-reserved vocabulary ids.
struct NegativeTable {
    /// Cumulative weights paired with ids, for binary-search sampling.
    cumulative: Vec<f32>,
    ids: Vec<u32>,
}

impl NegativeTable {
    fn new(vocab: &Vocab) -> Self {
        let mut ids = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0.0f32;
        for id in 3..vocab.len() as u32 {
            let w = (vocab.count(id) as f32).powf(0.75);
            if w > 0.0 {
                acc += w;
                ids.push(id);
                cumulative.push(acc);
            }
        }
        NegativeTable { cumulative, ids }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> Option<u32> {
        let total = *self.cumulative.last()?;
        let x = rng.gen_range(0.0..total);
        let i = self.cumulative.partition_point(|&c| c < x);
        Some(self.ids[i.min(self.ids.len() - 1)])
    }
}

/// Train skip-gram vectors over `sentences` (already encoded with
/// `vocab`). Returns a `vocab.len() × dim` matrix of input vectors;
/// reserved ids keep near-zero rows (the pad row in particular stays
/// small, so convolution padding is close to a no-op).
pub fn train_word2vec(vocab: &Vocab, sentences: &[Vec<u32>], cfg: &Word2VecConfig) -> Matrix {
    let n = vocab.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut input = init::embedding(&mut rng, n, cfg.dim);
    let mut output = Matrix::zeros(n, cfg.dim);
    let table = NegativeTable::new(vocab);
    if table.ids.is_empty() {
        return input;
    }

    let total_steps = (cfg.epochs * sentences.len()).max(1) as f32;
    let mut step = 0usize;
    let mut grad_in = vec![0.0f32; cfg.dim];
    for _ in 0..cfg.epochs {
        for sent in sentences {
            step += 1;
            let progress = step as f32 / total_steps;
            let lr = cfg.lr * (1.0 - 0.9 * progress);
            for (ci, &center) in sent.iter().enumerate() {
                if center < 3 {
                    continue;
                }
                let lo = ci.saturating_sub(cfg.window);
                let hi = (ci + cfg.window + 1).min(sent.len());
                for (oi, &ctx) in sent[lo..hi].iter().enumerate() {
                    if lo + oi == ci || ctx < 3 {
                        continue;
                    }
                    grad_in.iter_mut().for_each(|g| *g = 0.0);
                    // Positive pair.
                    sgns_pair(&mut input, &mut output, center, ctx, 1.0, lr, &mut grad_in);
                    // Negatives.
                    for _ in 0..cfg.negatives {
                        if let Some(neg) = table.sample(&mut rng) {
                            if neg != ctx {
                                sgns_pair(
                                    &mut input,
                                    &mut output,
                                    center,
                                    neg,
                                    0.0,
                                    lr,
                                    &mut grad_in,
                                );
                            }
                        }
                    }
                    ops::axpy(-lr, &grad_in, input.row_mut(center as usize));
                }
            }
        }
    }
    input
}

/// One (center, context/negative) update. Accumulates the gradient
/// w.r.t. the input vector into `grad_in`; updates the output vector
/// immediately (standard word2vec scheme).
#[inline]
fn sgns_pair(
    input: &mut Matrix,
    output: &mut Matrix,
    center: u32,
    other: u32,
    label: f32,
    lr: f32,
    grad_in: &mut [f32],
) {
    let vi = input.row(center as usize).to_vec();
    let vo = output.row_mut(other as usize);
    let score = ops::sigmoid(ops::dot(&vi, vo));
    let g = score - label; // d(-log σ(±x))/dx folded into one form
    ops::axpy(g, vo, grad_in);
    ops::axpy(-lr * g, &vi, vo);
}

/// Most similar words to `id` by cosine over the vector table
/// (excluding reserved ids and `id` itself).
pub fn most_similar(vectors: &Matrix, id: u32, top_k: usize) -> Vec<(u32, f32)> {
    let target = vectors.row(id as usize);
    let mut sims: Vec<(u32, f32)> = (3..vectors.rows() as u32)
        .filter(|&j| j != id)
        .map(|j| (j, ops::cosine(target, vectors.row(j as usize))))
        .collect();
    sims.sort_by(|a, b| b.1.total_cmp(&a.1));
    sims.truncate(top_k);
    sims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    /// Two disjoint topic clusters; skip-gram must separate them.
    fn cluster_corpus(vocab: &mut Vocab) -> Vec<Vec<u32>> {
        let spicy = "spicy pepper chipotle cayenne hot jalapeno heat";
        let sweet = "sweet sugar honey caramel candy syrup dessert";
        let mut sentences = Vec::new();
        for i in 0..120 {
            let base = if i % 2 == 0 { spicy } else { sweet };
            // Rotate word order so every pair co-occurs within windows.
            let words = tokenize(base);
            let rotated: Vec<String> = words
                .iter()
                .cycle()
                .skip(i % words.len())
                .take(words.len())
                .cloned()
                .collect();
            sentences.push(vocab.add_all(&rotated));
        }
        sentences
    }

    #[test]
    fn clusters_have_higher_intra_similarity() {
        let mut vocab = Vocab::new();
        let sentences = cluster_corpus(&mut vocab);
        let cfg = Word2VecConfig {
            epochs: 8,
            ..Default::default()
        };
        let vecs = train_word2vec(&vocab, &sentences, &cfg);
        let spicy = vocab.get("spicy").unwrap();
        let pepper = vocab.get("pepper").unwrap();
        let sugar = vocab.get("sugar").unwrap();
        let honey = vocab.get("honey").unwrap();
        let intra1 = ops::cosine(vecs.row(spicy as usize), vecs.row(pepper as usize));
        let intra2 = ops::cosine(vecs.row(sugar as usize), vecs.row(honey as usize));
        let inter = ops::cosine(vecs.row(spicy as usize), vecs.row(sugar as usize));
        assert!(
            intra1 > inter && intra2 > inter,
            "intra1={intra1} intra2={intra2} inter={inter}"
        );
    }

    #[test]
    fn most_similar_finds_cluster_mates() {
        let mut vocab = Vocab::new();
        let sentences = cluster_corpus(&mut vocab);
        let cfg = Word2VecConfig {
            epochs: 8,
            ..Default::default()
        };
        let vecs = train_word2vec(&vocab, &sentences, &cfg);
        let spicy = vocab.get("spicy").unwrap();
        let top: Vec<String> = most_similar(&vecs, spicy, 3)
            .into_iter()
            .map(|(id, _)| vocab.word(id).to_string())
            .collect();
        let spicy_cluster = ["pepper", "chipotle", "cayenne", "hot", "jalapeno", "heat"];
        let hits = top
            .iter()
            .filter(|w| spicy_cluster.contains(&w.as_str()))
            .count();
        assert!(hits >= 2, "nearest to 'spicy' were {top:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut vocab = Vocab::new();
        let sentences = cluster_corpus(&mut vocab);
        let cfg = Word2VecConfig::default();
        let a = train_word2vec(&vocab, &sentences, &cfg);
        let b = train_word2vec(&vocab, &sentences, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_corpus_returns_init_vectors() {
        let vocab = Vocab::new(); // only reserved tokens, no counts
        let vecs = train_word2vec(&vocab, &[], &Word2VecConfig::default());
        assert_eq!(vecs.rows(), 3);
        assert!(vecs.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn pad_row_stays_tiny() {
        let mut vocab = Vocab::new();
        let sentences = cluster_corpus(&mut vocab);
        let vecs = train_word2vec(&vocab, &sentences, &Word2VecConfig::default());
        // Reserved rows never receive updates; they keep the small init.
        assert!(ops::l2_norm(vecs.row(Vocab::PAD as usize)) < 0.1);
    }
}
