//! Synthetic Amazon-like product-catalog generator.
//!
//! Replaces the paper's proprietary 750k-product catalog with a seeded
//! generator that reproduces the statistical couplings PGE relies on:
//!
//! 1. **Text entails values** — titles usually contain the product's
//!    flavor/scent phrase ("Nova Farms Spicy Queso Tortilla Chips …");
//! 2. **Free-text values fragment ids** — ingredient strings have
//!    surface variants ("chipotle pepper" / "chipotle pepper powder"),
//!    so id-based KGE splits one concept across many entities while
//!    text-based encoders do not;
//! 3. **Graph structure correlates values** — products drawn from one
//!    concept cluster share ingredients and flavors, giving the
//!    "pepper ⇔ spicy" 2-hop signal of the paper's Fig. 1;
//! 4. **Errors exist** — labeled test triples are corrupted with three
//!    realistic modes, and unlabeled noise is injected into training.

// clippy's explicit_auto_deref fires on `*choice(...)`, but removing
// the deref changes `choice`'s type inference (T would unify with the
// unsized `str`) and breaks the build — the lint is wrong here.
#![allow(clippy::explicit_auto_deref)]

use crate::lexicon::{
    Cluster, BRAND_HEADS, BRAND_TAILS, CATEGORY_SUFFIXES, CLUSTERS, MARKETING, MISC_VALUES,
    NEUTRAL_INGREDIENTS, PRODUCT_TYPES, SIZES, VALUE_PREFIXES, VALUE_SUFFIXES,
};
use pge_graph::{Dataset, LabeledTriple, ProductGraph, Triple};
use pge_tensor::FxHashSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs of the catalog generator.
#[derive(Clone, Debug)]
pub struct CatalogConfig {
    /// Number of products.
    pub products: usize,
    /// Number of labeled (valid + test) flavor/scent triples.
    pub labeled: usize,
    /// Fraction of labeled triples that are corrupted (the paper's
    /// MTurk set is ≈51% incorrect).
    pub error_rate: f64,
    /// Unlabeled noise rate in the training triples (self-reported
    /// catalog errors).
    pub train_noise: f64,
    /// Probability that a title mentions its flavor/scent phrase.
    pub title_mentions_value: f64,
    /// Probability that a value string carries a surface-variant
    /// modifier ("organic …", "… powder"). Fragmenting values is the
    /// paper's C1: it starves id-based KGE while leaving text intact.
    pub value_variant_rate: f64,
    /// Allow corrupted values that never occur in training (spurious-
    /// suffix errors). Keep `false` for the transductive datasets.
    pub allow_unseen_values: bool,
    /// RNG seed; everything is deterministic given the config.
    pub seed: u64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            products: 1500,
            labeled: 500,
            error_rate: 0.5,
            train_noise: 0.03,
            title_mentions_value: 0.7,
            value_variant_rate: 0.65,
            allow_unseen_values: false,
            seed: 42,
        }
    }
}

impl CatalogConfig {
    /// Small config for unit/integration tests.
    pub fn tiny() -> Self {
        CatalogConfig {
            products: 200,
            labeled: 80,
            ..Default::default()
        }
    }
}

fn choice<'a, T, R: Rng>(rng: &mut R, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// One generated product before triple emission. `pub(crate)` so the
/// drift generator can mint churn products through the same sampler.
pub(crate) struct Product {
    pub(crate) title: String,
    pub(crate) category: String,
    pub(crate) brand: String,
    pub(crate) labeled_attr: &'static str,
    pub(crate) phrase: String,
    pub(crate) cluster: &'static Cluster,
    pub(crate) ingredients: Vec<String>,
    pub(crate) size: String,
    pub(crate) form: &'static str,
    pub(crate) material: Option<String>,
    pub(crate) flavored: bool,
}

fn form_for(domain: &str, rng: &mut StdRng) -> &'static str {
    let options: &[&str] = match domain {
        "grocery" => &["bag", "box"],
        "beverage" => &["bottle", "can"],
        "beauty" => &["liquid", "bar"],
        "household" => &["spray", "solid"],
        "pet" => &["chewy", "crunchy"],
        _ => &["gummy", "tablet"],
    };
    *choice(rng, options)
}

/// Apply a surface-variant modifier with probability `rate`.
fn maybe_variant(rng: &mut StdRng, base: &str, rate: f64) -> String {
    if !rng.gen_bool(rate) {
        return base.to_string();
    }
    if rng.gen_bool(0.5) {
        format!("{} {base}", choice(rng, VALUE_PREFIXES))
    } else {
        format!("{base} {}", choice(rng, VALUE_SUFFIXES))
    }
}

pub(crate) fn generate_product(rng: &mut StdRng, cfg: &CatalogConfig) -> Product {
    let pt = choice(rng, PRODUCT_TYPES);
    // Pick a cluster that has phrases for this product's labeled attr.
    let cluster = loop {
        let c = choice(rng, CLUSTERS);
        let pool = if pt.flavored { c.flavors } else { c.scents };
        if !pool.is_empty() {
            break c;
        }
    };
    let pool = if pt.flavored {
        cluster.flavors
    } else {
        cluster.scents
    };
    let base_phrase = choice(rng, pool).to_string();
    let phrase = maybe_variant(rng, &base_phrase, cfg.value_variant_rate);
    let brand = format!("{} {}", choice(rng, BRAND_HEADS), choice(rng, BRAND_TAILS));
    let category = format!(
        "{}-{}",
        pt.name.replace(' ', "-"),
        choice(rng, CATEGORY_SUFFIXES)
    );

    // 2–3 cluster ingredients + occasionally one cross-cluster filler.
    let mut ingredients = Vec::new();
    let k = rng.gen_range(2..=3usize.min(cluster.ingredients.len()));
    let mut picked = FxHashSet::default();
    while ingredients.len() < k {
        let ing = choice(rng, cluster.ingredients);
        if picked.insert(*ing) {
            ingredients.push(maybe_variant(rng, ing, cfg.value_variant_rate));
        }
    }
    if rng.gen_bool(0.2) {
        let other = choice(rng, CLUSTERS);
        let filler = *choice(rng, other.ingredients);
        ingredients.push(maybe_variant(rng, filler, cfg.value_variant_rate));
    }
    // 1–2 cluster-neutral boilerplate ingredients, like any real label.
    for _ in 0..rng.gen_range(1..=2) {
        let neutral = *choice(rng, NEUTRAL_INGREDIENTS);
        ingredients.push(maybe_variant(rng, neutral, cfg.value_variant_rate * 0.5));
    }

    let size = choice(rng, SIZES).to_string();
    let form = form_for(pt.domain, rng);
    let material = (pt.domain == "household").then(|| choice(rng, MISC_VALUES).to_string());

    // Title assembly. The title mentions the *base* phrase: real
    // titles rarely spell out the catalog's exact variant string, so
    // text overlap is partial while id overlap is zero.
    let mut parts: Vec<String> = vec![brand.clone()];
    if rng.gen_bool(cfg.title_mentions_value) {
        parts.push(base_phrase.clone());
    }
    parts.push(pt.name.to_string());
    let mut title = title_case(&parts.join(" "));
    if rng.gen_bool(0.4) {
        title.push_str(&format!(", {}", title_case(*choice(rng, MARKETING))));
    }
    title.push_str(&format!(", {}", size));

    Product {
        title,
        category,
        brand,
        labeled_attr: if pt.flavored { "flavor" } else { "scent" },
        phrase,
        cluster,
        ingredients,
        size,
        form,
        material,
        flavored: pt.flavored,
    }
}

/// The three error modes injected into labeled triples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ErrorMode {
    /// Phrase from a *different* concept cluster (hard, semantic —
    /// the "Cheddar on a Spicy Queso product" case).
    SemanticSwap,
    /// Value from an unrelated attribute domain (easy, structural —
    /// the "flavor: bamboo" case of Table 6).
    CrossAttribute,
    /// Correct phrase polluted with product-type words (subtle,
    /// language-level — the "mint shampoo and conditioner set" case).
    SpuriousSuffix,
}

/// Pool of labeled-attribute values observed in *training*, indexed
/// for transductive sampling.
struct TrainValuePool {
    /// (flavored?, cluster name) → value strings seen in train.
    by_cluster: pge_tensor::FxHashMap<(bool, &'static str), Vec<String>>,
    /// All distinct value strings seen in train (any attribute).
    all: FxHashSet<String>,
}

impl TrainValuePool {
    fn build(products: &[Product], labeled_set: &FxHashSet<usize>) -> Self {
        let mut by_cluster: pge_tensor::FxHashMap<(bool, &'static str), Vec<String>> =
            Default::default();
        let mut all = FxHashSet::default();
        for (i, p) in products.iter().enumerate() {
            if !labeled_set.contains(&i) {
                by_cluster
                    .entry((p.flavored, p.cluster.name))
                    .or_default()
                    .push(p.phrase.clone());
                all.insert(p.phrase.clone());
            }
            for ing in &p.ingredients {
                all.insert(ing.clone());
            }
            if let Some(m) = &p.material {
                all.insert(m.clone());
            }
        }
        TrainValuePool { by_cluster, all }
    }

    /// A training value of the product's own cluster — preferring the
    /// product's exact phrase, so the "correct" label stays truthful.
    fn correct_value(&self, rng: &mut StdRng, p: &Product) -> Option<String> {
        if self.all.contains(&p.phrase) {
            return Some(p.phrase.clone());
        }
        // Fall back to another observed variant of the same cluster
        // that shares the base wording (e.g. "spicy queso blend" for a
        // "spicy queso" product) — still a correct description.
        let pool = self.by_cluster.get(&(p.flavored, p.cluster.name))?;
        let base = p
            .phrase
            .split_whitespace()
            .next()
            .unwrap_or(p.phrase.as_str());
        let compatible: Vec<&String> = pool.iter().filter(|v| v.contains(base)).collect();
        if compatible.is_empty() {
            None
        } else {
            Some(compatible[rng.gen_range(0..compatible.len())].clone())
        }
    }

    /// A training value from a *different* cluster (semantic error).
    fn swap_value(&self, rng: &mut StdRng, p: &Product) -> Option<String> {
        let candidates: Vec<&Vec<String>> = self
            .by_cluster
            .iter()
            .filter(|((fl, cl), vs)| *fl == p.flavored && *cl != p.cluster.name && !vs.is_empty())
            .map(|(_, vs)| vs)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pool = candidates[rng.gen_range(0..candidates.len())];
        Some(pool[rng.gen_range(0..pool.len())].clone())
    }

    /// A misc value present in training (cross-attribute error).
    fn misc_value(&self, rng: &mut StdRng) -> Option<String> {
        let present: Vec<&&str> = MISC_VALUES
            .iter()
            .filter(|m| self.all.contains(**m))
            .collect();
        if present.is_empty() {
            None
        } else {
            Some(present[rng.gen_range(0..present.len())].to_string())
        }
    }
}

fn corrupt(
    rng: &mut StdRng,
    p: &Product,
    pool: &TrainValuePool,
    cfg: &CatalogConfig,
) -> Option<(String, ErrorMode)> {
    let roll: f64 = rng.gen();
    let mode = if cfg.allow_unseen_values && roll >= 0.8 {
        ErrorMode::SpuriousSuffix
    } else if roll < 0.6 {
        ErrorMode::SemanticSwap
    } else {
        ErrorMode::CrossAttribute
    };
    let value = match mode {
        ErrorMode::SemanticSwap => pool.swap_value(rng, p)?,
        ErrorMode::CrossAttribute => pool.misc_value(rng).or_else(|| pool.swap_value(rng, p))?,
        ErrorMode::SpuriousSuffix => {
            // e.g. "mint shampoo and conditioner set"
            let type_words = p
                .category
                .split('-')
                .next()
                .unwrap_or("item")
                .replace('-', " ");
            format!("{} {} set", p.phrase, type_words)
        }
    };
    if value == p.phrase {
        return None;
    }
    Some((value, mode))
}

/// Generate the full labeled dataset.
pub fn generate_catalog(cfg: &CatalogConfig) -> Dataset {
    assert!(
        cfg.labeled <= cfg.products,
        "cannot label more products than exist"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut graph = ProductGraph::new();
    // Products are identified by title, so titles must be unique;
    // disambiguate collisions with a lot number (real catalogs do the
    // same with pack variants).
    let mut seen_titles: FxHashSet<String> = FxHashSet::default();
    let products: Vec<Product> = (0..cfg.products)
        .map(|i| {
            let mut p = generate_product(&mut rng, cfg);
            if !seen_titles.insert(p.title.clone()) {
                p.title.push_str(&format!(", Lot {i}"));
                seen_titles.insert(p.title.clone());
            }
            p
        })
        .collect();

    // Labeled products: the first `labeled` indices of a shuffle.
    let mut order: Vec<usize> = (0..cfg.products).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let labeled_set: FxHashSet<usize> = order[..cfg.labeled].iter().copied().collect();

    // Emit training triples (everything except labeled flavor/scent
    // triples, which are held out for evaluation).
    let mut train: Vec<Triple> = Vec::new();
    for (i, p) in products.iter().enumerate() {
        graph.intern_product(&p.title);
        let mut push = |attr: &str, value: &str, out: &mut Vec<Triple>| {
            let t = Triple::new(
                graph.lookup_product(&p.title).expect("interned above"),
                graph.intern_attr(attr),
                graph.intern_value(value),
            );
            graph.add_triple(t);
            out.push(t);
        };
        push("category", &p.category, &mut train);
        push("brand", &p.brand, &mut train);
        push("size", &p.size, &mut train);
        push("form", p.form, &mut train);
        for ing in &p.ingredients {
            push("ingredient", ing, &mut train);
        }
        if let Some(m) = &p.material {
            push("material", m, &mut train);
        }
        if !labeled_set.contains(&i) {
            push(p.labeled_attr, &p.phrase, &mut train);
        }
    }

    // Build labeled triples on the held-out products, sampling values
    // from the training pool so the transductive guarantee holds by
    // construction.
    let pool = TrainValuePool::build(&products, &labeled_set);
    let mut labeled: Vec<LabeledTriple> = Vec::new();
    for &i in order[..cfg.labeled].iter() {
        let p = &products[i];
        let pid = graph.lookup_product(&p.title).expect("interned");
        let attr = graph.intern_attr(p.labeled_attr);
        let (value_text, correct) = if rng.gen_bool(cfg.error_rate) {
            match corrupt(&mut rng, p, &pool, cfg) {
                Some((v, _mode)) => (v, false),
                None => continue,
            }
        } else {
            match pool.correct_value(&mut rng, p) {
                Some(v) => (v, true),
                None => continue,
            }
        };
        let vid = graph.intern_value(&value_text);
        labeled.push(LabeledTriple {
            triple: Triple::new(pid, attr, vid),
            correct,
        });
    }

    // Inject unlabeled training noise.
    let (train, train_clean) = pge_graph::inject_noise(&graph, &train, cfg.train_noise, &mut rng);

    // Transductive guarantee: drop labeled triples whose value never
    // occurs in (post-noise) training. Rare — it needs the value's
    // only occurrence to be hit by noise injection.
    if !cfg.allow_unseen_values {
        let train_values: FxHashSet<_> = train.iter().map(|t| t.value).collect();
        labeled.retain(|lt| train_values.contains(&lt.triple.value));
    }

    // Valid/test split of the labeled pool (paper: 6,924 / 5,782).
    let half = labeled.len() / 2;
    let valid = labeled[..half].to_vec();
    let test = labeled[half..].to_vec();

    let mut d = Dataset::new(graph, train, valid, test);
    d.train_clean = train_clean;
    d
}

/// Counters reported by [`stream_catalog`].
#[derive(Clone, Copy, Debug)]
pub struct StreamStats {
    pub products: u64,
    pub triples: u64,
}

/// Stream a paper-scale catalog into a binary PGECAT01 blob without
/// ever materializing it.
///
/// Unlike [`generate_catalog`] — which builds an in-memory [`Dataset`]
/// with held-out labeled triples for training and evaluation — this
/// emits the *full* catalog (every product, every attribute, labeled
/// attribute included) one product at a time, which is what a bulk
/// scan or an embedding-bank build consumes. Memory stays O(1) in the
/// product count except for an 8-byte title hash per product, kept
/// only to disambiguate title collisions the same way the in-memory
/// generator does (a ", Lot {i}" suffix).
///
/// Determinism contract: the same [`CatalogConfig`] produces a
/// byte-identical blob (same seed → same RNG stream → same records in
/// the same order) — golden-CRC tests and resumable scans rely on it.
pub fn stream_catalog(
    cfg: &CatalogConfig,
    out: &mut pge_store::CatalogWriter,
) -> std::io::Result<StreamStats> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // u64 FNV hashes instead of owned titles: 750k products cost
    // ~6 MB of set instead of ~60 MB of strings. A hash collision
    // between distinct titles only triggers a harmless extra ", Lot"
    // disambiguation; it can never make two titles equal.
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let mut triples = 0u64;
    for i in 0..cfg.products {
        let mut p = generate_product(&mut rng, cfg);
        if !seen.insert(pge_store::bank::fnv64(p.title.as_bytes())) {
            p.title.push_str(&format!(", Lot {i}"));
            seen.insert(pge_store::bank::fnv64(p.title.as_bytes()));
        }
        out.note_product();
        let mut put = |attr: &str, value: &str, n: &mut u64| -> std::io::Result<()> {
            out.add_triple(&p.title, attr, value)?;
            *n += 1;
            Ok(())
        };
        put("category", &p.category, &mut triples)?;
        put("brand", &p.brand, &mut triples)?;
        put("size", &p.size, &mut triples)?;
        put("form", p.form, &mut triples)?;
        for ing in &p.ingredients {
            put("ingredient", ing, &mut triples)?;
        }
        if let Some(m) = &p.material {
            put("material", m, &mut triples)?;
        }
        put(p.labeled_attr, &p.phrase, &mut triples)?;
    }
    Ok(StreamStats {
        products: cfg.products as u64,
        triples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::cluster_of_phrase;

    #[test]
    fn deterministic_given_seed() {
        let a = generate_catalog(&CatalogConfig::tiny());
        let b = generate_catalog(&CatalogConfig::tiny());
        assert_eq!(a.graph.triples(), b.graph.triples());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_catalog(&CatalogConfig::tiny());
        let b = generate_catalog(&CatalogConfig {
            seed: 43,
            ..CatalogConfig::tiny()
        });
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn shape_matches_config() {
        let cfg = CatalogConfig::tiny();
        let d = generate_catalog(&cfg);
        assert_eq!(d.graph.num_products(), cfg.products);
        // Each product yields ≥ 5 triples.
        assert!(d.train.len() >= cfg.products * 4);
        let labeled = d.valid.len() + d.test.len();
        assert!(labeled > cfg.labeled / 2, "labeled={labeled}");
        assert!(labeled <= cfg.labeled);
        // Attribute inventory includes the labeled and structural ones.
        for a in [
            "flavor",
            "scent",
            "ingredient",
            "brand",
            "category",
            "size",
            "form",
        ] {
            assert!(d.graph.lookup_attr(a).is_some(), "missing attr {a}");
        }
    }

    #[test]
    fn error_rate_roughly_respected() {
        let d = generate_catalog(&CatalogConfig::tiny());
        let all: Vec<_> = d.valid.iter().chain(&d.test).collect();
        let bad = all.iter().filter(|lt| !lt.correct).count();
        let frac = bad as f64 / all.len() as f64;
        assert!((0.3..0.7).contains(&frac), "error fraction {frac}");
    }

    #[test]
    fn transductive_values_all_seen_in_training() {
        let d = generate_catalog(&CatalogConfig::tiny());
        let train_values: std::collections::HashSet<_> = d.train.iter().map(|t| t.value).collect();
        for lt in d.valid.iter().chain(&d.test) {
            assert!(
                train_values.contains(&lt.triple.value),
                "unseen value {:?}",
                d.graph.value_text(lt.triple.value)
            );
        }
    }

    #[test]
    fn labeled_triples_absent_from_training() {
        let d = generate_catalog(&CatalogConfig::tiny());
        let train: std::collections::HashSet<_> = d.train.iter().collect();
        for lt in d.valid.iter().chain(&d.test) {
            assert!(
                !train.contains(&lt.triple),
                "labeled triple leaked into training"
            );
        }
    }

    #[test]
    fn titles_usually_mention_phrase() {
        let cfg = CatalogConfig {
            title_mentions_value: 1.0,
            value_variant_rate: 0.0,
            ..CatalogConfig::tiny()
        };
        let d = generate_catalog(&cfg);
        // Every correct labeled triple shares wording with the title
        // (the value may be a same-cluster variant like "white
        // cheddar" against a "cheddar" title, so check word overlap).
        for lt in d.test.iter().filter(|lt| lt.correct).take(20) {
            let title = d.graph.title(lt.triple.product).to_lowercase();
            let value = d.graph.value_text(lt.triple.value);
            assert!(
                value.split_whitespace().any(|w| title.contains(w)),
                "title {title:?} shares no word with value {value:?}"
            );
        }
    }

    #[test]
    fn unseen_values_appear_only_when_allowed() {
        let cfg = CatalogConfig {
            allow_unseen_values: true,
            error_rate: 1.0,
            ..CatalogConfig::tiny()
        };
        let d = generate_catalog(&cfg);
        let suffixy = d
            .test
            .iter()
            .chain(&d.valid)
            .filter(|lt| d.graph.value_text(lt.triple.value).ends_with(" set"))
            .count();
        assert!(suffixy > 0, "no spurious-suffix errors generated");
    }

    #[test]
    fn train_noise_recorded() {
        let cfg = CatalogConfig {
            train_noise: 0.2,
            ..CatalogConfig::tiny()
        };
        let d = generate_catalog(&cfg);
        let dirty = d.train_clean.iter().filter(|c| !**c).count();
        let frac = dirty as f64 / d.train.len() as f64;
        assert!((0.1..0.3).contains(&frac), "noise fraction {frac}");
    }

    #[test]
    fn cluster_structure_present() {
        // Spicy-cluster products should co-occur with pepper-family
        // ingredients: the Fig. 1 correlation.
        let d = generate_catalog(&CatalogConfig::tiny());
        let g = &d.graph;
        let flavor = g.lookup_attr("flavor").unwrap();
        let ingredient = g.lookup_attr("ingredient").unwrap();
        let by_product = g.triples_by_product();
        // Variant strings ("organic cane sugar") aren't verbatim
        // cluster phrases; strip one modifier word before lookup.
        let cluster_of = |vt: &str| {
            cluster_of_phrase(vt).or_else(|| {
                let words: Vec<&str> = vt.split_whitespace().collect();
                if words.len() < 2 {
                    return None;
                }
                cluster_of_phrase(&words[1..].join(" "))
                    .or_else(|| cluster_of_phrase(&words[..words.len() - 1].join(" ")))
            })
        };
        let mut spicy_with_pepper = 0;
        let mut spicy_total = 0;
        for tris in &by_product {
            let mut is_spicy = false;
            let mut has_pepper_family = false;
            for &ti in tris {
                let t = g.triples()[ti];
                let vt = g.value_text(t.value);
                if t.attr == flavor {
                    if let Some(c) = cluster_of(vt) {
                        is_spicy |= c.name == "spicy";
                    }
                }
                if t.attr == ingredient {
                    if let Some(c) = cluster_of(vt) {
                        has_pepper_family |= c.name == "spicy";
                    }
                }
            }
            if is_spicy {
                spicy_total += 1;
                if has_pepper_family {
                    spicy_with_pepper += 1;
                }
            }
        }
        assert!(spicy_total > 0);
        assert!(
            spicy_with_pepper as f64 / spicy_total as f64 > 0.7,
            "{spicy_with_pepper}/{spicy_total}"
        );
    }

    #[test]
    fn value_space_is_sparse_enough_for_c1() {
        // Challenge C1 of the paper: free-text values form a long tail
        // that starves id-based embeddings. At default settings a
        // sizable share of values must be observed ≤ 2 times.
        let d = generate_catalog(&CatalogConfig {
            products: 600,
            labeled: 150,
            ..CatalogConfig::default()
        });
        let stats = pge_graph::graph_stats(&d.graph);
        assert!(
            stats.singleton_value_fraction > 0.15,
            "singleton fraction {:.3} too low — id-KGE would dominate",
            stats.singleton_value_fraction
        );
        // ...but not pure noise: the mean value degree stays above 2
        // so graph structure remains learnable.
        assert!(stats.value_degree.1 > 2.0, "{:?}", stats.value_degree);
    }

    fn stream_to_file(cfg: &CatalogConfig, name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pge-datagen-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut w = pge_store::CatalogWriter::create(&path, cfg.seed).unwrap();
        stream_catalog(cfg, &mut w).unwrap();
        w.finish().unwrap();
        path
    }

    #[test]
    fn streamed_catalog_is_byte_identical_given_seed() {
        let cfg = CatalogConfig::tiny();
        let a = stream_to_file(&cfg, "stream-a.bin");
        let b = stream_to_file(&cfg, "stream-b.bin");
        let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert_eq!(ba, bb, "same seed+config must be byte-identical");
        // Golden CRC: pins the on-disk encoding. If this changes, the
        // generator or the PGECAT01 format changed — both break
        // resumability of in-flight scans, so the break must be loud.
        assert_eq!(
            pge_tensor::crc32(&ba),
            0x6544_de00,
            "catalog encoding drifted"
        );
        let c = stream_to_file(
            &CatalogConfig {
                seed: 43,
                ..CatalogConfig::tiny()
            },
            "stream-c.bin",
        );
        assert_ne!(
            ba,
            std::fs::read(&c).unwrap(),
            "different seeds must differ"
        );
    }

    #[test]
    fn streamed_catalog_reads_back_and_rejects_tampering() {
        let cfg = CatalogConfig::tiny();
        let path = stream_to_file(&cfg, "stream-read.bin");
        let r = pge_store::CatalogReader::open(&path).unwrap();
        assert_eq!(r.products() as usize, cfg.products);
        assert_eq!(r.seed(), cfg.seed);
        let mut n = 0u64;
        let mut per_product_attrs = 0;
        let mut last_title = String::new();
        for rec in r.records().unwrap() {
            let rec = rec.unwrap();
            assert!(!rec.title.is_empty() && !rec.value.is_empty());
            if rec.title != last_title {
                last_title = rec.title.clone();
                per_product_attrs = 0;
            }
            per_product_attrs += 1;
            assert!(per_product_attrs <= 12, "implausible attr count");
            n += 1;
        }
        assert_eq!(n, r.triples());
        // Every product emits category/brand/size/form + ≥2
        // ingredients + the labeled attr.
        assert!(n as usize >= cfg.products * 7, "triples={n}");

        // A flipped bit anywhere in the body is a typed rejection.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            pge_store::CatalogReader::open(&path),
            Err(pge_store::StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn serializes_cleanly() {
        let d = generate_catalog(&CatalogConfig::tiny());
        let text = pge_graph::tsv::to_tsv(&d).expect("no tabs in generated text");
        let back = pge_graph::tsv::from_tsv(&text).unwrap();
        assert_eq!(back.train, d.train);
    }
}
