//! Concept clusters and phrase inventories for the catalog generator.
//!
//! A *concept cluster* ties together the flavor phrases, scent
//! phrases, and ingredient phrases of one semantic family — this is
//! exactly the correlation structure the paper's Fig. 1 illustrates
//! (ingredient "Chipotle Pepper Powder" ⇔ flavor "Spicy"). The PGE
//! model can exploit it through both text (shared words) and graph
//! structure (shared values across products).

/// One semantic family of product vocabulary.
#[derive(Clone, Copy, Debug)]
pub struct Cluster {
    pub name: &'static str,
    /// Flavor phrases (grocery/pet/drug products).
    pub flavors: &'static [&'static str],
    /// Scent phrases (beauty/household products).
    pub scents: &'static [&'static str],
    /// Ingredient phrases; several are surface variants of the same
    /// concept on purpose (id-based KGE fragments them, text doesn't).
    pub ingredients: &'static [&'static str],
}

/// The full cluster inventory.
pub const CLUSTERS: &[Cluster] = &[
    Cluster {
        name: "spicy",
        flavors: &[
            "spicy",
            "spicy queso",
            "hot chili",
            "fiery habanero",
            "chili lime",
            "carolina reaper spicy",
        ],
        scents: &[],
        ingredients: &[
            "chipotle pepper",
            "chipotle pepper powder",
            "cayenne pepper",
            "jalapeno powder",
            "carolina reaper",
            "red chili flakes",
            "paprika extract",
            "ground chili pepper",
        ],
    },
    Cluster {
        name: "sweet",
        flavors: &[
            "sweet",
            "honey roasted",
            "caramel",
            "maple brown sugar",
            "sweet bbq",
        ],
        scents: &["warm sugar", "honey almond"],
        ingredients: &[
            "cane sugar",
            "honey",
            "caramel syrup",
            "molasses",
            "maple syrup",
            "brown sugar",
        ],
    },
    Cluster {
        name: "cheese",
        flavors: &[
            "cheddar",
            "nacho cheese",
            "parmesan garlic",
            "white cheddar",
        ],
        scents: &[],
        ingredients: &[
            "cheddar cheese",
            "parmesan cheese",
            "milk solids",
            "whey powder",
            "cheese cultures",
        ],
    },
    Cluster {
        name: "chocolate",
        flavors: &["chocolate", "dark chocolate", "chocolate fudge", "cocoa"],
        scents: &["cocoa butter"],
        ingredients: &[
            "cocoa powder",
            "cocoa butter",
            "chocolate liquor",
            "dark chocolate chips",
        ],
    },
    Cluster {
        name: "citrus",
        flavors: &["lemon", "orange zest", "key lime", "citrus blast"],
        scents: &[
            "citrus",
            "lemon verbena",
            "orange blossom",
            "grapefruit zest",
        ],
        ingredients: &[
            "lemon juice",
            "citric acid",
            "orange oil",
            "lime concentrate",
        ],
    },
    Cluster {
        name: "mint",
        flavors: &["mint", "peppermint", "spearmint"],
        scents: &["fresh mint", "peppermint", "eucalyptus mint"],
        ingredients: &[
            "peppermint oil",
            "menthol",
            "spearmint leaves",
            "mint extract",
        ],
    },
    Cluster {
        name: "berry",
        flavors: &["strawberry", "mixed berry", "blueberry", "raspberry"],
        scents: &["berry bliss", "strawberry fields"],
        ingredients: &[
            "strawberry puree",
            "dried blueberries",
            "raspberry concentrate",
            "elderberry extract",
        ],
    },
    Cluster {
        name: "vanilla",
        flavors: &["vanilla", "french vanilla", "vanilla bean"],
        scents: &["vanilla bean", "warm vanilla", "vanilla coconut"],
        ingredients: &["vanilla extract", "vanilla bean seeds", "vanillin"],
    },
    Cluster {
        name: "floral",
        flavors: &[],
        scents: &[
            "lavender",
            "rose petal",
            "jasmine",
            "lavender chamomile",
            "wild rose",
        ],
        ingredients: &[
            "lavender oil",
            "rose water",
            "jasmine extract",
            "chamomile extract",
        ],
    },
    Cluster {
        name: "coconut",
        flavors: &["coconut", "toasted coconut"],
        scents: &["coconut milk", "tropical coconut"],
        ingredients: &["coconut oil", "shredded coconut", "coconut cream"],
    },
    Cluster {
        name: "herbal",
        flavors: &["green tea", "ginger"],
        scents: &[
            "tea tree oil",
            "eucalyptus",
            "herbal blend",
            "tea tree oil and blue cypress",
            "rosemary mint",
        ],
        ingredients: &[
            "tea tree oil",
            "eucalyptus oil",
            "aloe vera",
            "ginger root",
            "green tea extract",
            "blue cypress oil",
        ],
    },
    Cluster {
        name: "savory",
        flavors: &[
            "bbq",
            "smoky bacon",
            "sea salt",
            "sour cream and onion",
            "ranch",
        ],
        scents: &[],
        ingredients: &[
            "smoked paprika",
            "onion powder",
            "garlic powder",
            "sea salt",
            "tomato powder",
            "dehydrated spices",
        ],
    },
];

/// A product family: what kind of thing it is, which domain it belongs
/// to, and which labeled attribute applies (flavor vs. scent).
#[derive(Clone, Copy, Debug)]
pub struct ProductType {
    pub name: &'static str,
    pub domain: &'static str,
    /// `true` ⇒ this product carries `flavor` (+`ingredient`);
    /// `false` ⇒ it carries `scent` (+`ingredient`).
    pub flavored: bool,
}

/// Product-type inventory across domains (food, beauty, drug,
/// household, pet, office — the paper samples 325 categories across
/// such domains; category strings below are multiplied by style
/// suffixes in the generator).
pub const PRODUCT_TYPES: &[ProductType] = &[
    ProductType {
        name: "tortilla chips",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "bean chips",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "potato crisps",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "popcorn",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "granola bars",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "cookies",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "trail mix",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "crackers",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "peanut brittle",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "salsa",
        domain: "grocery",
        flavored: true,
    },
    ProductType {
        name: "sparkling water",
        domain: "beverage",
        flavored: true,
    },
    ProductType {
        name: "iced tea",
        domain: "beverage",
        flavored: true,
    },
    ProductType {
        name: "coffee",
        domain: "beverage",
        flavored: true,
    },
    ProductType {
        name: "energy drink",
        domain: "beverage",
        flavored: true,
    },
    ProductType {
        name: "fruit juice",
        domain: "beverage",
        flavored: true,
    },
    ProductType {
        name: "shampoo",
        domain: "beauty",
        flavored: false,
    },
    ProductType {
        name: "hair conditioner",
        domain: "beauty",
        flavored: false,
    },
    ProductType {
        name: "body wash",
        domain: "beauty",
        flavored: false,
    },
    ProductType {
        name: "hand soap",
        domain: "beauty",
        flavored: false,
    },
    ProductType {
        name: "body lotion",
        domain: "beauty",
        flavored: false,
    },
    ProductType {
        name: "lip balm",
        domain: "beauty",
        flavored: true,
    },
    ProductType {
        name: "scented candle",
        domain: "household",
        flavored: false,
    },
    ProductType {
        name: "air freshener",
        domain: "household",
        flavored: false,
    },
    ProductType {
        name: "dish soap",
        domain: "household",
        flavored: false,
    },
    ProductType {
        name: "laundry detergent",
        domain: "household",
        flavored: false,
    },
    ProductType {
        name: "surface cleaner",
        domain: "household",
        flavored: false,
    },
    ProductType {
        name: "dog treats",
        domain: "pet",
        flavored: true,
    },
    ProductType {
        name: "cat food",
        domain: "pet",
        flavored: true,
    },
    ProductType {
        name: "vitamin gummies",
        domain: "drug",
        flavored: true,
    },
    ProductType {
        name: "cough drops",
        domain: "drug",
        flavored: true,
    },
];

/// Category style suffixes; `category = "{type}-{suffix}"` multiplies
/// the category count toward the paper's breadth.
pub const CATEGORY_SUFFIXES: &[&str] = &["classic", "organic", "family", "travel", "premium"];

/// Brand-name syllables (first parts).
pub const BRAND_HEADS: &[&str] = &[
    "nova", "sun", "pure", "glow", "crisp", "peak", "blue", "ever", "true", "wild", "happy",
    "golden", "prime", "fresh", "urban", "terra", "luna", "vital", "zen", "amber",
];

/// Brand-name tails.
pub const BRAND_TAILS: &[&str] = &[
    "foods",
    "farms",
    "labs",
    "works",
    "organics",
    "essentials",
    "naturals",
    "goods",
    "pantry",
    "botanics",
];

/// Marketing fillers that may appear in titles (noise words; some are
/// the paper's own examples like "Gluten Free, Vegan Snack").
pub const MARKETING: &[&str] = &[
    "gluten free",
    "vegan snack",
    "high protein and fiber",
    "non gmo",
    "family size",
    "resealable bag",
    "no artificial colors",
    "keto friendly",
    "for women and men",
    "value pack",
];

/// Size phrases for titles.
pub const SIZES: &[&str] = &[
    "6 - 2 oz bags",
    "5.5 ounce pack of 6",
    "10 oz",
    "12 ounce pack of 3",
    "16 oz family size",
    "2 oz single serve",
    "24 count",
    "1 lb bag",
    "8.5 fl oz",
    "pack of 4",
];

/// Surface-variant prefixes for labeled-attribute and ingredient
/// values ("organic cane sugar"). Free-text values fragmenting across
/// variants is challenge C1 of the paper: id-based KGE treats
/// "chipotle pepper" and "ground chipotle pepper" as unrelated
/// entities.
pub const VALUE_PREFIXES: &[&str] = &[
    "organic",
    "ground",
    "natural",
    "premium",
    "dehydrated",
    "roasted",
    "raw",
    "fine",
];

/// Surface-variant suffixes ("chipotle pepper powder").
pub const VALUE_SUFFIXES: &[&str] = &["powder", "blend", "extract", "mix", "pieces", "crystals"];

/// Cluster-neutral filler ingredients appearing across all product
/// families. They dilute the flavor↔ingredient correlation the way a
/// real catalog's boilerplate ingredients do, keeping graph structure
/// informative but not trivially separable.
pub const NEUTRAL_INGREDIENTS: &[&str] = &[
    "water",
    "salt",
    "citric acid",
    "natural flavors",
    "sunflower oil",
    "rice flour",
    "corn starch",
    "soy lecithin",
    "glycerin",
    "xanthan gum",
];

/// Materials / non-food values used for cross-attribute error
/// injection (the "flavor: bamboo" / "flavor: octopus" cases of
/// Table 6).
pub const MISC_VALUES: &[&str] = &[
    "bamboo",
    "octopus",
    "stainless steel",
    "aqua",
    "mesh",
    "ceramic",
    "plastic handle",
    "cotton blend",
    "rose gold",
    "matte black",
];

/// Find the cluster a (flavor|scent) phrase belongs to, if any.
pub fn cluster_of_phrase(phrase: &str) -> Option<&'static Cluster> {
    CLUSTERS.iter().find(|c| {
        c.flavors.contains(&phrase) || c.scents.contains(&phrase) || c.ingredients.contains(&phrase)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_nonempty_and_named_uniquely() {
        assert!(CLUSTERS.len() >= 10);
        let mut names: Vec<_> = CLUSTERS.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CLUSTERS.len());
        for c in CLUSTERS {
            assert!(
                !c.flavors.is_empty() || !c.scents.is_empty(),
                "cluster {} has no labeled-attribute phrases",
                c.name
            );
            assert!(!c.ingredients.is_empty());
        }
    }

    #[test]
    fn every_flavored_cluster_reachable_and_vice_versa() {
        let flavored: Vec<_> = CLUSTERS.iter().filter(|c| !c.flavors.is_empty()).collect();
        let scented: Vec<_> = CLUSTERS.iter().filter(|c| !c.scents.is_empty()).collect();
        assert!(flavored.len() >= 5);
        assert!(scented.len() >= 5);
    }

    #[test]
    fn phrases_have_no_tabs_or_newlines() {
        for c in CLUSTERS {
            for p in c.flavors.iter().chain(c.scents).chain(c.ingredients) {
                assert!(!p.contains('\t') && !p.contains('\n'));
            }
        }
        for s in SIZES.iter().chain(MARKETING).chain(MISC_VALUES) {
            assert!(!s.contains('\t') && !s.contains('\n'));
        }
    }

    #[test]
    fn cluster_of_phrase_lookup() {
        let c = cluster_of_phrase("spicy queso").unwrap();
        assert_eq!(c.name, "spicy");
        assert!(cluster_of_phrase("not a phrase").is_none());
        assert_eq!(cluster_of_phrase("lavender").unwrap().name, "floral");
    }

    #[test]
    fn product_types_cover_both_labeled_attributes() {
        assert!(PRODUCT_TYPES.iter().any(|p| p.flavored));
        assert!(PRODUCT_TYPES.iter().any(|p| !p.flavored));
        // Paper's domain breadth: at least 5 domains.
        let mut domains: Vec<_> = PRODUCT_TYPES.iter().map(|p| p.domain).collect();
        domains.sort_unstable();
        domains.dedup();
        assert!(domains.len() >= 5, "{domains:?}");
    }
}
