//! Synthetic FB15K-237-like knowledge graph.
//!
//! What the paper uses FB15K-237 for: a benchmark with *rich
//! relational structure* (hundreds of relations over typed entities)
//! and comparatively weak text, where structure-based methods shine
//! and NLP-only methods struggle. This generator reproduces those
//! properties:
//!
//! * entities are typed, and each carries a latent *cluster* within
//!   its type;
//! * every relation has a (domain-type, range-type) signature and a
//!   cluster mapping: `(h, r, t)` holds iff `type(h) = dom(r)`,
//!   `type(t) = rng(r)`, and `cluster(t) = M_r(cluster(h))` — a
//!   learnable compositional structure;
//! * entity names are terse, mostly opaque pseudo-words (real
//!   Freebase names don't announce their type), usually joined by a
//!   cluster word standing in for FB15K-237's textual mentions — text
//!   carries *some* signal but far less than catalog titles do;
//! * 10% noise is injected into training, as in §4.1 of the paper.
//!
//! The bipartite `ProductGraph` store keeps head and tail roles in
//! separate id spaces; because truth here is determined per-triple by
//! type + cluster (not by multi-hop composition through shared ids),
//! this preserves the learnability of the structure (see DESIGN.md).

use pge_graph::{Dataset, LabeledTriple, ProductGraph, Triple};
use pge_tensor::FxHashSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs of the FB-like generator.
#[derive(Clone, Debug)]
pub struct FbkgConfig {
    /// Number of entity types.
    pub types: usize,
    /// Entities per type.
    pub entities_per_type: usize,
    /// Latent clusters within each type.
    pub clusters_per_type: usize,
    /// Number of relations (the real FB15K-237 has 237).
    pub relations: usize,
    /// True triples to sample (before the train/labeled split).
    pub triples: usize,
    /// Fraction of training triples corrupted (paper: 10%).
    pub noise: f64,
    /// Labeled triples (valid + test), half correct / half corrupted.
    pub labeled: usize,
    /// Probability an entity name reveals its cluster word.
    pub cluster_word_prob: f64,
    /// Fraction of labeled corruptions drawn from the relation's own
    /// value pool (type-consistent "hard" negatives); the paper's
    /// noise is fully random, so this defaults low.
    pub hard_negative_frac: f64,
    pub seed: u64,
}

impl Default for FbkgConfig {
    fn default() -> Self {
        FbkgConfig {
            types: 10,
            entities_per_type: 120,
            clusters_per_type: 4,
            relations: 60,
            triples: 12_000,
            noise: 0.10,
            labeled: 600,
            cluster_word_prob: 0.8,
            hard_negative_frac: 0.65,
            seed: 7,
        }
    }
}

impl FbkgConfig {
    /// Small config for unit/integration tests.
    pub fn tiny() -> Self {
        FbkgConfig {
            types: 5,
            entities_per_type: 40,
            clusters_per_type: 3,
            relations: 15,
            triples: 1_500,
            labeled: 200,
            ..Default::default()
        }
    }
}

const TYPE_WORDS: &[&str] = &[
    "person",
    "film",
    "place",
    "organization",
    "award",
    "genre",
    "profession",
    "language",
    "team",
    "school",
    "song",
    "event",
    "book",
    "instrument",
    "cuisine",
];

const CLUSTER_WORDS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "theta", "kappa",
];

const SYLLABLES: &[&str] = &[
    "vel", "tra", "kor", "mun", "zal", "ir", "bas", "ne", "ol", "dri", "fex", "ga", "hul", "rim",
    "sto", "qua",
];

struct Entity {
    name: String,
    ty: usize,
    cluster: usize,
}

struct Relation {
    name: String,
    domain: usize,
    range: usize,
    /// Cluster mapping: head cluster → required tail cluster.
    mapping: Vec<usize>,
}

fn pseudo_word(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..=3);
    (0..n)
        .map(|_| SYLLABLES[rng.gen_range(0..SYLLABLES.len())])
        .collect()
}

/// Generate the FB-like dataset.
pub fn generate_fbkg(cfg: &FbkgConfig) -> Dataset {
    assert!(cfg.types <= TYPE_WORDS.len(), "too many types requested");
    assert!(
        cfg.clusters_per_type <= CLUSTER_WORDS.len(),
        "too many clusters requested"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Entities with unique, mostly *opaque* names: a pseudo-word core
    // (like a Freebase surname — no type giveaway) plus, usually, a
    // cluster word standing in for the dataset's textual mentions.
    let mut entities = Vec::with_capacity(cfg.types * cfg.entities_per_type);
    let mut used = FxHashSet::default();
    for ty in 0..cfg.types {
        for i in 0..cfg.entities_per_type {
            let cluster = rng.gen_range(0..cfg.clusters_per_type);
            let mut name = loop {
                let w = pseudo_word(&mut rng);
                if used.insert(format!("{w}/{ty}")) {
                    break w;
                }
            };
            if rng.gen_bool(cfg.cluster_word_prob) {
                name.push(' ');
                name.push_str(CLUSTER_WORDS[cluster]);
            } else {
                // Keep names unique even without the cluster word.
                name.push_str(&format!(" {i}"));
            }
            entities.push(Entity { name, ty, cluster });
        }
    }
    // Index entities by (type, cluster) for sampling.
    let mut by_type_cluster: Vec<Vec<Vec<usize>>> =
        vec![vec![Vec::new(); cfg.clusters_per_type]; cfg.types];
    let mut by_type: Vec<Vec<usize>> = vec![Vec::new(); cfg.types];
    for (i, e) in entities.iter().enumerate() {
        by_type_cluster[e.ty][e.cluster].push(i);
        by_type[e.ty].push(i);
    }

    // Relations with type signatures and cluster mappings.
    let relations: Vec<Relation> = (0..cfg.relations)
        .map(|r| {
            let domain = rng.gen_range(0..cfg.types);
            let range = rng.gen_range(0..cfg.types);
            let mapping = (0..cfg.clusters_per_type)
                .map(|_| rng.gen_range(0..cfg.clusters_per_type))
                .collect();
            Relation {
                // Opaque relation ids, like FB15K-237's /film/... paths
                // read to a model that can't parse them.
                name: format!("r{r}"),
                domain,
                range,
                mapping,
            }
        })
        .collect();

    // Sample unique true triples.
    let mut graph = ProductGraph::new();
    let mut triples = Vec::with_capacity(cfg.triples);
    let mut seen = FxHashSet::default();
    let mut attempts = 0usize;
    while triples.len() < cfg.triples && attempts < cfg.triples * 50 {
        attempts += 1;
        let r_ix = rng.gen_range(0..relations.len());
        let rel = &relations[r_ix];
        let h_ix = by_type[rel.domain][rng.gen_range(0..by_type[rel.domain].len())];
        let want_cluster = rel.mapping[entities[h_ix].cluster];
        let pool = &by_type_cluster[rel.range][want_cluster];
        if pool.is_empty() {
            continue;
        }
        let t_ix = pool[rng.gen_range(0..pool.len())];
        if !seen.insert((h_ix, r_ix, t_ix)) {
            continue;
        }
        let t = Triple::new(
            graph.intern_product(&entities[h_ix].name),
            graph.intern_attr(&rel.name),
            graph.intern_value(&entities[t_ix].name),
        );
        graph.add_triple(t);
        triples.push(t);
    }

    // Hold out `labeled` true triples; corrupt half of them.
    let n_labeled_pos = (cfg.labeled / 2).min(triples.len() / 4);
    let train: Vec<Triple> = triples[n_labeled_pos..].to_vec();
    let mut labeled: Vec<LabeledTriple> = triples[..n_labeled_pos]
        .iter()
        .map(|&t| LabeledTriple {
            triple: t,
            correct: true,
        })
        .collect();
    // Corruptions: replace the tail with another interned value —
    // mostly fully random (the paper's protocol), with a small
    // type-consistent "hard" fraction.
    let num_values = graph.num_values() as u32;
    let pools = graph.values_by_attr();
    for i in 0..n_labeled_pos {
        let base = triples[rng.gen_range(0..triples.len())];
        let pool = &pools[base.attr.0 as usize];
        let type_consistent = rng.gen_bool(cfg.hard_negative_frac) && pool.len() >= 2;
        let _ = i;
        let mut v;
        loop {
            v = if type_consistent {
                pool[rng.gen_range(0..pool.len())]
            } else {
                pge_graph::ValueId(rng.gen_range(0..num_values))
            };
            if v != base.value {
                break;
            }
        }
        labeled.push(LabeledTriple {
            triple: Triple::new(base.product, base.attr, v),
            correct: false,
        });
    }
    // Interleave correct/incorrect so valid/test halves are balanced.
    let mut interleaved = Vec::with_capacity(labeled.len());
    let (pos, neg) = labeled.split_at(n_labeled_pos);
    for i in 0..n_labeled_pos {
        interleaved.push(pos[i]);
        interleaved.push(neg[i]);
    }
    let half = interleaved.len() / 2;
    let valid = interleaved[..half].to_vec();
    let test = interleaved[half..].to_vec();

    // Training noise (10% by default).
    let (train, train_clean) = pge_graph::inject_noise(&graph, &train, cfg.noise, &mut rng);

    let mut d = Dataset::new(graph, train, valid, test);
    d.train_clean = train_clean;
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate_fbkg(&FbkgConfig::tiny());
        let b = generate_fbkg(&FbkgConfig::tiny());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn shape() {
        let cfg = FbkgConfig::tiny();
        let d = generate_fbkg(&cfg);
        assert_eq!(d.graph.num_attrs(), cfg.relations);
        assert!(d.train.len() > cfg.triples / 2);
        assert!(!d.valid.is_empty() && !d.test.is_empty());
        // Roughly half the labels are incorrect.
        let all: Vec<_> = d.valid.iter().chain(&d.test).collect();
        let bad = all.iter().filter(|lt| !lt.correct).count();
        let frac = bad as f64 / all.len() as f64;
        assert!((0.4..0.6).contains(&frac), "{frac}");
    }

    #[test]
    fn relations_richer_than_catalog() {
        // The paper's key contrast: FB15k-237 has ~234 relations vs 27
        // attributes. Our defaults keep a similar ratio.
        let fb = FbkgConfig::default();
        assert!(fb.relations >= 50);
    }

    #[test]
    fn names_are_opaque_but_mostly_carry_cluster_words() {
        let d = generate_fbkg(&FbkgConfig::tiny());
        let mut with_type = 0;
        let mut with_cluster = 0;
        let n = d.graph.num_products().min(100);
        for i in 0..n {
            let name = d.graph.title(pge_graph::ProductId(i as u32));
            if TYPE_WORDS.iter().any(|t| name.contains(t)) {
                with_type += 1;
            }
            if CLUSTER_WORDS.iter().any(|c| name.contains(c)) {
                with_cluster += 1;
            }
        }
        assert_eq!(with_type, 0, "type words must not leak into names");
        assert!(with_cluster > n / 2, "{with_cluster}/{n}");
    }

    #[test]
    fn cluster_structure_is_consistent() {
        // Within one relation, heads sharing a name-cluster word must
        // map to tails sharing a cluster word (when both reveal them).
        let cfg = FbkgConfig {
            cluster_word_prob: 1.0,
            ..FbkgConfig::tiny()
        };
        let d = generate_fbkg(&cfg);
        let g = &d.graph;
        let cluster_word = |s: &str| CLUSTER_WORDS.iter().find(|w| s.ends_with(*w)).copied();
        use std::collections::HashMap;
        let mut mapping: HashMap<(u16, &str), &str> = HashMap::new();
        for t in g.triples() {
            let h = cluster_word(g.title(t.product));
            let v = cluster_word(g.value_text(t.value));
            if let (Some(h), Some(v)) = (h, v) {
                let prev = mapping.insert((t.attr.0, h), v);
                if let Some(prev) = prev {
                    assert_eq!(prev, v, "inconsistent cluster mapping");
                }
            }
        }
        assert!(!mapping.is_empty());
    }

    #[test]
    fn noise_fraction_recorded() {
        let d = generate_fbkg(&FbkgConfig::tiny());
        let dirty = d.train_clean.iter().filter(|c| !**c).count();
        let frac = dirty as f64 / d.train.len() as f64;
        assert!((0.05..0.15).contains(&frac), "{frac}");
    }

    #[test]
    fn labeled_positives_not_in_train() {
        let d = generate_fbkg(&FbkgConfig::tiny());
        let train: std::collections::HashSet<_> = d.train.iter().collect();
        for lt in d.valid.iter().chain(&d.test).filter(|lt| lt.correct) {
            assert!(!train.contains(&lt.triple));
        }
    }
}
