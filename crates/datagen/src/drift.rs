//! Seeded catalog-churn scenarios for incremental training.
//!
//! A drift scenario turns a base catalog into a delta stream: each
//! window mints new products through the same sampler the catalog
//! generator uses, corrects labeled values on existing products
//! (retract + add), and withdraws stale facts outright. Alongside the
//! stream it emits per-window *labeled* evaluation triples over the
//! churned products, so the incremental trainer's PR-AUC can be
//! compared window-by-window against a full retrain.
//!
//! Determinism contract: the generator owns its RNG (seeded from
//! [`DriftConfig::seed`], decorrelated from the catalog seed) and only
//! *reads* the base dataset. It never advances the catalog generator's
//! RNG stream — the golden PGECAT01 CRC over [`stream_catalog`]
//! (`0x6544_de00`) is untouched by any drift call, and the same
//! `(base, DriftConfig)` pair always yields a byte-identical stream.
//!
//! [`stream_catalog`]: crate::catalog::stream_catalog

use crate::catalog::{generate_product, CatalogConfig};
use pge_graph::{Dataset, DeltaOp, DeltaWindow, TripleDelta};
use pge_tensor::FxHashSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, Write};

/// Knobs of the churn model.
#[derive(Clone, Debug)]
pub struct DriftConfig {
    /// Ingest windows to emit.
    pub windows: usize,
    /// New products per window (each contributes its full fact set,
    /// labeled attribute included — the incremental trainer must see
    /// the value to stay transductive).
    pub adds_per_window: usize,
    /// Labeled-value corrections per window: retract the current
    /// flavor/scent fact, add a replacement drawn from the live value
    /// pool.
    pub updates_per_window: usize,
    /// Plain withdrawals per window (a fact disappears, nothing
    /// replaces it).
    pub retracts_per_window: usize,
    /// Labeled evaluation triples per window, sampled over that
    /// window's churned products.
    pub eval_per_window: usize,
    /// Fraction of evaluation triples that are corrupted.
    pub eval_error_rate: f64,
    /// RNG seed — independent of the catalog seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            windows: 4,
            adds_per_window: 40,
            updates_per_window: 20,
            retracts_per_window: 10,
            eval_per_window: 30,
            eval_error_rate: 0.5,
            seed: 7,
        }
    }
}

impl DriftConfig {
    /// Small scenario for unit/integration tests.
    pub fn tiny() -> Self {
        DriftConfig {
            windows: 2,
            adds_per_window: 6,
            updates_per_window: 3,
            retracts_per_window: 2,
            eval_per_window: 8,
            ..DriftConfig::default()
        }
    }
}

/// One labeled evaluation triple of a drift scenario, kept as raw
/// text: ids only exist once the consumer has replayed the stream into
/// its own graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DriftEvalTriple {
    /// Window after whose ingest this triple becomes evaluable.
    pub window: usize,
    pub title: String,
    pub attr: String,
    pub value: String,
    pub correct: bool,
}

/// A generated churn scenario: the delta stream plus its labeled
/// evaluation set.
#[derive(Clone, Debug)]
pub struct DriftScenario {
    pub windows: Vec<DeltaWindow>,
    pub eval: Vec<DriftEvalTriple>,
}

/// A live labeled fact the churn model can correct, retract, or draw
/// replacement values from.
#[derive(Clone)]
struct LiveFact {
    title: String,
    attr: String,
    value: String,
}

/// Generate a drift scenario over `base`. `cat` supplies the product
/// sampler's knobs (variant rates, title phrasing) — pass the config
/// the base catalog was generated with so churned products are
/// statistically indistinguishable from seed products.
pub fn generate_drift(base: &Dataset, cat: &CatalogConfig, cfg: &DriftConfig) -> DriftScenario {
    // Decorrelate from the catalog stream: a user who reuses one seed
    // for both must still get independent draws.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);

    // The churnable pool: live labeled (flavor/scent) training facts,
    // as raw text. Updates and retractions pick from here; replacement
    // values and eval corruptions draw from the same pool, which keeps
    // every emitted value transductive by construction.
    let mut pool: Vec<LiveFact> = Vec::new();
    for t in &base.train {
        let attr = base.graph.attr_name(t.attr);
        if attr == "flavor" || attr == "scent" {
            pool.push(LiveFact {
                title: base.graph.title(t.product).to_string(),
                attr: attr.to_string(),
                value: base.graph.value_text(t.value).to_string(),
            });
        }
    }
    assert!(
        !pool.is_empty(),
        "base dataset has no labeled training facts to churn"
    );
    let mut seen_titles: FxHashSet<String> = pool.iter().map(|f| f.title.clone()).collect();
    for t in &base.train {
        seen_titles.insert(base.graph.title(t.product).to_string());
    }

    let mut windows = Vec::with_capacity(cfg.windows);
    let mut eval = Vec::new();
    for w in 0..cfg.windows {
        let mut ops = Vec::new();
        // Products churned in this window — the eval set samples them.
        let mut churned: Vec<LiveFact> = Vec::new();

        for i in 0..cfg.adds_per_window {
            let mut p = generate_product(&mut rng, cat);
            if !seen_titles.insert(p.title.clone()) {
                p.title.push_str(&format!(", Drift {w}-{i}"));
                seen_titles.insert(p.title.clone());
            }
            let add = |attr: &str, value: &str, ops: &mut Vec<TripleDelta>| {
                ops.push(TripleDelta {
                    op: DeltaOp::Add,
                    title: p.title.clone(),
                    attr: attr.to_string(),
                    value: value.to_string(),
                });
            };
            add("category", &p.category, &mut ops);
            add("brand", &p.brand, &mut ops);
            add("size", &p.size, &mut ops);
            add("form", p.form, &mut ops);
            for ing in &p.ingredients {
                add("ingredient", ing, &mut ops);
            }
            if let Some(m) = &p.material {
                add("material", m, &mut ops);
            }
            add(p.labeled_attr, &p.phrase, &mut ops);
            let fact = LiveFact {
                title: p.title.clone(),
                attr: p.labeled_attr.to_string(),
                value: p.phrase.clone(),
            };
            churned.push(fact.clone());
            pool.push(fact);
        }

        for _ in 0..cfg.updates_per_window {
            if pool.len() < 2 {
                break;
            }
            let ix = rng.gen_range(0..pool.len());
            let old = pool[ix].clone();
            // Replacement: a different live value (usually another
            // concept cluster — a genuine semantic correction).
            let new_value = {
                let mut v = old.value.clone();
                for _ in 0..8 {
                    let cand = &pool[rng.gen_range(0..pool.len())];
                    if cand.value != old.value {
                        v = cand.value.clone();
                        break;
                    }
                }
                v
            };
            if new_value == old.value {
                continue;
            }
            ops.push(TripleDelta {
                op: DeltaOp::Retract,
                title: old.title.clone(),
                attr: old.attr.clone(),
                value: old.value.clone(),
            });
            ops.push(TripleDelta {
                op: DeltaOp::Add,
                title: old.title.clone(),
                attr: old.attr.clone(),
                value: new_value.clone(),
            });
            pool[ix].value = new_value;
            // Supersede any churned entry for the same fact (a product
            // added and corrected in one window) — eval must only see
            // the value that survives the window.
            churned.retain(|c| !(c.title == old.title && c.attr == old.attr));
            churned.push(pool[ix].clone());
        }

        for _ in 0..cfg.retracts_per_window {
            if pool.len() <= 1 {
                break;
            }
            let ix = rng.gen_range(0..pool.len());
            let gone = pool.swap_remove(ix);
            churned.retain(|c| !(c.title == gone.title && c.attr == gone.attr));
            ops.push(TripleDelta {
                op: DeltaOp::Retract,
                title: gone.title,
                attr: gone.attr,
                value: gone.value,
            });
        }

        // Labeled eval over this window's churned products: the
        // correct value is the product's current phrase (in train by
        // construction); corruptions draw a different live value.
        for _ in 0..cfg.eval_per_window {
            if churned.is_empty() || pool.is_empty() {
                break;
            }
            let f = &churned[rng.gen_range(0..churned.len())];
            let corrupt = rng.gen_bool(cfg.eval_error_rate);
            let value = if corrupt {
                let mut v = None;
                for _ in 0..8 {
                    let cand = &pool[rng.gen_range(0..pool.len())];
                    if cand.value != f.value {
                        v = Some(cand.value.clone());
                        break;
                    }
                }
                match v {
                    Some(v) => v,
                    None => continue,
                }
            } else {
                f.value.clone()
            };
            eval.push(DriftEvalTriple {
                window: w,
                title: f.title.clone(),
                attr: f.attr.clone(),
                value,
                correct: !corrupt,
            });
        }

        windows.push(DeltaWindow { index: w, ops });
    }
    DriftScenario { windows, eval }
}

/// Serialize a drift eval set, one TSV line per triple:
/// `window \t correct \t title \t attr \t value`.
pub fn write_drift_eval(eval: &[DriftEvalTriple], mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "#pge-drift-eval v1")?;
    for e in eval {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}",
            e.window,
            u8::from(e.correct),
            e.title,
            e.attr,
            e.value
        )?;
    }
    Ok(())
}

/// Parse a drift eval set written by [`write_drift_eval`].
pub fn read_drift_eval(r: impl BufRead) -> std::io::Result<Vec<DriftEvalTriple>> {
    let bad = |line: usize, msg: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("drift eval line {line}: {msg}"),
        )
    };
    let mut lines = r.lines();
    match lines.next() {
        Some(Ok(h)) if h == "#pge-drift-eval v1" => {}
        _ => return Err(bad(1, "missing #pge-drift-eval v1 header")),
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(5, '\t');
        let window = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(i + 2, "bad window"))?;
        let correct = match parts.next() {
            Some("1") => true,
            Some("0") => false,
            _ => return Err(bad(i + 2, "correct flag must be 0 or 1")),
        };
        let title = parts.next().ok_or_else(|| bad(i + 2, "missing title"))?;
        let attr = parts.next().ok_or_else(|| bad(i + 2, "missing attr"))?;
        let value = parts.next().ok_or_else(|| bad(i + 2, "missing value"))?;
        out.push(DriftEvalTriple {
            window,
            title: title.to_string(),
            attr: attr.to_string(),
            value: value.to_string(),
            correct,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::generate_catalog;
    use pge_graph::apply_window;

    fn base() -> (Dataset, CatalogConfig) {
        let cat = CatalogConfig::tiny();
        (generate_catalog(&cat), cat)
    }

    #[test]
    fn deterministic_given_seed() {
        let (d, cat) = base();
        let a = generate_drift(&d, &cat, &DriftConfig::tiny());
        let b = generate_drift(&d, &cat, &DriftConfig::tiny());
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.eval, b.eval);
        let c = generate_drift(
            &d,
            &cat,
            &DriftConfig {
                seed: 8,
                ..DriftConfig::tiny()
            },
        );
        assert_ne!(a.windows, c.windows);
    }

    #[test]
    fn windows_apply_cleanly_and_eval_is_transductive() {
        let (d, cat) = base();
        let cfg = DriftConfig::tiny();
        let s = generate_drift(&d, &cat, &cfg);
        assert_eq!(s.windows.len(), cfg.windows);

        let mut evolved = d.clone();
        let mut live = vec![true; evolved.train.len()];
        for w in &s.windows {
            let applied = apply_window(&mut evolved, &mut live, w);
            // Every retraction the churn model emits targets a fact it
            // knows to be live.
            assert_eq!(applied.missed_retractions, 0, "window {}", w.index);
            assert!(
                !applied.added.is_empty(),
                "window {} added nothing",
                w.index
            );

            // Transductive at the point of evaluation: window-w eval
            // values occur among *live* train entries right after
            // window w is ingested (later windows may churn them away
            // again — that's fine, they're evaluated here).
            let live_values: FxHashSet<&str> = evolved
                .train
                .iter()
                .zip(&live)
                .filter(|(_, l)| **l)
                .map(|(t, _)| evolved.graph.value_text(t.value))
                .collect();
            for e in s.eval.iter().filter(|e| e.window == w.index) {
                assert!(
                    live_values.contains(e.value.as_str()),
                    "window {} eval value {:?} not in live train",
                    w.index,
                    e.value
                );
            }
        }
        assert!(!s.eval.is_empty());
        assert!(s.eval.iter().any(|e| e.correct));
        assert!(s.eval.iter().any(|e| !e.correct));
    }

    #[test]
    fn base_dataset_is_not_perturbed() {
        // The generator reads the base and owns its RNG: regenerating
        // the catalog after a drift call is byte-identical, so the
        // golden PGECAT01 CRC cannot move.
        let (d, cat) = base();
        let _ = generate_drift(&d, &cat, &DriftConfig::tiny());
        let again = generate_catalog(&cat);
        assert_eq!(d.train, again.train);
        assert_eq!(d.graph.triples(), again.graph.triples());
    }

    #[test]
    fn eval_roundtrips_through_tsv() {
        let (d, cat) = base();
        let s = generate_drift(&d, &cat, &DriftConfig::tiny());
        let mut buf = Vec::new();
        write_drift_eval(&s.eval, &mut buf).unwrap();
        let back = read_drift_eval(&buf[..]).unwrap();
        assert_eq!(s.eval, back);
        assert!(read_drift_eval(&b"no header"[..]).is_err());
    }
}
