//! Synthetic dataset generators standing in for the paper's data.
//!
//! * [`catalog`] replaces the proprietary Amazon catalog: a seeded
//!   product-catalog generator whose statistical couplings mirror the
//!   ones PGE exploits — titles textually entail attribute values,
//!   value strings are free text with surface variants, concept
//!   clusters correlate values across products (the paper's
//!   "pepper" ↔ "spicy" example), and errors of three realistic kinds
//!   are injected with ground-truth labels.
//! * [`drift`] turns a base catalog into a seeded churn scenario — a
//!   delta stream of added/corrected/withdrawn facts plus per-window
//!   labeled eval triples — for exercising incremental training.
//! * [`fbkg`] replaces FB15K-237: a typed multi-relational KG with
//!   latent cluster structure (rich, learnable graph signal) and
//!   deliberately weak entity text.
//! * [`lexicon`] holds the concept clusters and phrase inventories.
//!
//! (Corpus/vocabulary construction lives in `pge_core::corpus`, next
//! to the models that consume it.)

pub mod catalog;
pub mod drift;
pub mod fbkg;
pub mod lexicon;

pub use catalog::{generate_catalog, stream_catalog, CatalogConfig, StreamStats};
pub use drift::{
    generate_drift, read_drift_eval, write_drift_eval, DriftConfig, DriftEvalTriple, DriftScenario,
};
pub use fbkg::{generate_fbkg, FbkgConfig};
