//! A small Fx-style hasher.
//!
//! Interning product titles, attribute values, and vocabulary words is
//! on the hot path of dataset construction, and SipHash (the std
//! default) is needlessly slow for it. This is the well-known FxHash
//! mixing function (as used by rustc), implemented here so the
//! workspace does not need an extra dependency. It is **not** DoS
//! resistant; do not expose it to untrusted adversarial keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash function.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Streaming hasher applying the Fx mix to each input word.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold in the length so "a" and "a\0" differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with the fast Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the fast Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&"spicy queso"), hash_of(&"spicy queso"));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_close_strings() {
        assert_ne!(hash_of(&"flavor"), hash_of(&"flavors"));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&""), hash_of(&"\0"));
    }

    #[test]
    fn trailing_bytes_affect_hash() {
        // Inputs longer than one 8-byte word exercising the remainder path.
        assert_ne!(hash_of(&"abcdefgh1"), hash_of(&"abcdefgh2"));
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefgh\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("pepper".into(), 1);
        m.insert("spicy".into(), 2);
        assert_eq!(m.get("pepper"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }
}
