//! Runtime-dispatched f32 compute kernels: a blocked scalar reference
//! and an explicit AVX2 `f32x8` implementation of the same arithmetic.
//!
//! Every kernel here exists in (up to) two forms that are **bit
//! identical** by construction:
//!
//! * the *scalar reference* — eight independent accumulators walked
//!   over full 8-wide blocks, combined by a fixed pairwise tree, then
//!   a sequential tail for the ragged remainder;
//! * the *SIMD path* — one `f32x8` vector accumulator doing the exact
//!   same per-lane multiply-then-add (no FMA: fused multiply-add
//!   rounds once where `mul` + `add` round twice, so using it would
//!   change bits), stored to lanes and reduced by the *same* tree and
//!   tail code.
//!
//! Both paths perform the same IEEE-754 operations in the same order,
//! so reductions agree to the last ulp — ±inf overflow, subnormals,
//! and signed zeros included. `pge-scan`'s shard CRCs and the
//! trainer's bit-identical-resume guarantee therefore survive kernel
//! switches: a model trained or a catalog scanned with `simd` is
//! byte-identical to `scalar`.
//!
//! One documented carve-out: when a result is NaN, both kernels agree
//! it is NaN (NaN-ness depends only on values and association, which
//! are identical), but the NaN *payload/sign bits* are unspecified —
//! LLVM may commute operands or constant-fold NaN-producing
//! expressions, so payload identity is unattainable even between two
//! builds of the scalar kernel alone. This cannot leak into durable
//! artifacts: scan shards and scores format floats as text ("NaN"
//! regardless of payload) before CRC-ing, and a NaN weight means a
//! diverged training run, which no determinism guarantee covers. The
//! CI-gated proptests in `tests/kernel_parity.rs` pin exactly this
//! contract.
//!
//! Note the blocked reduction order is *not* the naive sequential sum
//! the pre-dispatch code used — switching to it changed low bits of
//! every dot product once, at the PR introducing this module. The
//! blocked order is now the documented reference.
//!
//! Selection: [`active_kernel`] picks SIMD when the host has AVX2,
//! overridable by the `PGE_KERNEL` environment variable
//! (`scalar` | `simd` | `auto`) or programmatically via
//! [`set_kernel`] (tests and the CLI use this). Requesting `simd` on
//! a host without AVX2 silently falls back to the scalar reference —
//! the results are identical either way, only the speed differs.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation backs the hot loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Blocked scalar reference implementation.
    Scalar,
    /// Explicit `f32x8` AVX2 implementation.
    Simd,
}

impl Kernel {
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Simd => "simd",
        }
    }
}

/// Encoded selection: 0 = undecided, 1 = scalar, 2 = simd.
static KERNEL: AtomicU8 = AtomicU8::new(0);

/// True when this build/host can run the AVX2 path.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn encode(k: Kernel) -> u8 {
    match k {
        Kernel::Scalar => 1,
        Kernel::Simd => 2,
    }
}

/// Resolve a request against hardware support: `None` = auto.
fn resolve(want: Option<Kernel>) -> Kernel {
    match want {
        Some(Kernel::Scalar) => Kernel::Scalar,
        Some(Kernel::Simd) | None => {
            if simd_supported() {
                Kernel::Simd
            } else {
                Kernel::Scalar
            }
        }
    }
}

fn decide_from_env() -> Kernel {
    let want = match std::env::var("PGE_KERNEL").ok().as_deref() {
        Some("scalar") => Some(Kernel::Scalar),
        Some("simd") => Some(Kernel::Simd),
        _ => None,
    };
    resolve(want)
}

/// The kernel the dispatching entry points currently use.
#[inline]
pub fn active_kernel() -> Kernel {
    match KERNEL.load(Ordering::Relaxed) {
        1 => Kernel::Scalar,
        2 => Kernel::Simd,
        _ => {
            let k = decide_from_env();
            KERNEL.store(encode(k), Ordering::Relaxed);
            k
        }
    }
}

/// Force a kernel (`None` = return to auto-detection). Requesting
/// [`Kernel::Simd`] on a host without AVX2 falls back to scalar.
/// Process-global; safe to flip at any time because both kernels are
/// bit-identical.
pub fn set_kernel(want: Option<Kernel>) {
    let k = match want {
        None => decide_from_env(),
        some => resolve(some),
    };
    KERNEL.store(encode(k), Ordering::Relaxed);
}

/// Fixed lane-combine shared by every reduction kernel: pairwise tree
/// over the eight block accumulators, then the sequential tail sum.
/// Keeping this in exactly one place is what makes the scalar and
/// SIMD reductions bit-identical.
#[inline]
fn reduce_lanes(l: &[f32; 8]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

// ---------------------------------------------------------------------------
// dot
// ---------------------------------------------------------------------------

/// Blocked scalar reference for [`dot`].
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let blocks = a.len() / 8;
    let mut acc = [0.0f32; 8];
    for i in 0..blocks {
        let ca = &a[i * 8..i * 8 + 8];
        let cb = &b[i * 8..i * 8 + 8];
        for j in 0..8 {
            acc[j] += ca[j] * cb[j];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in a[blocks * 8..].iter().zip(&b[blocks * 8..]) {
        tail += x * y;
    }
    reduce_lanes(&acc) + tail
}

/// AVX2 `f32x8` implementation of [`dot`]; falls back to the scalar
/// reference on hosts without AVX2 (results are identical either way).
pub fn dot_simd(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_supported() {
        // SAFETY: AVX2 availability just confirmed.
        return unsafe { avx2::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// Dot product dispatched to the active kernel.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    match active_kernel() {
        Kernel::Simd => dot_simd(a, b),
        Kernel::Scalar => dot_scalar(a, b),
    }
}

// ---------------------------------------------------------------------------
// gemv (out[r] = dot(w_row_r, x)) — the shared inner op of the conv
// pre-activation loop, `Linear::affine`, and `matmul_transposed`.
// Each output element is defined as exactly `dot(row, x)`, so the
// scalar reference *is* a loop of `dot_scalar` calls; the AVX2 path
// tiles rows eight at a time to load each `x` block once per tile
// instead of once per row, keeping every row's accumulation sequence
// identical to `dot_simd`.
// ---------------------------------------------------------------------------

/// Scalar reference for [`gemv`]: `w` is row-major `out.len()` rows
/// of `x.len()` columns.
pub fn gemv_scalar(w: &[f32], x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(w.len(), x.len() * out.len());
    let len = x.len();
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot_scalar(&w[r * len..(r + 1) * len], x);
    }
}

/// AVX2 implementation of [`gemv`]; scalar fallback without AVX2.
pub fn gemv_simd(w: &[f32], x: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd_supported() {
        // SAFETY: AVX2 availability just confirmed.
        unsafe { avx2::gemv(w, x, out) };
        return;
    }
    gemv_scalar(w, x, out)
}

/// Row-major matrix–vector product dispatched to the active kernel.
/// `out[r] == dot(w_row_r, x)` bit for bit.
#[inline]
pub fn gemv(w: &[f32], x: &[f32], out: &mut [f32]) {
    match active_kernel() {
        Kernel::Simd => gemv_simd(w, x, out),
        Kernel::Scalar => gemv_scalar(w, x, out),
    }
}

// ---------------------------------------------------------------------------
// axpy (y += alpha * x) — elementwise, so both paths are trivially
// bit-identical; SIMD only changes speed.
// ---------------------------------------------------------------------------

/// Scalar reference for [`axpy`].
pub fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// AVX2 implementation of [`axpy`]; scalar fallback without AVX2.
pub fn axpy_simd(alpha: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd_supported() {
        // SAFETY: AVX2 availability just confirmed.
        unsafe { avx2::axpy(alpha, x, y) };
        return;
    }
    axpy_scalar(alpha, x, y)
}

/// `y += alpha * x` dispatched to the active kernel.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    match active_kernel() {
        Kernel::Simd => axpy_simd(alpha, x, y),
        Kernel::Scalar => axpy_scalar(alpha, x, y),
    }
}

// ---------------------------------------------------------------------------
// Fused scorer distance kernels. These back `pge-core`'s scoring
// functions on the bulk-scan/serve hot path; keeping them here lets
// one blocked reference define the bits for both kernels.
// ---------------------------------------------------------------------------

/// Blocked scalar reference for [`l1_dist3`].
pub fn l1_dist3_scalar(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    debug_assert_eq!(h.len(), r.len());
    debug_assert_eq!(h.len(), t.len());
    let blocks = h.len() / 8;
    let mut acc = [0.0f32; 8];
    for i in 0..blocks {
        let o = i * 8;
        for j in 0..8 {
            acc[j] += (h[o + j] + r[o + j] - t[o + j]).abs();
        }
    }
    let mut tail = 0.0f32;
    for i in blocks * 8..h.len() {
        tail += (h[i] + r[i] - t[i]).abs();
    }
    reduce_lanes(&acc) + tail
}

/// AVX2 implementation of [`l1_dist3`]; scalar fallback without AVX2.
pub fn l1_dist3_simd(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_supported() {
        // SAFETY: AVX2 availability just confirmed.
        return unsafe { avx2::l1_dist3(h, r, t) };
    }
    l1_dist3_scalar(h, r, t)
}

/// `Σ |h + r − t|` — the TransE distance — dispatched.
#[inline]
pub fn l1_dist3(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    match active_kernel() {
        Kernel::Simd => l1_dist3_simd(h, r, t),
        Kernel::Scalar => l1_dist3_scalar(h, r, t),
    }
}

/// Blocked scalar reference for [`dot3`].
pub fn dot3_scalar(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    debug_assert_eq!(h.len(), r.len());
    debug_assert_eq!(h.len(), t.len());
    let blocks = h.len() / 8;
    let mut acc = [0.0f32; 8];
    for i in 0..blocks {
        let o = i * 8;
        for j in 0..8 {
            acc[j] += h[o + j] * r[o + j] * t[o + j];
        }
    }
    let mut tail = 0.0f32;
    for i in blocks * 8..h.len() {
        tail += h[i] * r[i] * t[i];
    }
    reduce_lanes(&acc) + tail
}

/// AVX2 implementation of [`dot3`]; scalar fallback without AVX2.
pub fn dot3_simd(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_supported() {
        // SAFETY: AVX2 availability just confirmed.
        return unsafe { avx2::dot3(h, r, t) };
    }
    dot3_scalar(h, r, t)
}

/// `Σ h·r·t` — the DistMult score — dispatched.
#[inline]
pub fn dot3(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    match active_kernel() {
        Kernel::Simd => dot3_simd(h, r, t),
        Kernel::Scalar => dot3_scalar(h, r, t),
    }
}

/// Blocked scalar reference for [`rotate_dist`].
#[allow(clippy::too_many_arguments)]
pub fn rotate_dist_scalar(
    h_re: &[f32],
    h_im: &[f32],
    sin: &[f32],
    cos: &[f32],
    t_re: &[f32],
    t_im: &[f32],
    eps: f32,
) -> f32 {
    let m = h_re.len();
    debug_assert!([h_im.len(), sin.len(), cos.len(), t_re.len(), t_im.len()] == [m; 5]);
    let blocks = m / 8;
    let mut acc = [0.0f32; 8];
    for i in 0..blocks {
        let o = i * 8;
        for j in 0..8 {
            acc[j] += rotate_term(
                h_re[o + j],
                h_im[o + j],
                sin[o + j],
                cos[o + j],
                t_re[o + j],
                t_im[o + j],
                eps,
            );
        }
    }
    let mut tail = 0.0f32;
    for i in blocks * 8..m {
        tail += rotate_term(h_re[i], h_im[i], sin[i], cos[i], t_re[i], t_im[i], eps);
    }
    reduce_lanes(&acc) + tail
}

/// One complex-modulus term of the RotatE distance. `sqrt` is an
/// IEEE-exact operation, so the SIMD `sqrtps` matches this bit for
/// bit.
#[inline]
fn rotate_term(h_re: f32, h_im: f32, sin: f32, cos: f32, t_re: f32, t_im: f32, eps: f32) -> f32 {
    let dre = (h_re * cos - h_im * sin) - t_re;
    let dim = (h_re * sin + h_im * cos) - t_im;
    (dre * dre + dim * dim + eps).sqrt()
}

/// AVX2 implementation of [`rotate_dist`]; scalar fallback without
/// AVX2.
#[allow(clippy::too_many_arguments)]
pub fn rotate_dist_simd(
    h_re: &[f32],
    h_im: &[f32],
    sin: &[f32],
    cos: &[f32],
    t_re: &[f32],
    t_im: &[f32],
    eps: f32,
) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_supported() {
        // SAFETY: AVX2 availability just confirmed.
        return unsafe { avx2::rotate_dist(h_re, h_im, sin, cos, t_re, t_im, eps) };
    }
    rotate_dist_scalar(h_re, h_im, sin, cos, t_re, t_im, eps)
}

/// `Σ ‖(h ∘ e^{iθ}) − t‖` over ℂ^m with the rotation given as
/// precomputed `sin`/`cos` arrays — the RotatE distance — dispatched.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn rotate_dist(
    h_re: &[f32],
    h_im: &[f32],
    sin: &[f32],
    cos: &[f32],
    t_re: &[f32],
    t_im: &[f32],
    eps: f32,
) -> f32 {
    match active_kernel() {
        Kernel::Simd => rotate_dist_simd(h_re, h_im, sin, cos, t_re, t_im, eps),
        Kernel::Scalar => rotate_dist_scalar(h_re, h_im, sin, cos, t_re, t_im, eps),
    }
}

// ---------------------------------------------------------------------------
// AVX2 implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Reduce a vector accumulator exactly like the scalar reference:
    /// store to lanes, pairwise tree, sequential tail.
    #[inline]
    unsafe fn finish(acc: __m256, tail: f32) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        super::reduce_lanes(&lanes) + tail
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let blocks = a.len() / 8;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            let va = _mm256_loadu_ps(pa.add(i * 8));
            let vb = _mm256_loadu_ps(pb.add(i * 8));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
        }
        let mut tail = 0.0f32;
        for (x, y) in a[blocks * 8..].iter().zip(&b[blocks * 8..]) {
            tail += x * y;
        }
        finish(acc, tail)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gemv(w: &[f32], x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(w.len(), x.len() * out.len());
        let len = x.len();
        let blocks = len / 8;
        let px = x.as_ptr();
        let mut r = 0;
        // Eight rows per tile: eight accumulators plus the shared x
        // block fit the sixteen ymm registers with room to spare, and
        // each x block is loaded once per tile instead of once per
        // row. Within a row the mul/add chain is exactly `dot`'s.
        while r + 8 <= out.len() {
            let rows: [*const f32; 8] = std::array::from_fn(|k| w.as_ptr().add((r + k) * len));
            let mut acc = [_mm256_setzero_ps(); 8];
            for i in 0..blocks {
                let vx = _mm256_loadu_ps(px.add(i * 8));
                for k in 0..8 {
                    let vw = _mm256_loadu_ps(rows[k].add(i * 8));
                    acc[k] = _mm256_add_ps(acc[k], _mm256_mul_ps(vw, vx));
                }
            }
            for k in 0..8 {
                let row = &w[(r + k) * len..(r + k + 1) * len];
                let mut tail = 0.0f32;
                for (a, b) in row[blocks * 8..].iter().zip(&x[blocks * 8..]) {
                    tail += a * b;
                }
                out[r + k] = finish(acc[k], tail);
            }
            r += 8;
        }
        for k in r..out.len() {
            out[k] = dot(&w[k * len..(k + 1) * len], x);
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        let blocks = x.len() / 8;
        let va = _mm256_set1_ps(alpha);
        let px = x.as_ptr();
        let py = y.as_mut_ptr();
        for i in 0..blocks {
            let vx = _mm256_loadu_ps(px.add(i * 8));
            let vy = _mm256_loadu_ps(py.add(i * 8));
            _mm256_storeu_ps(py.add(i * 8), _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
        }
        for (yi, &xi) in y[blocks * 8..].iter_mut().zip(&x[blocks * 8..]) {
            *yi += alpha * xi;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn l1_dist3(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        debug_assert_eq!(h.len(), r.len());
        debug_assert_eq!(h.len(), t.len());
        let blocks = h.len() / 8;
        let (ph, pr, pt) = (h.as_ptr(), r.as_ptr(), t.as_ptr());
        // |x| as a bit mask: clear the sign bit, exactly `f32::abs`.
        let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            let vh = _mm256_loadu_ps(ph.add(i * 8));
            let vr = _mm256_loadu_ps(pr.add(i * 8));
            let vt = _mm256_loadu_ps(pt.add(i * 8));
            let d = _mm256_sub_ps(_mm256_add_ps(vh, vr), vt);
            acc = _mm256_add_ps(acc, _mm256_and_ps(d, abs_mask));
        }
        let mut tail = 0.0f32;
        for i in blocks * 8..h.len() {
            tail += (h[i] + r[i] - t[i]).abs();
        }
        finish(acc, tail)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot3(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        debug_assert_eq!(h.len(), r.len());
        debug_assert_eq!(h.len(), t.len());
        let blocks = h.len() / 8;
        let (ph, pr, pt) = (h.as_ptr(), r.as_ptr(), t.as_ptr());
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            let vh = _mm256_loadu_ps(ph.add(i * 8));
            let vr = _mm256_loadu_ps(pr.add(i * 8));
            let vt = _mm256_loadu_ps(pt.add(i * 8));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_mul_ps(vh, vr), vt));
        }
        let mut tail = 0.0f32;
        for i in blocks * 8..h.len() {
            tail += h[i] * r[i] * t[i];
        }
        finish(acc, tail)
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn rotate_dist(
        h_re: &[f32],
        h_im: &[f32],
        sin: &[f32],
        cos: &[f32],
        t_re: &[f32],
        t_im: &[f32],
        eps: f32,
    ) -> f32 {
        let m = h_re.len();
        debug_assert!([h_im.len(), sin.len(), cos.len(), t_re.len(), t_im.len()] == [m; 5]);
        let blocks = m / 8;
        let veps = _mm256_set1_ps(eps);
        let mut acc = _mm256_setzero_ps();
        for i in 0..blocks {
            let o = i * 8;
            let vhre = _mm256_loadu_ps(h_re.as_ptr().add(o));
            let vhim = _mm256_loadu_ps(h_im.as_ptr().add(o));
            let vsin = _mm256_loadu_ps(sin.as_ptr().add(o));
            let vcos = _mm256_loadu_ps(cos.as_ptr().add(o));
            let vtre = _mm256_loadu_ps(t_re.as_ptr().add(o));
            let vtim = _mm256_loadu_ps(t_im.as_ptr().add(o));
            let dre = _mm256_sub_ps(
                _mm256_sub_ps(_mm256_mul_ps(vhre, vcos), _mm256_mul_ps(vhim, vsin)),
                vtre,
            );
            let dim = _mm256_sub_ps(
                _mm256_add_ps(_mm256_mul_ps(vhre, vsin), _mm256_mul_ps(vhim, vcos)),
                vtim,
            );
            let sq = _mm256_add_ps(
                _mm256_add_ps(_mm256_mul_ps(dre, dre), _mm256_mul_ps(dim, dim)),
                veps,
            );
            acc = _mm256_add_ps(acc, _mm256_sqrt_ps(sq));
        }
        let mut tail = 0.0f32;
        for i in blocks * 8..m {
            tail += super::rotate_term(h_re[i], h_im[i], sin[i], cos[i], t_re[i], t_im[i], eps);
        }
        finish(acc, tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_override_round_trips() {
        let before = active_kernel();
        set_kernel(Some(Kernel::Scalar));
        assert_eq!(active_kernel(), Kernel::Scalar);
        if simd_supported() {
            set_kernel(Some(Kernel::Simd));
            assert_eq!(active_kernel(), Kernel::Simd);
        } else {
            set_kernel(Some(Kernel::Simd));
            assert_eq!(active_kernel(), Kernel::Scalar, "no AVX2: falls back");
        }
        set_kernel(Some(before));
        assert_eq!(active_kernel(), before);
    }

    #[test]
    fn dot_known_value_blocked_order() {
        // 10 elements: one full block + a 2-element tail.
        let a: Vec<f32> = (1..=10).map(|i| i as f32).collect();
        let s = dot_scalar(&a, &a);
        assert_eq!(s, 385.0);
        assert_eq!(dot(&a, &a), s);
    }

    #[test]
    fn empty_and_short_slices() {
        assert_eq!(dot_scalar(&[], &[]), 0.0);
        assert_eq!(dot_scalar(&[2.0], &[3.0]), 6.0);
        assert_eq!(l1_dist3_scalar(&[], &[], &[]), 0.0);
        let mut y = [1.0f32];
        axpy_scalar(2.0, &[3.0], &mut y);
        assert_eq!(y, [7.0]);
    }
}
