//! Dense f32 linear algebra and small utilities underpinning the PGE
//! reproduction.
//!
//! The crate deliberately stays tiny and predictable: a row-major
//! [`Matrix`] type, the elementwise and reduction kernels the neural
//! layers need ([`ops`]), weight initializers ([`init`]), and an
//! Fx-style fast hasher ([`fx`]) used for string interning throughout
//! the workspace.
//!
//! Everything is `f32`: the models in this workspace are small enough
//! that single precision is ample, and it halves memory traffic, which
//! dominates the training loops.

pub mod fx;
pub mod init;
pub mod matrix;
pub mod ops;

pub use fx::{FxHashMap, FxHashSet};
pub use matrix::Matrix;
