//! Dense f32 linear algebra and small utilities underpinning the PGE
//! reproduction.
//!
//! The crate deliberately stays tiny and predictable: a row-major
//! [`Matrix`] type, the elementwise and reduction kernels the neural
//! layers need ([`ops`]), weight initializers ([`init`]), and an
//! Fx-style fast hasher ([`fx`]) used for string interning throughout
//! the workspace, and a CRC-32 ([`crc32`]) checksumming the durable
//! artifacts (model snapshots, scan shards).
//!
//! Everything is `f32`: the models in this workspace are small enough
//! that single precision is ample, and it halves memory traffic, which
//! dominates the training loops.

pub mod crc32;
pub mod fx;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod ops;

pub use crc32::{crc32, Crc32};
pub use fx::{FxHashMap, FxHashSet};
pub use kernels::{active_kernel, set_kernel, simd_supported, Kernel};
pub use matrix::Matrix;
