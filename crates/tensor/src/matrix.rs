//! Row-major dense `f32` matrix.
//!
//! The layers in `pge-nn` are written against this single type: a 2-d
//! array with contiguous rows. One-dimensional vectors are represented
//! as `1 × n` or `n × 1` matrices or plain slices, whichever is more
//! natural at the call site.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from nested rows (mostly for tests).
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Two disjoint mutable rows (used by in-place row swaps/updates).
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of range.
    pub fn rows_mut2(&mut self, a: usize, b: usize) -> (&mut [f32], &mut [f32]) {
        assert!(a != b && a < self.rows && b < self.rows);
        let c = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * c);
            (&mut lo[a * c..a * c + c], &mut hi[..c])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * c);
            (&mut hi[..c], &mut lo[b * c..b * c + c])
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Dense matrix product `self · rhs`.
    ///
    /// ikj-ordered triple loop: the inner update is a broadcast-axpy
    /// along contiguous rows of both the output and `rhs`, dispatched
    /// to the active compute kernel (scalar or AVX2 — elementwise, so
    /// bit-identical either way). Sizes in this workspace are small
    /// (≤ a few hundred), so no cache blocking is needed.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let o_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                crate::kernels::axpy(a, b_row, o_row);
            }
        }
        out
    }

    /// `self · rhsᵀ` without materializing the transpose. Each output
    /// row is one kernel-dispatched [`crate::kernels::gemv`] over the
    /// rows of `rhs` — element `(i, j)` is bit-identical to
    /// `dot(self.row(i), rhs.row(j))`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let o_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            crate::kernels::gemv(rhs.as_slice(), a_row, o_row);
        }
        out
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy_assign(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 || self.cols > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.5, -2.0, 0.25], vec![0.0, 3.0, 4.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.5, -1.0], vec![2.0, -0.5, 0.0]]);
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transposed());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn rows_mut2_disjoint_both_orders() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        {
            let (a, b) = m.rows_mut2(0, 2);
            a[0] = 10.0;
            b[1] = 60.0;
        }
        {
            let (a, b) = m.rows_mut2(2, 0);
            assert_eq!(a[1], 60.0);
            assert_eq!(b[0], 10.0);
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy_assign(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
        a.scale(3.0);
        assert_eq!(a.as_slice(), &[6.0; 4]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut a = Matrix::full(3, 2, 7.0);
        a.fill_zero();
        assert_eq!(a, Matrix::zeros(3, 2));
    }
}
