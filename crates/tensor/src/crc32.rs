//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte streams.
//!
//! Used to checksum durable artifacts — binary model snapshots
//! (`pge-core::persist`) and committed scan shards (`pge-scan`) — so
//! a truncated or bit-flipped file is rejected at load time instead
//! of silently producing wrong scores.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Incremental CRC-32 state for hashing a stream in pieces.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// The checksum of everything fed so far (the state is unchanged;
    /// more updates may follow).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Check values from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello, product graph";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        data[17] = 0x5a;
        let base = crc32(&data);
        for bit in 0..data.len() * 8 {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), base, "flip at bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
