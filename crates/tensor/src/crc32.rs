//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte streams.
//!
//! Used to checksum durable artifacts — binary model snapshots
//! (`pge-core::persist`) and committed scan shards (`pge-scan`) — so
//! a truncated or bit-flipped file is rejected at load time instead
//! of silently producing wrong scores.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xedb8_8320;

/// Slicing-by-8 lookup tables, built once at first use. `t[0]` is
/// the classic byte-at-a-time table; `t[k]` advances a byte through
/// `k` further zero bytes, letting [`Crc32::update`] fold eight input
/// bytes per iteration. The checksum values are identical to the
/// byte-at-a-time definition — only the throughput changes (the scan
/// committer CRCs every output row, and resume re-verifies every
/// committed shard).
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xff) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Incremental CRC-32 state for hashing a stream in pieces.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, mut bytes: &[u8]) {
        let t = tables();
        let mut s = self.state;
        while bytes.len() >= 8 {
            let lo = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) ^ s;
            let hi = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
            s = t[7][(lo & 0xff) as usize]
                ^ t[6][((lo >> 8) & 0xff) as usize]
                ^ t[5][((lo >> 16) & 0xff) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xff) as usize]
                ^ t[2][((hi >> 8) & 0xff) as usize]
                ^ t[1][((hi >> 16) & 0xff) as usize]
                ^ t[0][(hi >> 24) as usize];
            bytes = &bytes[8..];
        }
        for &b in bytes {
            s = t[0][((s ^ b as u32) & 0xff) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// The checksum of everything fed so far (the state is unchanged;
    /// more updates may follow).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Check values from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello, product graph";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        data[17] = 0x5a;
        let base = crc32(&data);
        for bit in 0..data.len() * 8 {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), base, "flip at bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
