//! Weight initializers.
//!
//! All initializers take an explicit RNG so every model in the
//! workspace is reproducible from a single seed.

use crate::Matrix;
use rand::Rng;

/// Uniform in `[-bound, bound]`.
pub fn uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize, bound: f32) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        *x = rng.gen_range(-bound..=bound);
    }
    m
}

/// Xavier/Glorot uniform: bound = sqrt(6 / (fan_in + fan_out)).
///
/// Used for every dense transform in the workspace — it keeps forward
/// activations and backward gradients at comparable scales, which
/// matters for the shallow-but-wide encoders trained here.
pub fn xavier_uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, bound)
}

/// Embedding-table initializer: uniform with the conventional
/// `0.5 / dim` bound used by word2vec-style lookup tables.
pub fn embedding<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let bound = 0.5 / cols.max(1) as f32;
    uniform(rng, rows, cols, bound)
}

/// Uniform phases in `[-π, π]`, for RotatE relation parameters.
pub fn phases<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    uniform(rng, rows, cols, std::f32::consts::PI)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(&mut rng, 20, 30, 0.1);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= 0.1));
        // Not all-zero: the RNG actually ran.
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn xavier_bound_formula() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = xavier_uniform(&mut rng, 10, 14);
        let bound = (6.0f32 / 24.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(7), 4, 4);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(7), 4, 4);
        assert_eq!(a, b);
        let c = xavier_uniform(&mut StdRng::seed_from_u64(8), 4, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn phases_within_pi() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = phases(&mut rng, 5, 8);
        assert!(m
            .as_slice()
            .iter()
            .all(|&x| x.abs() <= std::f32::consts::PI));
    }

    #[test]
    fn embedding_bound_shrinks_with_dim() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = embedding(&mut rng, 6, 100);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= 0.005));
    }
}
