//! Elementwise kernels, activations, and reductions over `f32` slices.
//!
//! These free functions are the numerical vocabulary of the neural
//! layers: everything takes plain slices so callers can apply them to
//! matrix rows, whole buffers, or scratch vectors without copies.

/// Dot product of two equal-length slices.
///
/// Dispatched to the active compute kernel (blocked scalar reference
/// or AVX2 `f32x8`); both produce bit-identical results — see
/// [`crate::kernels`].
///
/// # Panics
/// Panics if lengths differ (debug) — callers guarantee shapes.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::dot(a, b)
}

/// `y += alpha * x` over slices; dispatched like [`dot`].
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    crate::kernels::axpy(alpha, x, y)
}

/// L1 norm.
pub fn l1_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x.abs()).sum()
}

/// L2 norm.
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Normalize `a` to unit L2 norm in place; leaves zero vectors alone.
pub fn l2_normalize(a: &mut [f32]) {
    let n = l2_norm(a);
    if n > 1e-12 {
        let inv = 1.0 / n;
        a.iter_mut().for_each(|x| *x *= inv);
    }
}

/// Cosine similarity in [-1, 1]; 0 when either vector is ~zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log(sigmoid(x))`.
///
/// For large negative `x`, `sigmoid(x)` underflows to 0 and its log to
/// `-inf`; the identity `log σ(x) = x - log(1 + e^x) = min(x,0) -
/// log(1+e^{-|x|})` avoids that.
#[inline]
pub fn log_sigmoid(x: f32) -> f32 {
    x.min(0.0) - (-x.abs()).exp().ln_1p()
}

/// Hyperbolic tangent applied in place.
pub fn tanh_inplace(a: &mut [f32]) {
    a.iter_mut().for_each(|x| *x = x.tanh());
}

/// Derivative of tanh given the *activated* value `t = tanh(x)`.
#[inline]
pub fn tanh_deriv_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// ReLU applied in place.
pub fn relu_inplace(a: &mut [f32]) {
    a.iter_mut().for_each(|x| *x = x.max(0.0));
}

/// Stable in-place softmax over a slice; no-op for an empty slice.
pub fn softmax_inplace(a: &mut [f32]) {
    if a.is_empty() {
        return;
    }
    let m = a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in a.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    a.iter_mut().for_each(|x| *x *= inv);
}

/// Index and value of the maximum element.
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(a: &[f32]) -> (usize, f32) {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut bi = 0;
    let mut bv = a[0];
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > bv {
            bv = v;
            bi = i;
        }
    }
    (bi, bv)
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Population variance (0 for an empty slice).
pub fn variance(a: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / a.len() as f32
}

/// Clamp every element into `[lo, hi]` in place.
pub fn clamp_inplace(a: &mut [f32], lo: f32, hi: f32) {
    a.iter_mut().for_each(|x| *x = x.clamp(lo, hi));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        assert!(close(dot(&a, &a), 14.0));
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn norms_and_normalize() {
        let mut v = [3.0, 4.0];
        assert!(close(l1_norm(&v), 7.0));
        assert!(close(l2_norm(&v), 5.0));
        l2_normalize(&mut v);
        assert!(close(l2_norm(&v), 1.0));
        let mut z = [0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn cosine_basics() {
        assert!(close(cosine(&[1.0, 0.0], &[1.0, 0.0]), 1.0));
        assert!(close(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0));
        assert!(close(cosine(&[1.0, 0.0], &[-1.0, 0.0]), -1.0));
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn sigmoid_symmetry_and_extremes() {
        assert!(close(sigmoid(0.0), 0.5));
        assert!(close(sigmoid(3.0) + sigmoid(-3.0), 1.0));
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
    }

    #[test]
    fn log_sigmoid_is_stable_and_consistent() {
        for &x in &[-80.0f32, -5.0, -0.5, 0.0, 0.5, 5.0, 80.0] {
            let ls = log_sigmoid(x);
            assert!(ls.is_finite(), "log_sigmoid({x}) not finite");
            if x.abs() < 20.0 {
                assert!(close(ls, sigmoid(x).ln()), "x={x}");
            }
        }
        // σ(-80) underflows but logσ must stay ≈ -80.
        assert!(close(log_sigmoid(-80.0), -80.0));
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [1001.0, 1002.0, 1003.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        assert!(close(a.iter().sum::<f32>(), 1.0));
        for (x, y) in a.iter().zip(&b) {
            assert!(close(*x, *y));
        }
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut e: [f32; 0] = [];
        softmax_inplace(&mut e);
    }

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), (1, 5.0));
        assert_eq!(argmax(&[-3.0]), (0, -3.0));
    }

    #[test]
    fn mean_variance() {
        assert!(close(mean(&[1.0, 2.0, 3.0]), 2.0));
        assert!(close(variance(&[1.0, 2.0, 3.0]), 2.0 / 3.0));
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn activations_inplace() {
        let mut a = [-1.0, 0.0, 2.0];
        relu_inplace(&mut a);
        assert_eq!(a, [0.0, 0.0, 2.0]);
        let mut t = [0.0f32];
        tanh_inplace(&mut t);
        assert_eq!(t, [0.0]);
        assert!(close(tanh_deriv_from_output(0.0), 1.0));
        let mut c = [-2.0, 0.5, 2.0];
        clamp_inplace(&mut c, 0.0, 1.0);
        assert_eq!(c, [0.0, 0.5, 1.0]);
    }
}
