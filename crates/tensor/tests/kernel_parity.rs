//! Bit-identity proofs for the scalar-reference vs AVX2 kernels.
//!
//! Every reduction kernel in `pge_tensor::kernels` exists as a blocked
//! scalar reference and an AVX2 `f32x8` path; the determinism story of
//! the whole workspace (bit-identical training resume, scan shard
//! CRCs) rests on the two producing the same bits. These proptests
//! sweep ragged lengths (non-multiples of 8, including 0 and < 8) and
//! adversarial values — NaN, ±inf, subnormals, huge magnitudes that
//! overflow to inf during accumulation — and compare via `to_bits`,
//! which also distinguishes NaN payloads and -0.0 from +0.0.
//!
//! On hosts without AVX2 the `_simd` entry points fall back to the
//! scalar reference, making these tests trivially green there; CI
//! x86-64 runners all have AVX2, so the real comparison runs in CI.

use pge_tensor::kernels;
use proptest::prelude::*;

/// An f32 strategy that heavily favors the values that break naive
/// float-reduction equivalence claims: ~1 in 5 draws is NaN, ±inf,
/// ±0.0, a subnormal, or a magnitude that overflows mid-accumulation.
fn weird_f32() -> impl Strategy<Value = f32> {
    const SPECIALS: [f32; 10] = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        0.0,
        -0.0,
        f32::MIN_POSITIVE / 2.0, // subnormal
        f32::MAX,
        f32::MIN,
        1e30,
        -1e30,
    ];
    (0..5u32, 0..10usize, -1e3f32..1e3f32).prop_map(|(pick_special, which, normal)| {
        if pick_special == 0 {
            SPECIALS[which]
        } else {
            normal
        }
    })
}

/// Equal-length vectors across ragged sizes: 0, < 8, exact blocks,
/// blocks + tail.
fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (0..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(weird_f32(), n),
            prop::collection::vec(weird_f32(), n),
        )
    })
}

fn vec_triple(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<f32>)> {
    (0..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(weird_f32(), n),
            prop::collection::vec(weird_f32(), n),
            prop::collection::vec(weird_f32(), n),
        )
    })
}

/// Bit equality with the one documented carve-out: when a result is
/// NaN both kernels must agree it is NaN, but the payload/sign bits
/// are unspecified — LLVM reserves the right to commute operands and
/// constant-fold NaN-producing expressions, so payload identity is
/// unattainable even between two builds of the *scalar* kernel. All
/// durable artifacts (text-formatted scores, shard CRCs) render NaN
/// payload-invariantly, so determinism guarantees are unaffected.
fn assert_bits_eq(a: f32, b: f32, what: &str) {
    if a.is_nan() && b.is_nan() {
        return;
    }
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{what}: scalar {a:?} ({:#010x}) != simd {b:?} ({:#010x})",
        a.to_bits(),
        b.to_bits()
    );
}

proptest! {
    #[test]
    fn dot_scalar_simd_bit_identical((a, b) in vec_pair(67)) {
        assert_bits_eq(kernels::dot_scalar(&a, &b), kernels::dot_simd(&a, &b), "dot");
    }

    #[test]
    fn axpy_scalar_simd_bit_identical(alpha in weird_f32(), (x, y0) in vec_pair(67)) {
        let mut ys = y0.clone();
        let mut yv = y0;
        kernels::axpy_scalar(alpha, &x, &mut ys);
        kernels::axpy_simd(alpha, &x, &mut yv);
        for (i, (s, v)) in ys.iter().zip(&yv).enumerate() {
            assert_bits_eq(*s, *v, &format!("axpy[{i}]"));
        }
    }

    #[test]
    fn l1_dist3_scalar_simd_bit_identical((h, r, t) in vec_triple(67)) {
        assert_bits_eq(
            kernels::l1_dist3_scalar(&h, &r, &t),
            kernels::l1_dist3_simd(&h, &r, &t),
            "l1_dist3",
        );
    }

    #[test]
    fn dot3_scalar_simd_bit_identical((h, r, t) in vec_triple(67)) {
        assert_bits_eq(
            kernels::dot3_scalar(&h, &r, &t),
            kernels::dot3_simd(&h, &r, &t),
            "dot3",
        );
    }

    #[test]
    fn rotate_dist_scalar_simd_bit_identical(
        (h_re, h_im, t_re) in vec_triple(67),
        seed in 0..u64::MAX,
    ) {
        let m = h_re.len();
        // Phase angles and the tail vector derive deterministically
        // from the seed; sin/cos are precomputed exactly as the
        // scorer's prepared-relation path does.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 8.0
        };
        let theta: Vec<f32> = (0..m).map(|_| next()).collect();
        let t_im: Vec<f32> = (0..m).map(|_| next()).collect();
        let (sin, cos): (Vec<f32>, Vec<f32>) = theta.iter().map(|x| x.sin_cos()).unzip();
        assert_bits_eq(
            kernels::rotate_dist_scalar(&h_re, &h_im, &sin, &cos, &t_re, &t_im, 1e-9),
            kernels::rotate_dist_simd(&h_re, &h_im, &sin, &cos, &t_re, &t_im, 1e-9),
            "rotate_dist",
        );
    }
}

/// The dispatching entry points agree with both per-kernel paths
/// regardless of which kernel is globally active — flipping the
/// override must never change results.
#[test]
fn dispatch_is_kernel_invariant() {
    let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.61).cos()).collect();
    let reference = kernels::dot_scalar(&a, &b);
    for want in [kernels::Kernel::Scalar, kernels::Kernel::Simd] {
        kernels::set_kernel(Some(want));
        assert_eq!(kernels::dot(&a, &b).to_bits(), reference.to_bits());
    }
    kernels::set_kernel(None);
}
