//! Property-based tests for the tensor kernels.

use pge_tensor::{ops, Matrix};
use proptest::prelude::*;

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 1..max_len)
}

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-5.0f32..5.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix(1..8, 1..8)) {
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn matmul_identity_right(m in matrix(1..6, 1..6)) {
        let i = Matrix::identity(m.cols());
        let prod = m.matmul(&i);
        for (a, b) in prod.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_transposed_consistent(a in matrix(1..5, 1..5), b in matrix(1..5, 1..5)) {
        prop_assume!(a.cols() == b.cols());
        let fast = a.matmul_transposed(&b);
        let slow = a.matmul(&b.transposed());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(2..4, 2..4),
        s in -3.0f32..3.0,
    ) {
        // a·(I + I·s diag-free check): (a + a)·b == 2(a·b) via axpy.
        let mut doubled = a.clone();
        doubled.axpy_assign(1.0, &a);
        let b = Matrix::identity(a.cols());
        let left = doubled.matmul(&b);
        let mut right = a.matmul(&b);
        right.scale(2.0);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let _ = s;
    }

    #[test]
    fn dot_is_symmetric(v in small_vec(32)) {
        let w: Vec<f32> = v.iter().rev().cloned().collect();
        let a = ops::dot(&v, &w);
        let b = ops::dot(&w, &v);
        prop_assert!((a - b).abs() < 1e-3);
    }

    #[test]
    fn l2_normalize_yields_unit_or_zero(mut v in small_vec(32)) {
        ops::l2_normalize(&mut v);
        let n = ops::l2_norm(&v);
        prop_assert!(n < 1e-6 || (n - 1.0).abs() < 1e-3, "norm {n}");
    }

    #[test]
    fn cosine_bounded(
        (a, b) in (1usize..16).prop_flat_map(|n| {
            (
                prop::collection::vec(-10.0f32..10.0, n),
                prop::collection::vec(-10.0f32..10.0, n),
            )
        })
    ) {
        let c = ops::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn softmax_is_distribution(mut v in small_vec(32)) {
        ops::softmax_inplace(&mut v);
        prop_assert!(v.iter().all(|&x| x >= 0.0));
        let s: f32 = v.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-3, "sum {s}");
    }

    #[test]
    fn sigmoid_and_log_sigmoid_agree(x in -30.0f32..30.0) {
        let s = ops::sigmoid(x);
        prop_assert!((0.0..=1.0).contains(&s));
        let ls = ops::log_sigmoid(x);
        prop_assert!(ls <= 0.0);
        prop_assert!((ls - s.ln()).abs() < 1e-3, "x={x} ls={ls} ln(s)={}", s.ln());
    }

    #[test]
    fn sigmoid_complement(x in -30.0f32..30.0) {
        let s = ops::sigmoid(x) + ops::sigmoid(-x);
        prop_assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn l1_dominates_l2(v in small_vec(32)) {
        prop_assert!(ops::l1_norm(&v) + 1e-4 >= ops::l2_norm(&v));
    }

    #[test]
    fn argmax_returns_max(v in small_vec(32)) {
        let (ix, val) = ops::argmax(&v);
        prop_assert_eq!(v[ix], val);
        prop_assert!(v.iter().all(|&x| x <= val));
    }

    #[test]
    fn frobenius_matches_flat_l2(m in matrix(1..6, 1..6)) {
        let f = m.frobenius_norm();
        let l2 = ops::l2_norm(m.as_slice());
        prop_assert!((f - l2).abs() < 1e-3);
    }
}
