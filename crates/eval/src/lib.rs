//! Evaluation metrics and report formatting for error detection.
//!
//! The paper evaluates with PR AUC and R@P=x, with *incorrect triples*
//! as the positive (retrieved) class. [`pr`] implements the curve
//! machinery, [`threshold`] the validation-accuracy threshold
//! selection of §4.2, [`hist`] the confidence-score histograms of
//! Fig. 5, and [`report`] the fixed-width table printer used by the
//! `repro` harness.

pub mod hist;
pub mod pr;
pub mod report;
pub mod threshold;

pub use hist::{AtomicHistogram, Histogram};
pub use pr::{average_precision, pr_curve, recall_at_precision, Scored};
pub use report::Table;
pub use threshold::{accuracy_at, best_accuracy_threshold};
