//! Fixed-width table rendering for the `repro` harness, shaped like
//! the paper's result tables.

/// A simple left-aligned-first-column, right-aligned-rest table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add one row; short rows are padded with empty cells, long rows
    /// are rejected.
    ///
    /// # Panics
    /// Panics when a row has more cells than the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        let mut r = cells.to_vec();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Convenience: label + f32 metrics formatted to 3 decimals.
    pub fn metric_row(&mut self, label: &str, values: &[f32]) -> &mut Self {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(&cells)
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with box-drawing-free ASCII (stable under diffing).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (c, cell) in r.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                if c == 0 {
                    line.push_str(&format!(" {cell:<width$} "));
                } else {
                    line.push_str(&format!("| {cell:>width$} "));
                }
            }
            line
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Method", "PR AUC", "R@P=0.7"]);
        t.metric_row("PGE(CNN)-RotatE", &[0.745, 0.729]);
        t.metric_row("RotatE", &[0.597, 0.405]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("PGE(CNN)-RotatE"));
        assert!(r.contains("0.745"));
        // All data lines have equal width.
        let widths: Vec<usize> = r.lines().skip(1).map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{r}");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.row(&["only".to_string()]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn rejects_long_rows() {
        let mut t = Table::new("", &["a"]);
        t.row(&["x".to_string(), "y".to_string()]);
    }
}
