//! Validation-accuracy threshold selection (§4.2 of the paper).
//!
//! A triple is classified correct when its plausibility score
//! `f_a(t,v)` exceeds θ; θ is chosen to maximize classification
//! accuracy on the validation set.

/// Find `(θ, accuracy)` maximizing accuracy of the rule
/// `predict correct ⇔ score > θ` over `(score, is_correct)` pairs.
///
/// Candidate thresholds are midpoints between adjacent distinct scores
/// plus sentinels below/above all scores. Returns `(0.0, 0.0)` for an
/// empty input.
pub fn best_accuracy_threshold(pairs: &[(f32, bool)]) -> (f32, f32) {
    if pairs.is_empty() {
        return (0.0, 0.0);
    }
    // A NaN score never satisfies `score > θ`, so NaN items are
    // predicted incorrect at every threshold: they contribute a
    // constant to the accuracy and take no part in the sweep. They
    // must be excluded *before* the dedup loop below — `NaN == NaN`
    // is false, so a NaN group would never advance `i` and the sweep
    // used to hang forever.
    let nan_hits = pairs.iter().filter(|(s, c)| s.is_nan() && !*c).count();
    let n = pairs.len();
    let mut sorted: Vec<(f32, bool)> = pairs.iter().copied().filter(|(s, _)| !s.is_nan()).collect();
    if sorted.is_empty() {
        // Every score is NaN: all thresholds are equivalent.
        return (0.0, nan_hits as f32 / n as f32);
    }
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Sweep thresholds from below the minimum upward. At θ = -inf all
    // items are predicted correct; moving θ past an item flips that
    // item's prediction to incorrect.
    //
    // Hit counts are integers end to end, and a candidate wins only on
    // a strictly greater count, so ties between equal-accuracy
    // plateaus always resolve to the *lowest* θ — exactly, for any
    // input size. (The old `f32` accumulator rounded above 2^24 items
    // and compared quotients, where a rounding quirk could flip which
    // plateau "won" depending on input order.)
    let correct_total = sorted.iter().filter(|(_, c)| *c).count();
    // Start: everything (except NaN items) predicted correct.
    let mut hits = correct_total + nan_hits;
    let mut best_hits = hits;
    let mut best_theta = sorted[0].0 - 1.0;

    let mut i = 0;
    while i < sorted.len() {
        // Move θ past every item sharing this score.
        let s = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == s {
            if sorted[i].1 {
                hits -= 1; // correct item now predicted incorrect
            } else {
                hits += 1; // incorrect item now predicted incorrect
            }
            i += 1;
        }
        if hits > best_hits {
            best_hits = hits;
            best_theta = if i < sorted.len() {
                (s + sorted[i].0) / 2.0
            } else {
                s + 1.0
            };
        }
    }
    (best_theta, best_hits as f32 / n as f32)
}

/// Accuracy of `predict correct ⇔ score > θ` on `(score, is_correct)`.
pub fn accuracy_at(pairs: &[(f32, bool)], theta: f32) -> f32 {
    if pairs.is_empty() {
        return 0.0;
    }
    let hits = pairs.iter().filter(|(s, c)| (*s > theta) == *c).count();
    hits as f32 / pairs.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_data_achieves_perfect_accuracy() {
        let pairs = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let (theta, acc) = best_accuracy_threshold(&pairs);
        assert!((acc - 1.0).abs() < 1e-6);
        assert!(theta > 0.2 && theta < 0.8, "theta={theta}");
        assert!((accuracy_at(&pairs, theta) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn overlapping_data_picks_best_tradeoff() {
        // correct: 0.9 0.6 0.3 ; incorrect: 0.7 0.2 0.1
        let pairs = [
            (0.9, true),
            (0.6, true),
            (0.3, true),
            (0.7, false),
            (0.2, false),
            (0.1, false),
        ];
        let (theta, acc) = best_accuracy_threshold(&pairs);
        // θ between 0.2 and 0.3 gets 5/6 (only 0.7-incorrect wrong).
        assert!((acc - 5.0 / 6.0).abs() < 1e-6, "acc={acc}");
        assert!(theta > 0.2 && theta < 0.3, "theta={theta}");
    }

    #[test]
    fn empty_input() {
        assert_eq!(best_accuracy_threshold(&[]), (0.0, 0.0));
        assert_eq!(accuracy_at(&[], 0.0), 0.0);
    }

    #[test]
    fn all_one_class() {
        let all_correct = [(0.5, true), (0.7, true)];
        let (theta, acc) = best_accuracy_threshold(&all_correct);
        assert!((acc - 1.0).abs() < 1e-6);
        assert!(theta < 0.5); // predicts everything correct

        let all_wrong = [(0.5, false), (0.7, false)];
        let (theta2, acc2) = best_accuracy_threshold(&all_wrong);
        assert!((acc2 - 1.0).abs() < 1e-6);
        assert!(theta2 >= 0.7); // predicts everything incorrect
    }

    #[test]
    fn tied_scores_handled() {
        let pairs = [(0.5, true), (0.5, false), (0.5, true)];
        let (_, acc) = best_accuracy_threshold(&pairs);
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn nan_scores_terminate_and_count_as_predicted_incorrect() {
        // Regression: a NaN score used to wedge the dedup loop forever
        // (`NaN == NaN` is false, so `i` never advanced).
        let pairs = [
            (f32::NAN, false),
            (0.9, true),
            (0.2, false),
            (f32::NAN, true),
        ];
        let (theta, acc) = best_accuracy_threshold(&pairs);
        assert!(theta.is_finite());
        // NaN is never > θ: the NaN-incorrect item is always a hit and
        // the NaN-correct one never is; θ in (0.2, 0.9) gets the rest.
        assert!((acc - 0.75).abs() < 1e-6, "acc={acc}");
        assert!((accuracy_at(&pairs, theta) - acc).abs() < 1e-6);
    }

    #[test]
    fn all_nan_scores() {
        let (theta, acc) = best_accuracy_threshold(&[(f32::NAN, true)]);
        assert!(theta.is_finite());
        assert_eq!(acc, 0.0);

        let all_wrong = [(f32::NAN, false), (f32::NAN, false)];
        let (theta2, acc2) = best_accuracy_threshold(&all_wrong);
        assert!(theta2.is_finite());
        assert!((acc2 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equal_accuracy_plateaus_break_ties_to_lowest_threshold() {
        // Two disjoint thresholds reach the same best accuracy (3/4):
        // θ ∈ (0.1, 0.2) and θ ∈ (0.3, 0.4). The sweep must pick the
        // lower midpoint, exactly, regardless of input order.
        let base = [(0.1, false), (0.2, true), (0.3, false), (0.4, true)];
        let (theta, acc) = best_accuracy_threshold(&base);
        assert_eq!(theta, (0.1 + 0.2) / 2.0);
        assert!((acc - 0.75).abs() < 1e-6);
        // All 24 permutations return bit-identical (θ, accuracy).
        let perms = [
            [0, 1, 2, 3],
            [3, 2, 1, 0],
            [1, 3, 0, 2],
            [2, 0, 3, 1],
            [0, 2, 1, 3],
            [3, 1, 2, 0],
        ];
        for p in perms {
            let shuffled: Vec<_> = p.iter().map(|&i| base[i]).collect();
            let (t, a) = best_accuracy_threshold(&shuffled);
            assert_eq!(t.to_bits(), theta.to_bits(), "perm {p:?}");
            assert_eq!(a.to_bits(), acc.to_bits(), "perm {p:?}");
        }
    }

    #[test]
    fn accuracy_never_exceeds_reported_best() {
        let pairs = [
            (0.9, true),
            (0.4, false),
            (0.6, true),
            (0.5, false),
            (0.45, true),
        ];
        let (_, best) = best_accuracy_threshold(&pairs);
        for probe in [-1.0, 0.0, 0.42, 0.47, 0.55, 0.7, 1.0] {
            assert!(accuracy_at(&pairs, probe) <= best + 1e-6);
        }
    }
}
