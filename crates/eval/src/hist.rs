//! Fixed-range histograms (Fig. 5's confidence-score distributions).
//!
//! The lock-free [`AtomicHistogram`] used for concurrent latency
//! recording lives in `pge-obs` now (every subsystem shares it); it is
//! re-exported here so existing `pge_eval::AtomicHistogram` callers
//! keep compiling.

pub use pge_obs::AtomicHistogram;

/// A histogram over a fixed `[lo, hi]` range with uniform bins.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// # Panics
    /// Panics unless `lo < hi` and `bins >= 1`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(lo < hi && bins >= 1, "bad histogram range/bins");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Histogram over `[0, 1]` — the confidence-score range.
    pub fn unit(bins: usize) -> Self {
        Histogram::new(0.0, 1.0, bins)
    }

    /// Add one observation; out-of-range values clamp to the edge
    /// bins (confidence scores are clamped to [0,1] anyway).
    pub fn add(&mut self, x: f32) {
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let mut b = (t * bins as f32) as usize;
        if b == bins {
            b -= 1;
        }
        self.counts[b] += 1;
        self.total += 1;
    }

    pub fn add_all(&mut self, xs: impl IntoIterator<Item = f32>) {
        for x in xs {
            self.add(x);
        }
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of mass in bins whose upper edge is ≤ `x`.
    pub fn fraction_below(&self, x: f32) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f32;
        let mut below = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            let upper = self.lo + width * (b + 1) as f32;
            if upper <= x + 1e-6 {
                below += c;
            }
        }
        below as f32 / self.total as f32
    }

    /// Render as an ASCII bar chart, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let bins = self.counts.len();
        let bin_w = (self.hi - self.lo) / bins as f32;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (b, &c) in self.counts.iter().enumerate() {
            let lo = self.lo + bin_w * b as f32;
            let bar = "#".repeat(((c as f32 / max as f32) * width as f32).round() as usize);
            out.push_str(&format!(
                "[{:>5.2},{:>5.2}) {:>7} {}\n",
                lo,
                lo + bin_w,
                c,
                bar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_totals() {
        let mut h = Histogram::unit(10);
        h.add_all([0.05, 0.05, 0.95, 0.5]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
    }

    #[test]
    fn upper_edge_lands_in_last_bin() {
        let mut h = Histogram::unit(4);
        h.add(1.0);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::unit(4);
        h.add(-5.0);
        h.add(7.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn fraction_below_midpoint() {
        let mut h = Histogram::unit(10);
        h.add_all([0.1, 0.2, 0.3, 0.9]);
        assert!((h.fraction_below(0.5) - 0.75).abs() < 1e-6);
        assert_eq!(Histogram::unit(4).fraction_below(0.5), 0.0);
    }

    #[test]
    fn render_is_stable() {
        let mut h = Histogram::unit(2);
        h.add_all([0.25, 0.25, 0.75]);
        let r = h.render(10);
        assert!(r.contains("##########"), "{r}");
        assert_eq!(r.lines().count(), 2);
    }

    #[test]
    fn single_bin_histogram_saturates_correctly() {
        let mut h = Histogram::unit(1);
        h.add_all([0.0, 0.5, 1.0, 2.0, -1.0]);
        assert_eq!(h.counts(), &[5]);
        assert!((h.fraction_below(1.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reexported_atomic_histogram_still_works() {
        // The shared implementation moved to pge-obs; the old path
        // must keep functioning for downstream callers.
        let h = AtomicHistogram::exponential(1e-4, 2.0, 4);
        h.observe(2e-4);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(2e-4));
    }

    #[test]
    #[should_panic(expected = "bad histogram")]
    fn rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
