//! Fixed-range histograms (Fig. 5's confidence-score distributions)
//! and a lock-free variant for concurrent latency recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram over a fixed `[lo, hi]` range with uniform bins.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// # Panics
    /// Panics unless `lo < hi` and `bins >= 1`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(lo < hi && bins >= 1, "bad histogram range/bins");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Histogram over `[0, 1]` — the confidence-score range.
    pub fn unit(bins: usize) -> Self {
        Histogram::new(0.0, 1.0, bins)
    }

    /// Add one observation; out-of-range values clamp to the edge
    /// bins (confidence scores are clamped to [0,1] anyway).
    pub fn add(&mut self, x: f32) {
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let mut b = (t * bins as f32) as usize;
        if b == bins {
            b -= 1;
        }
        self.counts[b] += 1;
        self.total += 1;
    }

    pub fn add_all(&mut self, xs: impl IntoIterator<Item = f32>) {
        for x in xs {
            self.add(x);
        }
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of mass in bins whose upper edge is ≤ `x`.
    pub fn fraction_below(&self, x: f32) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f32;
        let mut below = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            let upper = self.lo + width * (b + 1) as f32;
            if upper <= x + 1e-6 {
                below += c;
            }
        }
        below as f32 / self.total as f32
    }

    /// Render as an ASCII bar chart, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let bins = self.counts.len();
        let bin_w = (self.hi - self.lo) / bins as f32;
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (b, &c) in self.counts.iter().enumerate() {
            let lo = self.lo + bin_w * b as f32;
            let bar = "#".repeat(((c as f32 / max as f32) * width as f32).round() as usize);
            out.push_str(&format!(
                "[{:>5.2},{:>5.2}) {:>7} {}\n",
                lo,
                lo + bin_w,
                c,
                bar
            ));
        }
        out
    }
}

/// A histogram with explicit ascending bucket upper bounds that can
/// be observed from many threads without locking — `observe` is two
/// relaxed atomic adds, so it is safe on a request hot path. Built
/// for latency tracking (Prometheus-style cumulative `le` buckets),
/// but the value domain is arbitrary.
#[derive(Debug)]
pub struct AtomicHistogram {
    /// Ascending upper bounds; values above the last bound land in an
    /// implicit `+Inf` bucket.
    bounds: Vec<f64>,
    /// One counter per bound plus the `+Inf` overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observations in fixed-point microunits (value × 1e6),
    /// so the hot path needs no float CAS loop.
    sum_micro: AtomicU64,
}

impl AtomicHistogram {
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite and strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            bounds,
            counts,
            sum_micro: AtomicU64::new(0),
        }
    }

    /// Geometric bucket ladder `start, start*factor, ...` — the usual
    /// shape for latencies, where tail resolution matters at every
    /// scale.
    ///
    /// # Panics
    /// Panics unless `start > 0`, `factor > 1`, and `n >= 1`.
    pub fn exponential(start: f64, factor: f64, n: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && n >= 1, "bad bucket ladder");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        AtomicHistogram::new(bounds)
    }

    /// Record one observation. Negative values count toward the first
    /// bucket (and clamp to 0 in the sum).
    pub fn observe(&self, x: f64) {
        let ix = self.bounds.partition_point(|b| *b < x);
        self.counts[ix].fetch_add(1, Ordering::Relaxed);
        let micro = (x.max(0.0) * 1e6) as u64;
        self.sum_micro.fetch_add(micro, Ordering::Relaxed);
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the `+Inf` bucket). A racing
    /// `observe` may or may not be included — each counter is read
    /// atomically but the vector is not a consistent snapshot.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observations (microunit resolution).
    pub fn sum(&self) -> f64 {
        self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0 <= q <= 1`), i.e. a conservative estimate in bucket
    /// resolution. Observations beyond the last bound report the last
    /// bound. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (ix, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bounds[ix.min(self.bounds.len() - 1)]);
            }
        }
        Some(self.bounds[self.bounds.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_totals() {
        let mut h = Histogram::unit(10);
        h.add_all([0.05, 0.05, 0.95, 0.5]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
    }

    #[test]
    fn upper_edge_lands_in_last_bin() {
        let mut h = Histogram::unit(4);
        h.add(1.0);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::unit(4);
        h.add(-5.0);
        h.add(7.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn fraction_below_midpoint() {
        let mut h = Histogram::unit(10);
        h.add_all([0.1, 0.2, 0.3, 0.9]);
        assert!((h.fraction_below(0.5) - 0.75).abs() < 1e-6);
        assert_eq!(Histogram::unit(4).fraction_below(0.5), 0.0);
    }

    #[test]
    fn render_is_stable() {
        let mut h = Histogram::unit(2);
        h.add_all([0.25, 0.25, 0.75]);
        let r = h.render(10);
        assert!(r.contains("##########"), "{r}");
        assert_eq!(r.lines().count(), 2);
    }

    #[test]
    fn atomic_buckets_and_overflow() {
        let h = AtomicHistogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.observe(x);
        }
        // partition_point(< x): exact bound values land in their own
        // bucket (le semantics).
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 556.5).abs() < 1e-3);
    }

    #[test]
    fn atomic_quantiles() {
        let h = AtomicHistogram::exponential(1.0, 2.0, 8); // 1,2,4,...,128
        for _ in 0..90 {
            h.observe(1.5); // bucket le=2
        }
        for _ in 0..10 {
            h.observe(100.0); // bucket le=128
        }
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.99), Some(128.0));
        assert_eq!(
            AtomicHistogram::exponential(1.0, 2.0, 3).quantile(0.5),
            None
        );
    }

    #[test]
    fn atomic_observe_is_thread_safe() {
        let h = AtomicHistogram::exponential(1e-6, 4.0, 12);
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn values_beyond_last_bound_report_last_bound() {
        let h = AtomicHistogram::new(vec![1.0]);
        h.observe(99.0);
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "bad histogram")]
    fn rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
