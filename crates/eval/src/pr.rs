//! Precision–recall curves, PR AUC, and R@P.

/// One scored example. `score` ranks retrieval confidence (higher =
/// more likely positive); `positive` is ground truth.
///
/// For error detection, *positive* means the triple is incorrect, and
/// callers pass `score = -f_a(t, v)` (low plausibility ⇒ likely error).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scored {
    pub score: f32,
    pub positive: bool,
}

impl Scored {
    pub fn new(score: f32, positive: bool) -> Self {
        Scored { score, positive }
    }
}

/// Sort descending by score with a deterministic tiebreak.
fn sorted(items: &[Scored]) -> Vec<Scored> {
    let mut v = items.to_vec();
    // Ties: put negatives first so the curve is the pessimistic one —
    // metrics then never depend on input order.
    v.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.positive.cmp(&b.positive))
    });
    v
}

/// The precision–recall curve as `(recall, precision)` points, one per
/// rank position. Empty when there are no positives.
pub fn pr_curve(items: &[Scored]) -> Vec<(f32, f32)> {
    let total_pos = items.iter().filter(|s| s.positive).count();
    if total_pos == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(items.len());
    let mut tp = 0usize;
    for (k, s) in sorted(items).into_iter().enumerate() {
        if s.positive {
            tp += 1;
        }
        out.push((tp as f32 / total_pos as f32, tp as f32 / (k + 1) as f32));
    }
    out
}

/// PR AUC computed as average precision (step-wise integration of the
/// PR curve): `AP = Σ_k P(k) · ΔR(k)`. Returns 0 when there are no
/// positives.
pub fn average_precision(items: &[Scored]) -> f32 {
    let total_pos = items.iter().filter(|s| s.positive).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut ap = 0.0;
    let mut tp = 0usize;
    for (k, s) in sorted(items).into_iter().enumerate() {
        if s.positive {
            tp += 1;
            ap += tp as f32 / (k + 1) as f32;
        }
    }
    ap / total_pos as f32
}

/// R@P=x: the maximum recall achievable at precision ≥ `min_precision`
/// anywhere on the PR curve. 0 when no operating point qualifies.
pub fn recall_at_precision(items: &[Scored], min_precision: f32) -> f32 {
    pr_curve(items)
        .into_iter()
        .filter(|(_, p)| *p >= min_precision)
        .map(|(r, _)| r)
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(pairs: &[(f32, bool)]) -> Vec<Scored> {
        pairs.iter().map(|&(s, p)| Scored::new(s, p)).collect()
    }

    #[test]
    fn perfect_ranking_has_ap_one() {
        let it = items(&[(0.9, true), (0.8, true), (0.2, false), (0.1, false)]);
        assert!((average_precision(&it) - 1.0).abs() < 1e-6);
        assert!((recall_at_precision(&it, 0.9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverted_ranking_is_poor() {
        let it = items(&[(0.9, false), (0.8, false), (0.2, true), (0.1, true)]);
        // AP = (1/3 + 2/4)/2 = 0.41667
        assert!((average_precision(&it) - 5.0 / 12.0).abs() < 1e-5);
        assert_eq!(recall_at_precision(&it, 0.9), 0.0);
    }

    #[test]
    fn known_mixed_example() {
        // Ranked: +, -, +, - ⇒ AP = (1/1 + 2/3)/2 = 5/6.
        let it = items(&[(0.9, true), (0.7, false), (0.5, true), (0.3, false)]);
        assert!((average_precision(&it) - 5.0 / 6.0).abs() < 1e-5);
        // Precision at full recall is 2/3 ⇒ R@P=0.7 only covers rank 1.
        assert!((recall_at_precision(&it, 0.7) - 0.5).abs() < 1e-6);
        assert!((recall_at_precision(&it, 0.6) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_positives_yields_zero_and_empty_curve() {
        let it = items(&[(0.9, false), (0.1, false)]);
        assert_eq!(average_precision(&it), 0.0);
        assert!(pr_curve(&it).is_empty());
        assert_eq!(recall_at_precision(&it, 0.5), 0.0);
    }

    #[test]
    fn all_positives_yields_one() {
        let it = items(&[(0.9, true), (0.1, true)]);
        assert!((average_precision(&it) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn curve_recall_is_monotone() {
        let it = items(&[
            (0.95, true),
            (0.8, false),
            (0.7, true),
            (0.6, true),
            (0.5, false),
            (0.2, true),
        ]);
        let curve = pr_curve(&it);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        assert!((curve.last().unwrap().0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn order_independent() {
        let a = items(&[(0.9, true), (0.7, false), (0.5, true), (0.3, false)]);
        let mut b = a.clone();
        b.reverse();
        assert_eq!(average_precision(&a), average_precision(&b));
    }

    #[test]
    fn ap_bounded_by_one() {
        let it = items(&[(0.5, true), (0.5, false), (0.5, true)]);
        let ap = average_precision(&it);
        assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    fn tie_handling_is_pessimistic() {
        // All scores equal: negatives sort first, so AP is the
        // worst-case ranking: (1/2 + 2/3)... with one negative first:
        // order -, +, + ⇒ AP = (1/2 + 2/3)/2 = 7/12.
        let it = items(&[(0.5, true), (0.5, false), (0.5, true)]);
        assert!((average_precision(&it) - 7.0 / 12.0).abs() < 1e-5);
    }
}
