//! Precision–recall curves, PR AUC, and R@P.

/// One scored example. `score` ranks retrieval confidence (higher =
/// more likely positive); `positive` is ground truth.
///
/// For error detection, *positive* means the triple is incorrect, and
/// callers pass `score = -f_a(t, v)` (low plausibility ⇒ likely error).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scored {
    pub score: f32,
    pub positive: bool,
}

impl Scored {
    pub fn new(score: f32, positive: bool) -> Self {
        Scored { score, positive }
    }
}

/// Sort descending by score. Relative order *within* a tie block is
/// irrelevant: every consumer below collapses a tie block into one
/// operating point, so no per-item tiebreak is needed (or wanted — a
/// tiebreak on the label is exactly what made tied metrics depend on
/// hidden ranking choices).
fn sorted(items: &[Scored]) -> Vec<Scored> {
    let mut v = items.to_vec();
    v.sort_by(|a, b| b.score.total_cmp(&a.score));
    v
}

/// Walk the descending-sorted items one *distinct score* at a time,
/// calling `f(tie_positives, tie_len)` per block. A classifier
/// thresholded on the score can only operate at block boundaries —
/// it has no way to accept half of an equal-scored block — so these
/// are the only real operating points, and any per-item walk through
/// a block fabricates points that depend on sort order.
fn for_each_tie_block(sorted: &[Scored], mut f: impl FnMut(usize, usize)) {
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && sorted[j].score.total_cmp(&sorted[i].score).is_eq() {
            j += 1;
        }
        let pos = sorted[i..j].iter().filter(|s| s.positive).count();
        f(pos, j - i);
        i = j;
    }
}

/// The precision–recall curve as `(recall, precision)` points, one per
/// *distinct score* (equal-scored items form a single operating
/// point, so the curve is invariant under permutation of the input).
/// Empty when there are no positives.
pub fn pr_curve(items: &[Scored]) -> Vec<(f32, f32)> {
    let total_pos = items.iter().filter(|s| s.positive).count();
    if total_pos == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    let (mut tp, mut n) = (0usize, 0usize);
    for_each_tie_block(&sorted(items), |pos, len| {
        tp += pos;
        n += len;
        out.push((tp as f32 / total_pos as f32, tp as f32 / n as f32));
    });
    out
}

/// PR AUC computed as average precision (step-wise integration of the
/// PR curve): `AP = Σ_g ΔR(g) · P(g)` over tie groups `g`, where each
/// group of equal-scored items contributes its full recall increment
/// at the group's end-precision. With all-distinct scores this is the
/// classic `Σ_k P(k) · ΔR(k)`; with ties it is the unique
/// permutation-invariant value. Returns 0 when there are no positives.
pub fn average_precision(items: &[Scored]) -> f32 {
    let total_pos = items.iter().filter(|s| s.positive).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut ap = 0.0f32;
    let (mut tp, mut n) = (0usize, 0usize);
    for_each_tie_block(&sorted(items), |pos, len| {
        tp += pos;
        n += len;
        if pos > 0 {
            ap += pos as f32 * (tp as f32 / n as f32);
        }
    });
    ap / total_pos as f32
}

/// R@P=x: the maximum recall achievable at precision ≥ `min_precision`
/// anywhere on the PR curve. 0 when no operating point qualifies.
pub fn recall_at_precision(items: &[Scored], min_precision: f32) -> f32 {
    pr_curve(items)
        .into_iter()
        .filter(|(_, p)| *p >= min_precision)
        .map(|(r, _)| r)
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(pairs: &[(f32, bool)]) -> Vec<Scored> {
        pairs.iter().map(|&(s, p)| Scored::new(s, p)).collect()
    }

    #[test]
    fn perfect_ranking_has_ap_one() {
        let it = items(&[(0.9, true), (0.8, true), (0.2, false), (0.1, false)]);
        assert!((average_precision(&it) - 1.0).abs() < 1e-6);
        assert!((recall_at_precision(&it, 0.9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverted_ranking_is_poor() {
        let it = items(&[(0.9, false), (0.8, false), (0.2, true), (0.1, true)]);
        // AP = (1/3 + 2/4)/2 = 0.41667
        assert!((average_precision(&it) - 5.0 / 12.0).abs() < 1e-5);
        assert_eq!(recall_at_precision(&it, 0.9), 0.0);
    }

    #[test]
    fn known_mixed_example() {
        // Ranked: +, -, +, - ⇒ AP = (1/1 + 2/3)/2 = 5/6.
        let it = items(&[(0.9, true), (0.7, false), (0.5, true), (0.3, false)]);
        assert!((average_precision(&it) - 5.0 / 6.0).abs() < 1e-5);
        // Precision at full recall is 2/3 ⇒ R@P=0.7 only covers rank 1.
        assert!((recall_at_precision(&it, 0.7) - 0.5).abs() < 1e-6);
        assert!((recall_at_precision(&it, 0.6) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_positives_yields_zero_and_empty_curve() {
        let it = items(&[(0.9, false), (0.1, false)]);
        assert_eq!(average_precision(&it), 0.0);
        assert!(pr_curve(&it).is_empty());
        assert_eq!(recall_at_precision(&it, 0.5), 0.0);
    }

    #[test]
    fn all_positives_yields_one() {
        let it = items(&[(0.9, true), (0.1, true)]);
        assert!((average_precision(&it) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn curve_recall_is_monotone() {
        let it = items(&[
            (0.95, true),
            (0.8, false),
            (0.7, true),
            (0.6, true),
            (0.5, false),
            (0.2, true),
        ]);
        let curve = pr_curve(&it);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        assert!((curve.last().unwrap().0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn order_independent() {
        let a = items(&[(0.9, true), (0.7, false), (0.5, true), (0.3, false)]);
        let mut b = a.clone();
        b.reverse();
        assert_eq!(average_precision(&a), average_precision(&b));
    }

    #[test]
    fn ap_bounded_by_one() {
        let it = items(&[(0.5, true), (0.5, false), (0.5, true)]);
        let ap = average_precision(&it);
        assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    fn tied_scores_form_one_operating_point() {
        // All three scores equal: a threshold accepts all or none, so
        // the curve has exactly one point, (R=1, P=2/3), and
        // AP = ΔR · P = 1 · 2/3 — not a value that depends on how the
        // sort happened to order the tied items.
        let it = items(&[(0.5, true), (0.5, false), (0.5, true)]);
        let curve = pr_curve(&it);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].0 - 1.0).abs() < 1e-6);
        assert!((curve[0].1 - 2.0 / 3.0).abs() < 1e-6);
        assert!((average_precision(&it) - 2.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn metrics_invariant_under_permutation_of_tied_inputs() {
        // Duplicated scores with mixed labels: every permutation of
        // the input must yield bit-identical AP, curve, and R@P.
        let base = items(&[
            (0.9, true),
            (0.7, true),
            (0.7, false),
            (0.7, false),
            (0.4, true),
            (0.4, false),
        ]);
        let reference_ap = average_precision(&base).to_bits();
        let reference_curve = pr_curve(&base);
        let reference_rp = recall_at_precision(&base, 0.6).to_bits();

        // Heap's algorithm: all 720 permutations of the six items.
        fn permutations(v: &mut Vec<Scored>, k: usize, out: &mut Vec<Vec<Scored>>) {
            if k <= 1 {
                out.push(v.clone());
                return;
            }
            for i in 0..k {
                permutations(v, k - 1, out);
                if k.is_multiple_of(2) {
                    v.swap(i, k - 1);
                } else {
                    v.swap(0, k - 1);
                }
            }
        }
        let mut all = Vec::new();
        permutations(&mut base.clone(), base.len(), &mut all);
        assert_eq!(all.len(), 720);
        for perm in &all {
            assert_eq!(average_precision(perm).to_bits(), reference_ap);
            assert_eq!(pr_curve(perm), reference_curve);
            assert_eq!(recall_at_precision(perm, 0.6).to_bits(), reference_rp);
        }
    }

    #[test]
    fn grouped_curve_has_one_point_per_distinct_score() {
        let it = items(&[
            (0.9, true),
            (0.7, true),
            (0.7, false),
            (0.4, false),
            (0.4, true),
        ]);
        let curve = pr_curve(&it);
        // Three distinct scores → three operating points.
        assert_eq!(curve.len(), 3);
        // Block ends: (1/3, 1/1), (2/3, 2/3), (3/3, 3/5).
        assert_eq!(curve[0], (1.0 / 3.0, 1.0));
        assert_eq!(curve[1], (2.0 / 3.0, 2.0 / 3.0));
        assert_eq!(curve[2], (1.0, 3.0 / 5.0));
        // AP = (1·1 + 1·(2/3) + 1·(3/5)) / 3.
        let expect = (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 3.0;
        assert!((average_precision(&it) - expect).abs() < 1e-6);
    }
}
