//! Property-based tests for the evaluation metrics.

use pge_eval::{
    accuracy_at, average_precision, best_accuracy_threshold, pr_curve, recall_at_precision,
    Histogram, Scored,
};
use proptest::prelude::*;

/// Scores that occasionally go NaN, as a diverged model produces.
fn arb_maybe_nan_score() -> impl Strategy<Value = f32> {
    (0u32..5, -100.0f32..100.0).prop_map(|(k, s)| if k == 0 { f32::NAN } else { s })
}

fn arb_scored() -> impl Strategy<Value = Vec<Scored>> {
    prop::collection::vec((-100.0f32..100.0, any::<bool>()), 1..200)
        .prop_map(|v| v.into_iter().map(|(s, p)| Scored::new(s, p)).collect())
}

proptest! {
    #[test]
    fn ap_is_bounded(items in arb_scored()) {
        let ap = average_precision(&items);
        prop_assert!((0.0..=1.0).contains(&ap), "ap={ap}");
    }

    #[test]
    fn ap_of_perfect_ranking_is_one(n_pos in 1usize..50, n_neg in 0usize..50) {
        let mut items = Vec::new();
        for i in 0..n_pos {
            items.push(Scored::new(1000.0 + i as f32, true));
        }
        for i in 0..n_neg {
            items.push(Scored::new(-(i as f32), false));
        }
        prop_assert!((average_precision(&items) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn recall_at_precision_monotone_in_p(items in arb_scored()) {
        let r_low = recall_at_precision(&items, 0.3);
        let r_mid = recall_at_precision(&items, 0.6);
        let r_high = recall_at_precision(&items, 0.9);
        prop_assert!(r_low + 1e-6 >= r_mid);
        prop_assert!(r_mid + 1e-6 >= r_high);
    }

    #[test]
    fn curve_recall_monotone_and_ends_at_one(items in arb_scored()) {
        let curve = pr_curve(&items);
        prop_assume!(!curve.is_empty());
        for w in curve.windows(2) {
            prop_assert!(w[1].0 + 1e-6 >= w[0].0);
        }
        prop_assert!((curve.last().unwrap().0 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ap_invariant_to_score_shift_and_scale(
        items in arb_scored(),
        shift in -50.0f32..50.0,
        scale in 0.1f32..10.0,
    ) {
        let transformed: Vec<Scored> = items
            .iter()
            .map(|s| Scored::new(s.score * scale + shift, s.positive))
            .collect();
        let a = average_precision(&items);
        let b = average_precision(&transformed);
        prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }

    #[test]
    fn best_threshold_beats_majority(pairs in prop::collection::vec((-10.0f32..10.0, any::<bool>()), 1..100)) {
        let (_, acc) = best_accuracy_threshold(&pairs);
        let correct = pairs.iter().filter(|(_, c)| *c).count() as f32 / pairs.len() as f32;
        let majority = correct.max(1.0 - correct);
        prop_assert!(acc + 1e-6 >= majority, "acc {acc} < majority {majority}");
        prop_assert!(acc <= 1.0 + 1e-6);
    }

    #[test]
    fn best_threshold_survives_nan_scores(
        pairs in prop::collection::vec((arb_maybe_nan_score(), any::<bool>()), 1..100)
    ) {
        // Regression: any NaN score used to hang the sweep forever.
        let (theta, acc) = best_accuracy_threshold(&pairs);
        prop_assert!(theta.is_finite(), "theta={theta}");
        prop_assert!((0.0..=1.0).contains(&acc), "acc={acc}");
        // The reported accuracy is attained at θ and bounds any probe.
        prop_assert!((accuracy_at(&pairs, theta) - acc).abs() < 1e-5);
        for probe in [-200.0, 0.0, 200.0] {
            prop_assert!(accuracy_at(&pairs, probe) <= acc + 1e-6);
        }
    }

    #[test]
    fn histogram_total_matches_input(xs in prop::collection::vec(-2.0f32..3.0, 0..200)) {
        let mut h = Histogram::unit(7);
        h.add_all(xs.iter().copied());
        prop_assert_eq!(h.total(), xs.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
    }

    #[test]
    fn histogram_fraction_below_is_cdf_like(xs in prop::collection::vec(0.0f32..1.0, 1..100)) {
        let mut h = Histogram::unit(10);
        h.add_all(xs.iter().copied());
        let f3 = h.fraction_below(0.3);
        let f7 = h.fraction_below(0.7);
        prop_assert!(f3 <= f7 + 1e-6);
        prop_assert!((0.0..=1.0).contains(&f3));
        prop_assert!((h.fraction_below(1.0) - 1.0).abs() < 1e-6);
    }
}
