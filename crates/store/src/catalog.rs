//! PGECAT01: a streaming, checksummed binary catalog of raw triples.
//!
//! Paper-scale datagen (750k products, ~5M triples) cannot hold the
//! catalog in memory, and TSV round-trips every field through UTF-8
//! line parsing on the hot path. PGECAT01 is the compact alternative:
//! a 64-byte header followed by length-prefixed records,
//!
//! ```text
//! header (little-endian):
//!   0..8    magic  "PGECAT01"
//!   8..12   u32    version (1)
//!   12..16  u32    reserved, zero
//!   16..24  u64    generator seed (provenance; catalogs are seeded
//!                  and reproducible byte for byte)
//!   24..32  u64    product count
//!   32..40  u64    triple count
//!   40..48  u64    body length in bytes
//!   48..52  u32    CRC-32 of the body
//!   52..56  u32    CRC-32 of header bytes 0..52
//!   56..64  zero
//! record:
//!   u16 title_len, u16 attr_len, u16 value_len, then the raw UTF-8
//!   bytes of title, attribute and value
//! ```
//!
//! The writer streams records through a [`pge_tensor::Crc32`] and
//! patches the header on [`CatalogWriter::finish`] — the commit
//! point, exactly like the PGEBIN02 writer. The reader verifies the
//! whole body CRC at open (a tampered or truncated blob is rejected
//! with a typed error before any record is served) and then iterates
//! records from any byte offset, which is what lets a bulk scan
//! resume mid-catalog.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pge_tensor::Crc32;

use crate::StoreError;

/// Magic bytes opening every PGECAT01 file.
pub const CAT_MAGIC: &[u8; 8] = b"PGECAT01";
const CAT_VERSION: u32 = 1;
const CAT_HEADER_LEN: u64 = 64;

/// Counts and checksums reported by a finished write.
#[derive(Clone, Copy, Debug)]
pub struct CatalogSummary {
    pub products: u64,
    pub triples: u64,
    pub body_len: u64,
    pub body_crc: u32,
}

/// Streaming PGECAT01 writer.
pub struct CatalogWriter {
    file: BufWriter<File>,
    seed: u64,
    crc: Crc32,
    body_len: u64,
    products: u64,
    triples: u64,
}

impl CatalogWriter {
    /// Start a new catalog at `path` (truncating).
    pub fn create(path: &Path, seed: u64) -> io::Result<CatalogWriter> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&[0u8; CAT_HEADER_LEN as usize])?;
        Ok(CatalogWriter {
            file,
            seed,
            crc: Crc32::new(),
            body_len: 0,
            products: 0,
            triples: 0,
        })
    }

    /// Count one product. (Products are implicit in the triple stream
    /// — the header count is provenance, not structure.)
    pub fn note_product(&mut self) {
        self.products += 1;
    }

    /// Append one `(title, attribute, value)` triple.
    ///
    /// Fields must be tab- and newline-free (scan output embeds them
    /// in TSV lines verbatim) and under 64 KiB each.
    pub fn add_triple(&mut self, title: &str, attr: &str, value: &str) -> io::Result<()> {
        for (what, s) in [("title", title), ("attribute", attr), ("value", value)] {
            if s.len() > u16::MAX as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{what} exceeds 64 KiB"),
                ));
            }
            if s.bytes().any(|b| b == b'\t' || b == b'\n' || b == b'\r') {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{what} contains a tab or newline"),
                ));
            }
        }
        let mut head = [0u8; 6];
        head[0..2].copy_from_slice(&(title.len() as u16).to_le_bytes());
        head[2..4].copy_from_slice(&(attr.len() as u16).to_le_bytes());
        head[4..6].copy_from_slice(&(value.len() as u16).to_le_bytes());
        for part in [
            &head[..],
            title.as_bytes(),
            attr.as_bytes(),
            value.as_bytes(),
        ] {
            self.crc.update(part);
            self.body_len += part.len() as u64;
            self.file.write_all(part)?;
        }
        self.triples += 1;
        Ok(())
    }

    /// Seal the catalog: write the header and flush. Not valid until
    /// this returns `Ok`.
    pub fn finish(mut self) -> io::Result<CatalogSummary> {
        let body_crc = self.crc.finish();
        let mut header = [0u8; CAT_HEADER_LEN as usize];
        header[0..8].copy_from_slice(CAT_MAGIC);
        header[8..12].copy_from_slice(&CAT_VERSION.to_le_bytes());
        header[16..24].copy_from_slice(&self.seed.to_le_bytes());
        header[24..32].copy_from_slice(&self.products.to_le_bytes());
        header[32..40].copy_from_slice(&self.triples.to_le_bytes());
        header[40..48].copy_from_slice(&self.body_len.to_le_bytes());
        header[48..52].copy_from_slice(&body_crc.to_le_bytes());
        let hcrc = pge_tensor::crc32(&header[0..52]);
        header[52..56].copy_from_slice(&hcrc.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(CatalogSummary {
            products: self.products,
            triples: self.triples,
            body_len: self.body_len,
            body_crc,
        })
    }
}

/// An opened, fully-verified PGECAT01 catalog.
#[derive(Clone, Debug)]
pub struct CatalogReader {
    path: PathBuf,
    seed: u64,
    products: u64,
    triples: u64,
    body_len: u64,
}

/// One decoded catalog record, carrying the same position coordinates
/// as a TSV [`RawTriple`] (1-based record number plus the absolute
/// byte offset of the record) so scan checkpoints work identically
/// over both input formats.
///
/// [`RawTriple`]: https://no-link/pge-graph
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogRecord {
    pub line: u64,
    pub offset: u64,
    pub title: String,
    pub attr: String,
    pub value: String,
}

impl CatalogReader {
    /// Open a catalog, verifying the header and the full body CRC.
    ///
    /// The CRC pass streams through the file with a fixed buffer —
    /// open cost is one sequential read (page-cache warm for the
    /// scan that follows), not a resident copy.
    pub fn open(path: &Path) -> Result<CatalogReader, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < CAT_HEADER_LEN {
            return Err(StoreError::UnknownFormat { magic: [0; 8] });
        }
        let mut header = [0u8; CAT_HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if &header[0..8] != CAT_MAGIC {
            return Err(StoreError::UnknownFormat {
                magic: header[0..8].try_into().unwrap(),
            });
        }
        if crate::format::read_u32(&header, 52) != pge_tensor::crc32(&header[0..52]) {
            return Err(StoreError::Corrupt("catalog header CRC mismatch".into()));
        }
        let version = crate::format::read_u32(&header, 8);
        if version != CAT_VERSION {
            return Err(StoreError::Parse(format!(
                "unsupported PGECAT01 version {version}"
            )));
        }
        let seed = crate::format::read_u64(&header, 16);
        let products = crate::format::read_u64(&header, 24);
        let triples = crate::format::read_u64(&header, 32);
        let body_len = crate::format::read_u64(&header, 40);
        if CAT_HEADER_LEN + body_len != file_len {
            return Err(StoreError::Corrupt(format!(
                "catalog body is {} bytes on disk, header declares {body_len}",
                file_len - CAT_HEADER_LEN
            )));
        }
        let mut crc = Crc32::new();
        let mut buf = vec![0u8; 1 << 20];
        let mut left = body_len;
        while left > 0 {
            let n = (left as usize).min(buf.len());
            file.read_exact(&mut buf[..n])?;
            crc.update(&buf[..n]);
            left -= n as u64;
        }
        if crc.finish() != crate::format::read_u32(&header, 48) {
            return Err(StoreError::Corrupt(
                "catalog body CRC mismatch (tampered or corrupt)".into(),
            ));
        }
        Ok(CatalogReader {
            path: path.to_path_buf(),
            seed,
            products,
            triples,
            body_len,
        })
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn products(&self) -> u64 {
        self.products
    }

    pub fn triples(&self) -> u64 {
        self.triples
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total file length (header + body) — the scan manifest records
    /// it to pin resumes to the same input.
    pub fn file_len(&self) -> u64 {
        CAT_HEADER_LEN + self.body_len
    }

    /// Iterate records from the beginning.
    pub fn records(&self) -> io::Result<CatalogRecords> {
        self.records_from(0, CAT_HEADER_LEN)
    }

    /// Iterate records from a resume position: `lines_done` records
    /// already consumed, next record starting at absolute `offset`.
    pub fn records_from(&self, lines_done: u64, offset: u64) -> io::Result<CatalogRecords> {
        let mut file = BufReader::with_capacity(1 << 16, File::open(&self.path)?);
        file.seek(SeekFrom::Start(offset))?;
        Ok(CatalogRecords {
            file,
            offset,
            line: lines_done,
            end: CAT_HEADER_LEN + self.body_len,
        })
    }
}

/// Streaming record iterator (see [`CatalogReader::records_from`]).
pub struct CatalogRecords {
    file: BufReader<File>,
    offset: u64,
    line: u64,
    end: u64,
}

impl CatalogRecords {
    fn read_record(&mut self) -> Result<CatalogRecord, StoreError> {
        let start = self.offset;
        let mut head = [0u8; 6];
        self.file.read_exact(&mut head)?;
        let tl = u16::from_le_bytes(head[0..2].try_into().unwrap()) as usize;
        let al = u16::from_le_bytes(head[2..4].try_into().unwrap()) as usize;
        let vl = u16::from_le_bytes(head[4..6].try_into().unwrap()) as usize;
        let total = 6 + tl + al + vl;
        if start + total as u64 > self.end {
            return Err(StoreError::Corrupt(format!(
                "catalog record at offset {start} runs past the body"
            )));
        }
        let mut bytes = vec![0u8; tl + al + vl];
        self.file.read_exact(&mut bytes)?;
        let title = std::str::from_utf8(&bytes[..tl])
            .map_err(|_| StoreError::Corrupt(format!("catalog title at {start} is not UTF-8")))?
            .to_string();
        let attr = std::str::from_utf8(&bytes[tl..tl + al])
            .map_err(|_| StoreError::Corrupt(format!("catalog attr at {start} is not UTF-8")))?
            .to_string();
        let value = std::str::from_utf8(&bytes[tl + al..])
            .map_err(|_| StoreError::Corrupt(format!("catalog value at {start} is not UTF-8")))?
            .to_string();
        self.offset += total as u64;
        self.line += 1;
        Ok(CatalogRecord {
            line: self.line,
            offset: start,
            title,
            attr,
            value,
        })
    }

    /// Position of the next unread record (absolute byte offset).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Records consumed so far (counting any resume baseline).
    pub fn lines_done(&self) -> u64 {
        self.line
    }

    /// True once the body is exhausted. Uses the buffered reader's
    /// own fill state so a clean EOF is distinguished from a short
    /// record.
    fn at_end(&mut self) -> bool {
        self.offset >= self.end || matches!(self.file.fill_buf(), Ok(b) if b.is_empty())
    }
}

impl Iterator for CatalogRecords {
    type Item = Result<CatalogRecord, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.at_end() {
            return None;
        }
        Some(self.read_record())
    }
}
