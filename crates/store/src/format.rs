//! The PGEBIN02 container layout and its streaming writer.
//!
//! PGEBIN02 is a sectioned, checksummed, mmap-friendly container:
//!
//! ```text
//! offset 0, 64 bytes, little-endian throughout:
//!   0..8    magic  "PGEBIN02"
//!   8..12   u32    format version (currently 1)
//!   12..16  u32    section count
//!   16..24  u64    index offset          (section table + name strtab)
//!   24..32  u64    index length in bytes
//!   32..40  u64    total file length
//!   40..44  u32    CRC-32 of the index region
//!   44..48  u32    CRC-32 of header bytes 0..44
//!   48..64  zero padding
//! sections: each starts on a 64-byte boundary, zero-padded between
//! index:    one 48-byte entry per section, then the name string table
//! ```
//!
//! Section table entry (48 bytes):
//!
//! ```text
//!   0..4    u32  name offset (relative to strtab start)
//!   4..8    u32  name length
//!   8..9    u8   kind: 0 = opaque bytes, 1 = packed f32 LE
//!   9..12   zero padding
//!   12..20  u64  rows   (f32 sections: logical matrix shape)
//!   20..28  u64  cols
//!   28..36  u64  absolute file offset of the section payload
//!   36..44  u64  payload length in bytes
//!   44..48  u32  CRC-32 of the payload
//! ```
//!
//! The guarantees that make the format servable in place:
//! every section payload starts 64-byte aligned (so `&[u8] -> &[f32]`
//! casts are valid on any target and rows stay cache-line aligned),
//! f32 payloads are raw IEEE-754 little-endian with no framing (a row
//! is `cols * 4` contiguous bytes), and every payload carries its own
//! CRC-32 so corruption is pinned to a named section instead of a
//! whole-file failure.

use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

use pge_tensor::Crc32;

/// Magic bytes opening every PGEBIN02 file.
pub const MAGIC2: &[u8; 8] = b"PGEBIN02";
/// Current format version.
pub const VERSION: u32 = 1;
/// Section payload alignment. 64 keeps rows cache-line aligned and is
/// a multiple of `align_of::<f32>()` on every supported target.
pub const SECTION_ALIGN: u64 = 64;
/// Fixed header size.
pub const HEADER_LEN: u64 = 64;
/// Size of one section-table entry.
pub const ENTRY_LEN: usize = 48;

/// What a section payload contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionKind {
    /// Opaque bytes (string tables, indexes, embedded text headers).
    Bytes,
    /// Packed little-endian f32s, shaped `rows x cols`.
    F32,
}

impl SectionKind {
    pub(crate) fn code(self) -> u8 {
        match self {
            SectionKind::Bytes => 0,
            SectionKind::F32 => 1,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<SectionKind> {
        match c {
            0 => Some(SectionKind::Bytes),
            1 => Some(SectionKind::F32),
            _ => None,
        }
    }
}

/// One parsed section-table entry.
#[derive(Clone, Debug)]
pub struct SectionMeta {
    pub name: String,
    pub kind: SectionKind,
    pub rows: u64,
    pub cols: u64,
    pub offset: u64,
    pub len: u64,
    pub crc32: u32,
}

struct PendingSection {
    name: String,
    kind: SectionKind,
    rows: u64,
    cols: u64,
    offset: u64,
    len: u64,
    crc: Crc32,
}

/// Streaming PGEBIN02 writer.
///
/// Sections are written front to back without buffering payloads in
/// memory — a multi-hundred-MB embedding bank streams straight to
/// disk. The index and header are written by [`finish`], which is the
/// commit point: a crashed writer leaves a file whose header is all
/// zeros and is rejected by the reader as `UnknownFormat`.
///
/// [`finish`]: SnapshotWriter::finish
pub struct SnapshotWriter {
    file: io::BufWriter<File>,
    pos: u64,
    done: Vec<PendingSection>,
    open: Option<PendingSection>,
}

impl SnapshotWriter {
    /// Start a new snapshot at `path` (truncating).
    pub fn create(path: &Path) -> io::Result<SnapshotWriter> {
        let mut file = io::BufWriter::new(File::create(path)?);
        // Header placeholder; patched by finish().
        file.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(SnapshotWriter {
            file,
            pos: HEADER_LEN,
            done: Vec::new(),
            open: None,
        })
    }

    /// Begin a section. For [`SectionKind::F32`] the payload length
    /// is validated against `rows * cols * 4` at [`end_section`];
    /// byte sections may pass `rows`/`cols` of 0.
    ///
    /// [`end_section`]: SnapshotWriter::end_section
    pub fn begin_section(
        &mut self,
        name: &str,
        kind: SectionKind,
        rows: u64,
        cols: u64,
    ) -> io::Result<()> {
        assert!(self.open.is_none(), "previous section not ended");
        if self.done.iter().any(|s| s.name == name) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("duplicate section name {name:?}"),
            ));
        }
        self.pad_to_alignment()?;
        self.open = Some(PendingSection {
            name: name.to_string(),
            kind,
            rows,
            cols,
            offset: self.pos,
            len: 0,
            crc: Crc32::new(),
        });
        Ok(())
    }

    /// Append payload bytes to the open section.
    pub fn write(&mut self, bytes: &[u8]) -> io::Result<()> {
        let s = self.open.as_mut().expect("no open section");
        s.crc.update(bytes);
        s.len += bytes.len() as u64;
        self.pos += bytes.len() as u64;
        self.file.write_all(bytes)
    }

    /// Append f32s to the open section as packed little-endian bytes.
    pub fn write_f32s(&mut self, vals: &[f32]) -> io::Result<()> {
        // Chunked through a small stack buffer so a huge row set never
        // needs a second in-memory copy.
        let mut buf = [0u8; 4096];
        for chunk in vals.chunks(buf.len() / 4) {
            let n = chunk.len() * 4;
            for (i, v) in chunk.iter().enumerate() {
                buf[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
            self.write(&buf[..n])?;
        }
        Ok(())
    }

    /// Close the open section, sealing its CRC.
    pub fn end_section(&mut self) -> io::Result<()> {
        let s = self.open.take().expect("no open section");
        if s.kind == SectionKind::F32 && s.len != s.rows * s.cols * 4 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "f32 section {:?}: wrote {} bytes, shape {}x{} needs {}",
                    s.name,
                    s.len,
                    s.rows,
                    s.cols,
                    s.rows * s.cols * 4
                ),
            ));
        }
        self.done.push(s);
        Ok(())
    }

    /// Convenience: a whole byte section in one call.
    pub fn add_bytes(&mut self, name: &str, data: &[u8]) -> io::Result<()> {
        self.begin_section(name, SectionKind::Bytes, 0, 0)?;
        self.write(data)?;
        self.end_section()
    }

    /// Convenience: a whole f32 section in one call.
    pub fn add_f32s(&mut self, name: &str, rows: u64, cols: u64, vals: &[f32]) -> io::Result<()> {
        self.begin_section(name, SectionKind::F32, rows, cols)?;
        self.write_f32s(vals)?;
        self.end_section()
    }

    /// Write the index, patch the header, and flush. The snapshot is
    /// not valid until this returns `Ok`.
    pub fn finish(mut self) -> io::Result<()> {
        assert!(self.open.is_none(), "open section at finish");
        self.pad_to_alignment()?;
        let index_off = self.pos;

        // Section table, then the name string table.
        let mut strtab: Vec<u8> = Vec::new();
        let mut index: Vec<u8> = Vec::with_capacity(self.done.len() * ENTRY_LEN);
        for s in &self.done {
            let name_off = strtab.len() as u32;
            strtab.extend_from_slice(s.name.as_bytes());
            index.extend_from_slice(&name_off.to_le_bytes());
            index.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
            index.push(s.kind.code());
            index.extend_from_slice(&[0u8; 3]);
            index.extend_from_slice(&s.rows.to_le_bytes());
            index.extend_from_slice(&s.cols.to_le_bytes());
            index.extend_from_slice(&s.offset.to_le_bytes());
            index.extend_from_slice(&s.len.to_le_bytes());
            index.extend_from_slice(&s.crc.finish().to_le_bytes());
        }
        index.extend_from_slice(&strtab);
        self.file.write_all(&index)?;
        let file_len = index_off + index.len() as u64;

        let mut header = [0u8; HEADER_LEN as usize];
        header[0..8].copy_from_slice(MAGIC2);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(self.done.len() as u32).to_le_bytes());
        header[16..24].copy_from_slice(&index_off.to_le_bytes());
        header[24..32].copy_from_slice(&(index.len() as u64).to_le_bytes());
        header[32..40].copy_from_slice(&file_len.to_le_bytes());
        header[40..44].copy_from_slice(&pge_tensor::crc32(&index).to_le_bytes());
        let hcrc = pge_tensor::crc32(&header[0..44]);
        header[44..48].copy_from_slice(&hcrc.to_le_bytes());

        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.flush()?;
        self.file.get_ref().sync_all()
    }

    fn pad_to_alignment(&mut self) -> io::Result<()> {
        let rem = self.pos % SECTION_ALIGN;
        if rem != 0 {
            let pad = (SECTION_ALIGN - rem) as usize;
            self.file.write_all(&[0u8; SECTION_ALIGN as usize][..pad])?;
            self.pos += pad as u64;
        }
        Ok(())
    }
}

pub(crate) fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

pub(crate) fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}
