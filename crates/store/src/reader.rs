//! Opening and serving PGEBIN02 snapshots.
//!
//! [`Snapshot::open`] validates the whole file up front — header CRC,
//! index CRC, and every section CRC — then serves section payloads as
//! borrowed slices for the life of the snapshot. Crucially, the
//! validation pass streams through the *file descriptor* with a small
//! buffer rather than touching the mapping: reading through `read(2)`
//! warms the kernel page cache without growing this process's
//! resident set, so opening a 200 MB snapshot costs kilobytes of RSS
//! and later row accesses fault pages in on demand.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::format::{
    read_u32, read_u64, SectionKind, SectionMeta, ENTRY_LEN, HEADER_LEN, MAGIC2, SECTION_ALIGN,
    VERSION,
};
use crate::mmap::{FileBytes, Mmap, MmapMode};
use crate::StoreError;

/// A validated, open PGEBIN02 snapshot.
pub struct Snapshot {
    bytes: FileBytes,
    sections: Vec<SectionMeta>,
    path: PathBuf,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("path", &self.path)
            .field("sections", &self.sections.len())
            .field("mapped", &self.bytes.is_mapped())
            .finish()
    }
}

/// A borrowed view of one section's payload.
#[derive(Clone, Copy)]
pub struct Section<'a> {
    pub meta: &'a SectionMeta,
    pub bytes: &'a [u8],
}

impl<'a> Section<'a> {
    /// The payload as packed f32s. Valid only for
    /// [`SectionKind::F32`] sections; alignment is guaranteed by the
    /// 64-byte section alignment plus the aligned heap fallback.
    pub fn as_f32s(&self) -> Result<&'a [f32], StoreError> {
        if self.meta.kind != SectionKind::F32 {
            return Err(StoreError::WrongKind {
                name: self.meta.name.clone(),
            });
        }
        let ptr = self.bytes.as_ptr();
        // Both backings give at least 8-byte base alignment and every
        // payload starts on a 64-byte file offset, but keep the check:
        // a violation here must never become UB.
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<f32>())
            || !self.bytes.len().is_multiple_of(4)
        {
            return Err(StoreError::Corrupt(format!(
                "section {:?} payload is not f32-aligned",
                self.meta.name
            )));
        }
        // Safety: checked alignment and length; f32 has no invalid
        // bit patterns; the target is little-endian (asserted at
        // compile time in lib.rs) so the on-disk LE bytes are the
        // in-memory representation.
        Ok(unsafe { std::slice::from_raw_parts(ptr as *const f32, self.bytes.len() / 4) })
    }
}

impl Snapshot {
    /// Open and fully validate a snapshot.
    pub fn open(path: &Path, mode: MmapMode) -> Result<Snapshot, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();

        let mut header = [0u8; HEADER_LEN as usize];
        if file_len < HEADER_LEN {
            let mut found = [0u8; 8];
            let n = file.read(&mut found)?;
            return Err(StoreError::UnknownFormat {
                magic: if n >= 8 { found } else { [0; 8] },
            });
        }
        file.read_exact(&mut header)?;
        if &header[0..8] != MAGIC2 {
            return Err(StoreError::UnknownFormat {
                magic: header[0..8].try_into().unwrap(),
            });
        }
        if read_u32(&header, 44) != pge_tensor::crc32(&header[0..44]) {
            return Err(StoreError::Corrupt("header CRC mismatch".into()));
        }
        let version = read_u32(&header, 8);
        if version != VERSION {
            return Err(StoreError::Parse(format!(
                "unsupported PGEBIN02 version {version}"
            )));
        }
        let n_sections = read_u32(&header, 12) as usize;
        let index_off = read_u64(&header, 16);
        let index_len = read_u64(&header, 24);
        let declared_len = read_u64(&header, 32);
        if declared_len != file_len {
            return Err(StoreError::Corrupt(format!(
                "file is {file_len} bytes but header declares {declared_len} (truncated?)"
            )));
        }
        if index_off
            .checked_add(index_len)
            .map(|end| end > file_len)
            .unwrap_or(true)
            || index_off < HEADER_LEN
        {
            return Err(StoreError::Corrupt("index region out of bounds".into()));
        }

        // Index: read, CRC, parse.
        let mut index = vec![0u8; index_len as usize];
        file.seek(SeekFrom::Start(index_off))?;
        file.read_exact(&mut index)?;
        if pge_tensor::crc32(&index) != read_u32(&header, 40) {
            return Err(StoreError::Corrupt("index CRC mismatch".into()));
        }
        let sections = parse_index(&index, n_sections, index_off)?;

        // Per-section CRC, streamed through the fd (see module doc).
        let mut buf = vec![0u8; 1 << 20];
        for s in &sections {
            let mut crc = pge_tensor::Crc32::new();
            file.seek(SeekFrom::Start(s.offset))?;
            let mut left = s.len as usize;
            while left > 0 {
                let n = left.min(buf.len());
                file.read_exact(&mut buf[..n])?;
                crc.update(&buf[..n]);
                left -= n;
            }
            if crc.finish() != s.crc32 {
                return Err(StoreError::Corrupt(format!(
                    "section {:?} CRC mismatch",
                    s.name
                )));
            }
        }
        drop(buf);

        let bytes = match mode {
            MmapMode::Off => FileBytes::Heap(read_aligned(&mut file, file_len as usize)?),
            MmapMode::On => FileBytes::Mapped(
                Mmap::map(&file, file_len as usize).map_err(StoreError::MmapFailed)?,
            ),
            MmapMode::Auto => match Mmap::map(&file, file_len as usize) {
                Ok(m) => FileBytes::Mapped(m),
                Err(_) => FileBytes::Heap(read_aligned(&mut file, file_len as usize)?),
            },
        };
        // Snapshot access is point lookups (bank rows, param
        // sections); without this, kernel fault-around makes the
        // whole file resident on a warm page cache and the RSS bound
        // the store exists for is lost.
        bytes.advise_random(0, file_len as usize);

        Ok(Snapshot {
            bytes,
            sections,
            path: path.to_path_buf(),
        })
    }

    /// Open a snapshot from an in-memory byte buffer (always
    /// heap-backed). This is the entry point for callers that already
    /// hold the file's bytes — e.g. format-sniffing loaders with a
    /// `&[u8]` API; the validation is identical to [`Snapshot::open`].
    pub fn open_bytes(data: &[u8]) -> Result<Snapshot, StoreError> {
        if data.len() < HEADER_LEN as usize {
            let mut magic = [0u8; 8];
            let n = data.len().min(8);
            magic[..n].copy_from_slice(&data[..n]);
            return Err(StoreError::UnknownFormat {
                magic: if data.len() >= 8 { magic } else { [0; 8] },
            });
        }
        let header = &data[..HEADER_LEN as usize];
        if &header[0..8] != MAGIC2 {
            return Err(StoreError::UnknownFormat {
                magic: header[0..8].try_into().unwrap(),
            });
        }
        if read_u32(header, 44) != pge_tensor::crc32(&header[0..44]) {
            return Err(StoreError::Corrupt("header CRC mismatch".into()));
        }
        let version = read_u32(header, 8);
        if version != VERSION {
            return Err(StoreError::Parse(format!(
                "unsupported PGEBIN02 version {version}"
            )));
        }
        let n_sections = read_u32(header, 12) as usize;
        let index_off = read_u64(header, 16);
        let index_len = read_u64(header, 24);
        let declared_len = read_u64(header, 32);
        if declared_len != data.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "buffer is {} bytes but header declares {declared_len} (truncated?)",
                data.len()
            )));
        }
        let index = data
            .get(index_off as usize..(index_off + index_len) as usize)
            .filter(|_| index_off >= HEADER_LEN)
            .ok_or_else(|| StoreError::Corrupt("index region out of bounds".into()))?;
        if pge_tensor::crc32(index) != read_u32(header, 40) {
            return Err(StoreError::Corrupt("index CRC mismatch".into()));
        }
        let sections = parse_index(index, n_sections, index_off)?;
        for s in &sections {
            let payload = &data[s.offset as usize..(s.offset + s.len) as usize];
            if pge_tensor::crc32(payload) != s.crc32 {
                return Err(StoreError::Corrupt(format!(
                    "section {:?} CRC mismatch",
                    s.name
                )));
            }
        }
        let mut buf = crate::mmap::AlignedBuf::zeroed(data.len());
        buf.as_mut_slice().copy_from_slice(data);
        Ok(Snapshot {
            bytes: FileBytes::Heap(buf),
            sections,
            path: PathBuf::from("<memory>"),
        })
    }

    /// Whether rows are served from a mapping (vs a heap copy).
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// The whole file's bytes (mapped or heap-backed).
    pub fn file_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All section descriptors, in file order.
    pub fn sections(&self) -> &[SectionMeta] {
        &self.sections
    }

    /// Look up a section by name.
    pub fn get(&self, name: &str) -> Option<Section<'_>> {
        let meta = self.sections.iter().find(|s| s.name == name)?;
        let b = self.bytes.as_slice();
        Some(Section {
            meta,
            bytes: &b[meta.offset as usize..(meta.offset + meta.len) as usize],
        })
    }

    /// Look up a section that must exist.
    pub fn section(&self, name: &str) -> Result<Section<'_>, StoreError> {
        self.get(name)
            .ok_or_else(|| StoreError::MissingSection(name.to_string()))
    }

    /// Evict the resident pages of one section (no-op when heap-backed
    /// — heap copies are the caller's memory budget by choice).
    pub fn evict_section(&self, name: &str) {
        if let Some(meta) = self.sections.iter().find(|s| s.name == name) {
            self.bytes
                .advise_dontneed(meta.offset as usize, meta.len as usize);
        }
    }

    /// Evict every resident page of the mapping (no-op when
    /// heap-backed). Loaders call this after copying what they need
    /// to the heap, so the pages their sequential reads faulted in
    /// don't stay resident for the process's lifetime.
    pub fn evict_resident(&self) {
        self.bytes.advise_dontneed(0, usize::MAX);
    }
}

fn parse_index(
    index: &[u8],
    n_sections: usize,
    index_off: u64,
) -> Result<Vec<SectionMeta>, StoreError> {
    let table_len = n_sections
        .checked_mul(ENTRY_LEN)
        .ok_or_else(|| StoreError::Corrupt("section count overflow".into()))?;
    if table_len > index.len() {
        return Err(StoreError::Corrupt("section table exceeds index".into()));
    }
    let strtab = &index[table_len..];
    let mut out = Vec::with_capacity(n_sections);
    for i in 0..n_sections {
        let e = &index[i * ENTRY_LEN..(i + 1) * ENTRY_LEN];
        let name_off = read_u32(e, 0) as usize;
        let name_len = read_u32(e, 4) as usize;
        let name = strtab
            .get(name_off..name_off + name_len)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| StoreError::Corrupt(format!("bad name in section entry {i}")))?
            .to_string();
        let kind = SectionKind::from_code(e[8])
            .ok_or_else(|| StoreError::Parse(format!("section {name:?}: unknown kind {}", e[8])))?;
        let rows = read_u64(e, 12);
        let cols = read_u64(e, 20);
        let offset = read_u64(e, 28);
        let len = read_u64(e, 36);
        let crc32 = read_u32(e, 44);
        if !offset.is_multiple_of(SECTION_ALIGN) {
            return Err(StoreError::Corrupt(format!(
                "section {name:?} is not {SECTION_ALIGN}-byte aligned"
            )));
        }
        if offset
            .checked_add(len)
            .map(|end| end > index_off)
            .unwrap_or(true)
            || offset < HEADER_LEN
        {
            return Err(StoreError::Corrupt(format!(
                "section {name:?} payload out of bounds"
            )));
        }
        if kind == SectionKind::F32
            && rows
                .checked_mul(cols)
                .and_then(|c| c.checked_mul(4))
                .map(|need| need != len)
                .unwrap_or(true)
        {
            return Err(StoreError::Corrupt(format!(
                "section {name:?}: shape {rows}x{cols} disagrees with {len} bytes"
            )));
        }
        out.push(SectionMeta {
            name,
            kind,
            rows,
            cols,
            offset,
            len,
            crc32,
        });
    }
    Ok(out)
}

/// Read the whole file into an 8-byte-aligned heap buffer, so f32
/// reinterpretation stays valid on the heap fallback path too.
fn read_aligned(file: &mut File, len: usize) -> Result<crate::mmap::AlignedBuf, StoreError> {
    file.seek(SeekFrom::Start(0))?;
    let mut buf = crate::mmap::AlignedBuf::zeroed(len);
    file.read_exact(buf.as_mut_slice())?;
    Ok(buf)
}

/// Peek a file's leading magic bytes without reading the rest —
/// format routing for loaders that accept several snapshot formats.
pub fn peek_magic(path: &Path) -> io::Result<[u8; 8]> {
    let mut f = File::open(path)?;
    let mut magic = [0u8; 8];
    let mut got = 0;
    while got < 8 {
        let n = f.read(&mut magic[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(magic)
}
