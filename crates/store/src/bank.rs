//! Out-of-core embedding banks: precomputed entity vectors served in
//! place from a PGEBIN02 snapshot.
//!
//! The PGE model is inductive — any string can be embedded through
//! the text encoder — but at catalog scale almost every string a scan
//! or serving replica sees is one of the catalog's known entities
//! (titles and attribute values). A bank stores those vectors
//! precomputed, as three snapshot sections:
//!
//! * `bank.index` — one 16-byte entry per key, sorted by 64-bit
//!   FNV-1a hash (ties broken by key bytes): `u64 hash`,
//!   `u32 key_off`, `u32 key_len`. The entry's position *is* the row
//!   number, so the index carries no row field.
//! * `bank.keys` — the key strings, concatenated.
//! * `bank.rows` — `n x dim` packed f32 LE vectors, 64-byte aligned,
//!   row `i` belonging to index entry `i`.
//!
//! Rows are written as the exact bit pattern the encoder produced, so
//! a bank hit is bit-identical to recomputing the embedding — mmap
//! and heap backings can never disagree on a score.
//!
//! When the snapshot is mapped, the index is copied to the heap at
//! open (16 bytes per key — an eighth of a dim-32 row table) while
//! keys and rows are served off the map. The bank tracks a
//! page-granular estimate of the bytes its lookups have faulted in
//! and drops the row and key sections' resident pages
//! (`MADV_DONTNEED`) every time the estimate crosses a budget, which
//! is what keeps a full-catalog scan's RSS a small fraction of the
//! table size. The mapping itself is advised `MADV_RANDOM` at open
//! so kernel fault-around cannot make pages resident behind the
//! accounting's back.

use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::format::{SectionKind, SnapshotWriter};
use crate::reader::Snapshot;
use crate::StoreError;

/// Section names of a bank inside a PGEBIN02 snapshot.
pub const SEC_INDEX: &str = "bank.index";
pub const SEC_KEYS: &str = "bank.keys";
pub const SEC_ROWS: &str = "bank.rows";

const ENTRY: usize = 16;

/// Default touched-bytes budget between page evictions (32 MiB).
pub const DEFAULT_RESIDENT_BUDGET: u64 = 32 << 20;

/// 64-bit FNV-1a — the bank's key hash. Stable across platforms and
/// versions by construction; part of the on-disk format.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// A read-only embedding bank over an open snapshot.
pub struct EmbeddingBank {
    snap: Arc<Snapshot>,
    dim: usize,
    n: usize,
    // Resolved byte ranges into the snapshot, validated at open so
    // the lookup hot path can slice without re-finding sections.
    rows_off: usize,
    rows_len: usize,
    /// Heap copy of `bank.index` — resident by design (16 bytes per
    /// key); see the open path for why it is not served off the map.
    index: Vec<u8>,
    keys_off: usize,
    keys_len: usize,
    /// Estimated row bytes touched since the last eviction.
    touched: AtomicU64,
    budget: u64,
    evictions: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for EmbeddingBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingBank")
            .field("entries", &self.n)
            .field("dim", &self.dim)
            .field("mapped", &self.snap.is_mapped())
            .finish()
    }
}

impl EmbeddingBank {
    /// Open the bank stored in `snap`, if any.
    ///
    /// Returns `Ok(None)` when the snapshot has no bank sections (a
    /// plain model snapshot); bank sections that exist but are
    /// malformed are an error.
    pub fn open(
        snap: Arc<Snapshot>,
        resident_budget: u64,
    ) -> Result<Option<EmbeddingBank>, StoreError> {
        if snap.get(SEC_ROWS).is_none() {
            return Ok(None);
        }
        let rows = snap.section(SEC_ROWS)?;
        let index = snap.section(SEC_INDEX)?;
        let keys = snap.section(SEC_KEYS)?;
        if rows.meta.kind != SectionKind::F32 {
            return Err(StoreError::WrongKind {
                name: SEC_ROWS.into(),
            });
        }
        let n = rows.meta.rows as usize;
        let dim = rows.meta.cols as usize;
        if dim == 0 && n != 0 {
            return Err(StoreError::Corrupt("bank has zero-dim rows".into()));
        }
        if index.bytes.len() != n * ENTRY {
            return Err(StoreError::Corrupt(format!(
                "bank.index holds {} bytes for {} rows",
                index.bytes.len(),
                n
            )));
        }
        // The index is deliberately heap-resident — 16 bytes per key,
        // an eighth of a dim-32 row table. Binary search probes it
        // all over; served from the mapping, every lookup would fault
        // a fresh path of pages and the refault storm after each
        // eviction is exactly the RSS creep the budget exists to
        // stop. Keys and rows stay out-of-core: one or two pages per
        // lookup, evictable without thrash. Copy in slabs, evicting
        // the mapped pages behind the copy, so open itself never
        // holds more than a slab of the section resident.
        let mut index_heap = Vec::with_capacity(index.bytes.len());
        if snap.is_mapped() && resident_budget > 0 {
            let slab = ((resident_budget / 2) as usize).max(1 << 20);
            for chunk in index.bytes.chunks(slab) {
                index_heap.extend_from_slice(chunk);
                snap.evict_section(SEC_INDEX);
            }
        } else {
            index_heap.extend_from_slice(index.bytes);
        }

        // Validate every index entry once, so lookups can slice keys
        // unchecked-by-construction (still bounds-checked slices).
        // The walk is sequential over the whole key section; on a
        // mapped snapshot, evict the pages it faults in every
        // budget's worth so the open itself respects the RSS bound
        // (the pages refault cleanly from the page cache).
        let mut walked = 0u64;
        let kb = keys.bytes.len();
        let mut prev: Option<(u64, &[u8])> = None;
        for i in 0..n {
            let e = &index_heap[i * ENTRY..(i + 1) * ENTRY];
            let h = u64::from_le_bytes(e[0..8].try_into().unwrap());
            let off = u32::from_le_bytes(e[8..12].try_into().unwrap()) as usize;
            let len = u32::from_le_bytes(e[12..16].try_into().unwrap()) as usize;
            let key = keys
                .bytes
                .get(off..off + len)
                .ok_or_else(|| StoreError::Corrupt(format!("bank key {i} out of bounds ({kb})")))?;
            if fnv64(key) != h {
                return Err(StoreError::Corrupt(format!("bank key {i} hash mismatch")));
            }
            if let Some((ph, pk)) = prev {
                if (ph, pk) >= (h, key) {
                    return Err(StoreError::Corrupt(format!("bank index unsorted at {i}")));
                }
            }
            prev = Some((h, key));
            // Evicting mid-walk is fine for `prev`: the borrowed key
            // bytes refault from the page cache with identical
            // content.
            if resident_budget > 0 && snap.is_mapped() {
                walked += len as u64;
                if walked >= resident_budget {
                    snap.evict_section(SEC_KEYS);
                    walked = 0;
                }
            }
        }
        let rows_off = rows.meta.offset as usize;
        let rows_len = rows.meta.len as usize;
        let keys_off = keys.meta.offset as usize;
        let keys_len = keys.meta.len as usize;
        Ok(Some(EmbeddingBank {
            snap,
            dim,
            n,
            rows_off,
            rows_len,
            index: index_heap,
            keys_off,
            keys_len,
            touched: AtomicU64::new(0),
            budget: resident_budget,
            evictions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }))
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimension of every row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether rows are served from a file mapping.
    pub fn is_mapped(&self) -> bool {
        self.snap.is_mapped()
    }

    /// Total size of the row table in bytes — what a heap load of the
    /// full table would allocate.
    pub fn table_bytes(&self) -> u64 {
        self.rows_len as u64
    }

    /// How many times the resident budget forced a page eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// `(hits, misses)` since open.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn file(&self) -> &[u8] {
        // Lifetime note: the returned slice borrows `self`, and the
        // Arc keeps the snapshot (mapping or heap buffer) alive at
        // least that long.
        self.snap.file_bytes()
    }

    /// The precomputed vector for `key`, if the bank holds it.
    ///
    /// The returned slice points straight into the snapshot backing —
    /// a mapped bank serves it from the page cache with no copy.
    pub fn lookup(&self, key: &str) -> Option<&[f32]> {
        let kb = key.as_bytes();
        let h = fnv64(kb);
        let file = self.file();
        let index = &self.index[..];
        let keys = &file[self.keys_off..self.keys_off + self.keys_len];

        let entry_hash = |i: usize| -> u64 {
            u64::from_le_bytes(index[i * ENTRY..i * ENTRY + 8].try_into().unwrap())
        };
        // Binary search for the first entry with this hash.
        let (mut lo, mut hi) = (0usize, self.n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if entry_hash(mid) < h {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Walk the (nearly always length-1) run of equal hashes.
        let mut i = lo;
        while i < self.n && entry_hash(i) == h {
            let e = &index[i * ENTRY..(i + 1) * ENTRY];
            let off = u32::from_le_bytes(e[8..12].try_into().unwrap()) as usize;
            let len = u32::from_le_bytes(e[12..16].try_into().unwrap()) as usize;
            if &keys[off..off + len] == kb {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.note_touch();
                let rows = self.rows_f32s();
                return Some(&rows[i * self.dim..(i + 1) * self.dim]);
            }
            i += 1;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // A miss still faulted index and key pages on the way down.
        self.note_touch();
        None
    }

    fn rows_f32s(&self) -> &[f32] {
        let b = &self.file()[self.rows_off..self.rows_off + self.rows_len];
        debug_assert_eq!(b.as_ptr() as usize % std::mem::align_of::<f32>(), 0);
        // Safety: alignment and shape validated at Snapshot::open /
        // bank open; little-endian target asserted at compile time.
        unsafe { std::slice::from_raw_parts(b.as_ptr() as *const f32, b.len() / 4) }
    }

    /// Account one lookup; evict the bank's resident pages when the
    /// touched estimate crosses the budget.
    ///
    /// Residency is page-granular, not row-granular: one random row
    /// touch makes a whole page resident, and the binary search
    /// faults index and key pages on the way. So each lookup is
    /// charged a few pages — an over-count for clustered access,
    /// which only makes eviction more eager, the conservative
    /// direction for an RSS bound.
    fn note_touch(&self) {
        if self.budget == 0 || !self.snap.is_mapped() {
            return;
        }
        // A lookup faults one row page and one or two key pages, but
        // the kernel's fault-around maps up to a 64 KiB cluster of
        // already-cached neighbors per fault — and unlike readahead,
        // fault-around ignores `MADV_RANDOM`. On a warm page cache
        // (a snapshot written moments ago) every fault really does
        // cost a full cluster of residency, so that is what each
        // lookup is charged: under-counting here is exactly how RSS
        // creeps to the file size between evictions.
        const FAULT_AROUND_BYTES: u64 = 64 << 10;
        let touch_bytes = 2 * FAULT_AROUND_BYTES.max(crate::mmap::page_size() as u64);
        // Claim evictions by *subtracting* whole budget multiples,
        // retrying on contention. The old scheme
        // (`compare_exchange(t, 0)` after the add) had two races
        // under concurrent lookups: a CAS that lost to a neighboring
        // add simply skipped the eviction (the counter sailed past
        // the budget and RSS kept growing), and a CAS that won
        // discarded the over-budget residual, silently forgetting
        // bytes other lookups had already charged. The subtract loop
        // keeps both: every budget's worth of charges is claimed by
        // exactly one lookup (one `madvise` pass per claim, however
        // many multiples it covers), and the remainder stays in the
        // counter for the next window — so across any interleaving,
        // `evictions == floor(total_charged / budget)`.
        let mut cur = self.touched.fetch_add(touch_bytes, Ordering::Relaxed) + touch_bytes;
        while cur >= self.budget {
            let units = cur / self.budget;
            match self.touched.compare_exchange(
                cur,
                cur % self.budget,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.snap.evict_section(SEC_ROWS);
                    self.snap.evict_section(SEC_KEYS);
                    self.evictions.fetch_add(units, Ordering::Relaxed);
                    break;
                }
                Err(now) => cur = now,
            }
        }
    }

    fn evict_sections(&self) {
        // Not `bank.index` — lookups serve it from the heap copy.
        self.snap.evict_section(SEC_ROWS);
        self.snap.evict_section(SEC_KEYS);
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop all resident bank pages now (e.g. after a scan shard
    /// commits). No-op for heap-backed banks.
    pub fn evict_resident(&self) {
        if self.snap.is_mapped() {
            // `swap`, not `store`: atomically claim whatever has been
            // charged so a concurrent lookup's add is either folded
            // into this reset or lands cleanly in the fresh window —
            // a plain store could overwrite an add that arrived
            // between the decision to reset and the reset itself.
            self.touched.swap(0, Ordering::Relaxed);
            self.evict_sections();
        }
    }
}

/// Collects the distinct keys of a bank, then streams the three bank
/// sections into a [`SnapshotWriter`], embedding each key exactly
/// once via the caller's closure.
#[derive(Default)]
pub struct BankBuilder {
    keys: HashSet<String>,
}

impl BankBuilder {
    pub fn new() -> BankBuilder {
        BankBuilder::default()
    }

    /// Register a key (deduplicated).
    pub fn add(&mut self, key: &str) {
        if !self.keys.contains(key) {
            self.keys.insert(key.to_string());
        }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Write `bank.index`, `bank.keys` and `bank.rows` into `w`.
    ///
    /// `embed` is called once per key, in index order, and must fill
    /// `out` with exactly `dim` values; rows stream straight to disk
    /// so the full table never lives in memory.
    pub fn write_sections(
        self,
        w: &mut SnapshotWriter,
        dim: usize,
        mut embed: impl FnMut(&str, &mut Vec<f32>),
    ) -> io::Result<()> {
        let mut keys: Vec<String> = self.keys.into_iter().collect();
        // Index order: (hash, key) — the sort the reader's binary
        // search and its open-time validation both rely on.
        keys.sort_by(|a, b| {
            (fnv64(a.as_bytes()), a.as_bytes()).cmp(&(fnv64(b.as_bytes()), b.as_bytes()))
        });
        let n = keys.len() as u64;

        w.begin_section(SEC_INDEX, SectionKind::Bytes, n, 0)?;
        let mut key_off = 0u64;
        for k in &keys {
            if key_off + k.len() as u64 > u32::MAX as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "bank key table exceeds 4 GiB",
                ));
            }
            let mut e = [0u8; ENTRY];
            e[0..8].copy_from_slice(&fnv64(k.as_bytes()).to_le_bytes());
            e[8..12].copy_from_slice(&(key_off as u32).to_le_bytes());
            e[12..16].copy_from_slice(&(k.len() as u32).to_le_bytes());
            w.write(&e)?;
            key_off += k.len() as u64;
        }
        w.end_section()?;

        w.begin_section(SEC_KEYS, SectionKind::Bytes, n, 0)?;
        for k in &keys {
            w.write(k.as_bytes())?;
        }
        w.end_section()?;

        w.begin_section(SEC_ROWS, SectionKind::F32, n, dim as u64)?;
        let mut row = Vec::with_capacity(dim);
        for k in &keys {
            row.clear();
            embed(k, &mut row);
            assert_eq!(row.len(), dim, "embed closure produced a wrong-size row");
            w.write_f32s(&row)?;
        }
        w.end_section()
    }
}
